"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these justify the reproduction's own
engineering decisions:

* **planned vs naive FLWOR evaluation** — the conjunctive planner with
  the anchor-based MQF join vs the nested-loop reference semantics
  (identical results required; the planner must be much faster);
* **term expansion on vs off** — the WordNet-substitute thesaurus lets
  synonym phrasings ("film" for movie) succeed;
* **interactive feedback on vs off** — without suggestions, simulated
  users take more iterations to reach an accepted query.
"""

import pytest

from repro.core.interface import NaLIX
from repro.data import DblpConfig, generate_dblp
from repro.database.store import Database
from repro.ontology.thesaurus import Thesaurus
from repro.xquery.evaluator import evaluate_query
from repro.xquery.values import string_value

JOIN_QUERY = (
    'for $b in doc("dblp.xml")//book, $t in doc("dblp.xml")//title,'
    ' $p in doc("dblp.xml")//publisher'
    ' where mqf($b, $t, $p) and $p = "Addison-Wesley"'
    ' return $t'
)


@pytest.fixture(scope="module")
def small_dblp():
    database = Database()
    database.load_document(generate_dblp(DblpConfig(books=40, articles=40)))
    return database


def _values(items):
    return sorted(string_value(item) for item in items)


def test_planned_equals_naive(benchmark, small_dblp):
    planned = benchmark.pedantic(
        lambda: evaluate_query(small_dblp, JOIN_QUERY, use_planner=True),
        rounds=1,
        iterations=1,
    )
    naive = evaluate_query(small_dblp, JOIN_QUERY, use_planner=False)
    assert _values(planned) == _values(naive)
    assert planned, "the ablation query must return something"


def test_planned_evaluation_speed(benchmark, small_dblp):
    result = benchmark(evaluate_query, small_dblp, JOIN_QUERY, True)
    assert result


def test_naive_evaluation_speed(benchmark, small_dblp):
    result = benchmark(evaluate_query, small_dblp, JOIN_QUERY, False)
    assert result
    # The planner's advantage grows with document size; even at this
    # deliberately tiny scale the naive cross product must not win.
    # (Comparison across benches is visible in the benchmark table.)


def test_term_expansion_ablation(benchmark):
    """Synonym phrasing succeeds only with the thesaurus."""
    from repro.data import movies_document

    database = Database()
    database.load_document(movies_document())
    with_thesaurus = NaLIX(database)
    without_thesaurus = NaLIX(database, thesaurus=Thesaurus(synsets=[]))

    sentence = 'Return the title of every film directed by Ron Howard.'
    result = benchmark(with_thesaurus.ask, sentence)
    assert result.ok, result.render_feedback()
    assert "Tribute" in result.values()

    rejected = without_thesaurus.ask(sentence)
    assert not rejected.ok
    assert any(m.code == "unknown-name" for m in rejected.errors)


def test_feedback_ablation(benchmark):
    """Without error feedback, users need more attempts.

    We model "feedback off" by not boosting the good-phrasing choice
    after a rejection; the gap in average iterations is the value of the
    paper's interactive reformulation design.
    """
    from repro.evaluation.study import Study, StudyConfig

    class NoFeedbackStudy(Study):
        def _run_nalix_cell(self, participant, task):
            original = participant.choose_phrasing

            def choose_without_learning(task_, attempt, tried, _err, _poor):
                return original(task_, attempt, tried, False, False)

            participant.choose_phrasing = choose_without_learning
            try:
                return super()._run_nalix_cell(participant, task)
            finally:
                participant.choose_phrasing = original

    config = StudyConfig(participants=6, seed=99)
    with_feedback = Study(config).run()
    without_feedback = benchmark.pedantic(
        lambda: NoFeedbackStudy(config).run(), rounds=1, iterations=1
    )

    def mean_iterations(results):
        records = results.by_system("nalix")
        return sum(r.iterations for r in records) / len(records)

    with_iters = mean_iterations(with_feedback)
    without_iters = mean_iterations(without_feedback)
    print(f"\navg iterations: feedback={with_iters:.2f} "
          f"no-feedback={without_iters:.2f}")
    assert without_iters >= with_iters
