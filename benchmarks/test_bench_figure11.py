"""Figure 11 — query formulation effort per XMP task.

Regenerates the paper's Figure 11 series (average time in seconds and
average number of iterations per task, NaLIX block) from the simulated
study, prints it in the paper's layout, and checks the figure's shape
claims:

* the average total time per task stays in the neighbourhood the paper
  reports (a ~50 s floor; "usually less than 90 seconds");
* the average number of iterations is below 2 for every task;
* for every task some participant succeeded with zero iterations.
"""

from repro.evaluation.report import StudyReport


def test_figure11(benchmark, study_results):
    report = StudyReport(study_results)
    rows = benchmark(report.figure11)

    print()
    print(report.render_figure11())

    for task_id, row in rows.items():
        assert row["avg_seconds"] >= 47.0, (
            f"{task_id}: below the ~50s reading/typing floor the paper reports"
        )
        assert row["avg_seconds"] <= 160.0, f"{task_id}: implausibly slow"
        assert row["avg_iterations"] < 2.0, (
            f"{task_id}: paper reports < 2 average iterations"
        )
        assert row["min_iterations"] == 0, (
            f"{task_id}: paper reports at least one zero-iteration user per task"
        )


def test_figure11_half_tasks_first_try(benchmark, study_results):
    """"For about half of the search tasks all the participants were able
    to formulate a query acceptable by NaLIX on the first attempt" — we
    check a relaxed form: for at least a third of the tasks, the average
    iteration count is at most 0.5."""
    report = StudyReport(study_results)
    rows = benchmark(report.figure11)
    easy = [row for row in rows.values() if row["avg_iterations"] <= 0.5]
    assert len(easy) >= len(rows) // 3
