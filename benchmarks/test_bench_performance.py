"""Sec. 5.1's timing observation: translation and evaluation < 1 s each.

"We measured the time NaLIX took for query translation and the time
Timber took for query evaluation for each query. Both numbers were
consistently very small (less than one second)." We benchmark the two
stages separately over all nine tasks' correct phrasings on the DBLP
collection and assert the sub-second claim holds per query.
"""

import pytest

from repro.evaluation.tasks import TASKS
from repro.xquery.parser import parse_xquery


@pytest.fixture(scope="module")
def accepted_translations(dblp_nalix):
    translations = {}
    for task in TASKS:
        phrasing = task.good_phrasings()[0]
        result = dblp_nalix.ask(phrasing.text, evaluate=False)
        assert result.ok, f"{task.task_id}: {result.render_feedback()}"
        translations[task.task_id] = (phrasing.text, result.xquery_text)
    return translations


def test_translation_under_one_second(benchmark, dblp_nalix,
                                      accepted_translations):
    sentences = [text for text, _ in accepted_translations.values()]

    def translate_all():
        for sentence in sentences:
            result = dblp_nalix.ask(sentence, evaluate=False)
            assert result.ok

    benchmark(translate_all)
    per_query = benchmark.stats.stats.mean / len(sentences)
    print(f"\ntranslation: {per_query * 1000:.1f} ms/query")
    assert per_query < 1.0, "paper: translation consistently < 1 s"


def test_evaluation_under_one_second(benchmark, dblp_nalix,
                                     accepted_translations):
    queries = [parse_xquery(xq) for _, xq in accepted_translations.values()]

    def evaluate_all():
        for query in queries:
            dblp_nalix.evaluator.run(query)

    benchmark(evaluate_all)
    per_query = benchmark.stats.stats.mean / len(queries)
    print(f"\nevaluation: {per_query * 1000:.1f} ms/query")
    assert per_query < 1.0, "paper: evaluation consistently < 1 s"


def test_full_pipeline_latency(benchmark, dblp_nalix, accepted_translations):
    """End-to-end ask() latency for the most complex task phrasing."""
    sentence = accepted_translations["Q10"][0]
    result = benchmark(dblp_nalix.ask, sentence)
    assert result.ok
    assert benchmark.stats.stats.mean < 2.0
