"""Table 7 — average precision and recall over query subsets.

Regenerates the paper's Table 7: average precision/recall over (a) all
accepted queries, (b) queries specified correctly, (c) queries specified
and parsed correctly, with the number of queries in each subset. Prints
the table in the paper's layout and checks the shape:

* totals: 18 participants x 9 tasks = 162 queries in "all"; the subsets
  shrink in the paper's proportions (162 -> 120 -> 112 there);
* precision and recall improve (weakly) from row to row;
* restricting to specified+parsed queries removes most of the error,
  mirroring the paper's "error rate is roughly reduced by 75%".
"""

from repro.evaluation.report import StudyReport


def test_table7(benchmark, study_results):
    report = StudyReport(study_results)
    table = benchmark(report.table7)

    print()
    print(report.render_table7())

    all_row = table["all queries"]
    specified = table["all queries specified correctly"]
    parsed = table["all queries specified and parsed correctly"]

    assert all_row["total_queries"] == 162
    assert 100 <= specified["total_queries"] < 162
    assert 90 <= parsed["total_queries"] <= specified["total_queries"]

    # Weak monotonic improvement row to row (a small tolerance: the
    # misparse injection can leave near-perfect queries in any subset).
    assert specified["avg_precision"] >= all_row["avg_precision"] - 0.005
    assert parsed["avg_precision"] >= specified["avg_precision"] - 0.005
    assert specified["avg_recall"] >= all_row["avg_recall"] - 0.005
    assert parsed["avg_recall"] >= specified["avg_recall"] - 0.005

    assert all_row["avg_precision"] >= 0.80, "paper: 83.0%"
    assert all_row["avg_recall"] >= 0.85, "paper: 90.1%"
    assert parsed["avg_precision"] >= 0.93, "paper: 95.1%"
    assert parsed["avg_recall"] >= 0.95, "paper: 97.6%"


def test_table7_error_reduction(benchmark, study_results):
    """Restricting to specified+parsed queries should remove most of the
    imperfection (the paper reports ~75% error-rate reduction)."""
    report = StudyReport(study_results)
    table = benchmark(report.table7)
    all_row = table["all queries"]
    parsed = table["all queries specified and parsed correctly"]
    error_all = (1 - all_row["avg_precision"]) + (1 - all_row["avg_recall"])
    error_parsed = (1 - parsed["avg_precision"]) + (1 - parsed["avg_recall"])
    assert error_parsed <= error_all * 0.5
