"""The paper's worked examples (Figs. 2, 3, 9, 10; Tables 3–5).

Regenerates the running-example artifacts on the Figure 1 movie
database and checks them against what the paper prints:

* Figure 2: the classified parse tree of Query 2;
* Table 3/5: the variable bindings (two explicit director variables, an
  implicit one, movie variables, two composed count variables);
* Figure 9: the full translation of Query 2 (two nested lets with
  mqf + value join, count comparison, the Ron Howard predicate);
* Figure 10: Query 1 is rejected and the feedback suggests replacing
  "as" with an operator phrase;
* Figure 3: Query 3's related-name-token analysis (core tokens).
"""

QUERY_1 = (
    "Return every director who has directed as many movies as has "
    "Ron Howard."
)
QUERY_2 = (
    "Return every director, where the number of movies directed by the "
    "director is the same as the number of movies directed by Ron Howard."
)


def test_query2_full_translation(benchmark, movie_nalix):
    result = benchmark(movie_nalix.ask, QUERY_2)
    assert result.ok

    print()
    print("Parse tree (paper Fig. 2):")
    print(result.parse_tree.to_indented_string())
    print()
    print("Variable bindings (paper Tables 3/5):")
    for row in result.translation.bindings_table:
        print(" ", row)
    print()
    print("Full translation (paper Fig. 9):")
    print(result.translation.pretty_text)

    text = result.xquery_text
    # Figure 9's structure: two aggregate lets, value joins to the outer
    # director variables, a count comparison, the value predicate.
    assert text.count("let $vars") == 2
    assert text.count("mqf(") == 2
    assert "count($vars1) = count($vars2)" in text
    assert '= "Ron Howard"' in text

    # The answer: only Ron Howard directed as many movies as Ron Howard.
    assert sorted(set(result.values())) == ["Ron Howard"]


def test_query2_bindings_table(benchmark, movie_nalix):
    result = benchmark(movie_nalix.ask, QUERY_2)
    rows = result.translation.bindings_table
    directors = [row for row in rows if row["content"] == "director"]
    movies = [row for row in rows if row["content"] == "movie"]
    composed = [row for row in rows if row["variable"].startswith("$cv")]
    # Table 3: two director variables (nodes {2,7} and the implicit 11),
    # two movie variables, two composed count variables.
    assert len(directors) >= 2
    assert any(len(row["nodes"]) == 2 for row in directors), (
        "the explicit director mentions bind to one variable (paper: nodes 2,7)"
    )
    assert len(movies) == 2
    assert len(composed) == 2
    # The director variables are core tokens (starred in Table 3).
    assert all(row["variable"].endswith("*") for row in directors)


def test_query1_rejected_with_suggestion(benchmark, movie_nalix):
    result = benchmark(movie_nalix.ask, QUERY_1)
    assert not result.ok

    print()
    print("Feedback (paper Fig. 10 / Sec. 4):")
    print(result.render_feedback())

    unknown = [m for m in result.errors if m.code == "unknown-term"]
    assert unknown, "Query 1's 'as' must be reported as not understood"
    assert any('"as"' in m.text for m in unknown)
    assert any(m.suggestion and "the same as" in m.suggestion for m in unknown)


def test_query3_value_join_translation(benchmark, movie_nalix):
    """Query 3 on a database that also has books (the paper's Fig. 3
    scenario needs title-of-book to exist)."""
    from repro.core.interface import NaLIX
    from repro.database.store import Database
    from repro.xmlstore.model import Document, ElementNode

    root = ElementNode("catalog")
    movies = root.append_element("movies")
    for title, director in [("Traffic", "Steven Soderbergh"),
                            ("Tribute", "Ron Howard")]:
        movie = movies.append_element("movie")
        movie.append_element("title", title)
        movie.append_element("director", director)
    books = root.append_element("books")
    for title in ["Traffic", "Data on the Web"]:
        book = books.append_element("book")
        book.append_element("title", title)
    database = Database()
    database.load_document(Document(root, name="catalog.xml"))
    nalix = NaLIX(database)

    query = (
        "Return the directors of movies, where the title of each movie is "
        "the same as the title of a book."
    )
    result = benchmark(nalix.ask, query)
    assert result.ok
    print()
    print(result.xquery_text)
    # Two mqf groups (directors+movies+title vs title+book), joined by a
    # title = title value comparison — the paper's {2,4,6,8} / {9,11}.
    assert result.xquery_text.count("mqf(") == 2
    assert sorted(set(result.values())) == ["Steven Soderbergh"]
