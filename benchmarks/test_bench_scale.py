"""Paper-scale data check: the 73k-node collection.

The paper's data set was 1.44 MB / 73 142 nodes. ``DblpConfig.paper_scale()``
generates a collection of comparable size; this bench verifies the
pipeline stays interactive (the paper's sub-second translation, and
evaluation fast enough for a user study) at that scale.
"""

import pytest

from repro.core.interface import NaLIX
from repro.data import DblpConfig, generate_dblp
from repro.database.store import Database


@pytest.fixture(scope="module")
def paper_scale_nalix():
    database = Database()
    database.load_document(generate_dblp(DblpConfig.paper_scale()))
    return NaLIX(database)


def test_paper_scale_node_count(benchmark, paper_scale_nalix):
    def count_nodes():
        return paper_scale_nalix.database.node_count()

    nodes = benchmark.pedantic(count_nodes, rounds=1, iterations=1)
    # Same order of magnitude as the paper's 73 142 nodes.
    assert 40_000 <= nodes <= 120_000
    print(f"\npaper-scale collection: {nodes} nodes")


def test_paper_scale_structured_query(benchmark, paper_scale_nalix):
    result = benchmark(
        paper_scale_nalix.ask,
        "Return the year and title of every book published by "
        "Addison-Wesley after 1991.",
    )
    assert result.ok
    assert result.values()
    assert benchmark.stats.stats.mean < 5.0


def test_paper_scale_aggregation_query(benchmark, paper_scale_nalix):
    result = benchmark.pedantic(
        lambda: paper_scale_nalix.ask(
            "Return the number of books published by each publisher."
        ),
        rounds=1,
        iterations=1,
    )
    assert result.ok
    assert result.values()
