"""Figure 12 — search quality per task: NaLIX vs keyword search.

Regenerates the per-task average precision/recall series for both
blocks, prints them in the paper's layout, and checks the figure's
shape claims:

* NaLIX's search quality beats keyword search on (nearly) every task —
  the paper: "consistently better";
* keyword search collapses on the tasks needing complex manipulation
  (sorting Q7, aggregation Q10) — the paper calls these out explicitly;
* NaLIX's per-task averages stay in the paper's reported band
  (precision >= ~70%, recall >= ~79% for the worst task).
"""

from repro.evaluation.metrics import harmonic_mean
from repro.evaluation.report import StudyReport


def test_figure12(benchmark, study_results):
    report = StudyReport(study_results)
    rows = benchmark(report.figure12)

    print()
    print(report.render_figure12())

    wins = 0
    for task_id, row in rows.items():
        nalix_f = harmonic_mean(row["nalix_precision"], row["nalix_recall"])
        keyword_f = harmonic_mean(
            row["keyword_precision"], row["keyword_recall"]
        )
        if nalix_f >= keyword_f:
            wins += 1
        assert row["nalix_precision"] >= 0.70, (
            f"{task_id}: paper's worst-task average precision is 70.9%"
        )
        assert row["nalix_recall"] >= 0.75, (
            f"{task_id}: paper's worst-task average recall is 79.4%"
        )
    assert wins >= len(rows) - 1, "NaLIX should win on (nearly) every task"


def test_figure12_keyword_fails_complex_tasks(benchmark, study_results):
    report = StudyReport(study_results)
    rows = benchmark(report.figure12)
    for task_id in ("Q7", "Q10"):
        row = rows[task_id]
        keyword_f = harmonic_mean(
            row["keyword_precision"], row["keyword_recall"]
        )
        nalix_f = harmonic_mean(row["nalix_precision"], row["nalix_recall"])
        assert keyword_f < 0.3, (
            f"{task_id}: keyword search should fail on sorting/aggregation"
        )
        assert nalix_f > 0.8
