"""Shared fixtures for the benchmark harness.

The expensive artifacts (the DBLP database and the full 18-participant
study run) are session-scoped so each bench module reuses them.

At session end, two JSON artifacts are written next to this file (see
DESIGN.md "Benchmark artifacts"):

* ``BENCH_METRICS.json`` — a snapshot of the process metrics registry
  (pipeline stage-latency histograms, validator/evaluator/planner
  counters), so benchmark entries carry per-stage data;
* ``BENCH_RESULTS.json`` — a stable per-task latency table produced by
  :func:`repro.evaluation.bench.collect_task_results` (the same
  collector the ``repro bench-check`` regression watchdog uses): each
  of the nine study tasks' reference phrasing is run
  ``DEFAULT_REPEATS`` times through a fresh DBLP pipeline, recording
  end-to-end mean/p95, the raw per-run samples, and the per-stage
  breakdown taken from each run's trace.  The file also carries a
  ``serving`` section from
  :func:`repro.evaluation.bench.collect_serve_results` — sustained QPS
  and server-side p50/p95/p99 under concurrent clients — so the
  watchdog ratchets serving performance alongside per-task latency,
  and a ``serving_chaos`` section from
  :func:`repro.evaluation.bench.collect_serve_chaos_results` — the
  same workload under the standard injected-fault plan with retrying
  clients, ratcheting availability and tail latency under faults (plus
  the tail sampler's retention profile and the flight recorder's byte
  accounting, gated absolutely), and a ``serving_observability``
  section from
  :func:`repro.evaluation.bench.collect_obs_overhead_results` — the
  same serving workload with the incident-observability layer off vs
  on, so the watchdog bounds the overhead of the evidence loop.
"""

import json
import pathlib
import time

import pytest

from repro.core.interface import NaLIX
from repro.data import generate_dblp, movies_document
from repro.database.store import Database
from repro.evaluation.bench import (
    collect_obs_overhead_results,
    collect_serve_chaos_results,
    collect_serve_results,
    collect_task_results,
)
from repro.evaluation.study import Study, StudyConfig
from repro.obs.metrics import METRICS

_METRICS_SNAPSHOT_PATH = pathlib.Path(__file__).parent / "BENCH_METRICS.json"
_RESULTS_PATH = pathlib.Path(__file__).parent / "BENCH_RESULTS.json"


def pytest_sessionfinish(session, exitstatus):
    """Dump the metrics registry and per-task latency table."""
    snapshot = METRICS.snapshot()
    if not snapshot["counters"].get("pipeline.queries"):
        return  # nothing ran through the pipeline; keep the last dumps
    payload = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "exitstatus": int(exitstatus),
        "metrics": snapshot,
    }
    _METRICS_SNAPSHOT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    results = {"timestamp": payload["timestamp"]}
    results.update(collect_task_results())
    results["serving"] = collect_serve_results()
    results["serving_chaos"] = collect_serve_chaos_results()
    results["serving_observability"] = collect_obs_overhead_results()
    _RESULTS_PATH.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="session")
def dblp_database():
    database = Database()
    database.load_document(generate_dblp())
    return database


@pytest.fixture(scope="session")
def movie_database():
    database = Database()
    database.load_document(movies_document())
    return database


@pytest.fixture(scope="session")
def dblp_nalix(dblp_database):
    return NaLIX(dblp_database)


@pytest.fixture(scope="session")
def movie_nalix(movie_database):
    return NaLIX(movie_database)


@pytest.fixture(scope="session")
def study():
    return Study(StudyConfig(participants=18, seed=2006))


@pytest.fixture(scope="session")
def study_results(study):
    return study.run()
