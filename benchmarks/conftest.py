"""Shared fixtures for the benchmark harness.

The expensive artifacts (the DBLP database and the full 18-participant
study run) are session-scoped so each bench module reuses them.
"""

import pytest

from repro.core.interface import NaLIX
from repro.data import generate_dblp, movies_document
from repro.database.store import Database
from repro.evaluation.study import Study, StudyConfig


@pytest.fixture(scope="session")
def dblp_database():
    database = Database()
    database.load_document(generate_dblp())
    return database


@pytest.fixture(scope="session")
def movie_database():
    database = Database()
    database.load_document(movies_document())
    return database


@pytest.fixture(scope="session")
def dblp_nalix(dblp_database):
    return NaLIX(dblp_database)


@pytest.fixture(scope="session")
def movie_nalix(movie_database):
    return NaLIX(movie_database)


@pytest.fixture(scope="session")
def study():
    return Study(StudyConfig(participants=18, seed=2006))


@pytest.fixture(scope="session")
def study_results(study):
    return study.run()
