"""Command-line interface to the reproduction.

Subcommands::

    python -m repro query   [--data movies|bib|dblp|FILE] "SENTENCE"
    python -m repro explain [--data ...] [--json] "SENTENCE"
    python -m repro repl    [--data ...]          # interactive loop
    python -m repro xquery  [--data ...] "QUERY"  # raw Schema-Free XQuery
    python -m repro tasks   [--books N]           # run the 9 XMP tasks
    python -m repro stats   [--books N] [--format table|json|prom|chrome]
    python -m repro profile [--hz N] [--repeat N] "SENTENCE"
    python -m repro bench-check [--baseline FILE] [--handicap STAGE=F]
    python -m repro lint    [--data ...] [--tasks|--corpus|--self]
                            [--stdin] [--xquery] [--format text|json|github]
                            ["SENTENCE" ...]
    python -m repro lint-src [PATH ...] [--strict] [--format text|json|github]
                            [--suppress-file FILE] [--rules]
    python -m repro study   [--participants N] [--seed S]
    python -m repro generate [--books N] [--seed S] [--out FILE]
    python -m repro serve   [--port P] [--max-inflight N] [--tenant-rate R]
    python -m repro loadgen [--url URL] [--concurrency N] [--requests N]
    python -m repro replay  LOG [--url URL] [--format text|json] [--github]

Each command builds its database from the named built-in dataset (or an
XML file path) and prints human-readable output; exit status is non-zero
when a query is rejected.

Observability flags (see README.md "Observability"): ``--trace`` prints
the span tree of each query, ``--metrics`` dumps the process metrics
registry as JSON on exit, and ``--audit-log PATH`` appends one JSONL
record per query.  ``explain`` (or ``query --explain``) renders the
full word → token → clause lineage report plus per-operator plan
statistics; ``stats --format prom|chrome|json`` exports metrics in the
Prometheus text format, traces as Chrome trace-event JSON (load in
chrome://tracing or Perfetto), or a plain JSON snapshot.

Resilience flags (see README.md "Resilience"): ``--timeout SECONDS``
runs each query under the default budget with the given deadline, and
``--inject-fault STAGE[:N|:p=P,seed=S]`` (repeatable) arms the
deterministic fault-injection harness for chaos testing.

Profiling & memory (see README.md "Profiling"): ``query --profile``
samples the query's stacks into a ``flamegraph.pl``-compatible
collapsed-stack file, the ``profile`` subcommand re-asks a query N
times and emits collapsed or speedscope output, ``--memory`` turns on
per-stage tracemalloc accounting, and ``bench-check`` compares a fresh
benchmark run against the committed ``benchmarks/BENCH_RESULTS.json``
baseline (nonzero exit on regression).

Serving (see README.md "Serving"): ``serve`` runs the concurrent HTTP
query service (``/query``, ``/metrics``, ``/healthz``, ``/readyz``,
``/statusz``) with per-tenant admission control and graceful drain on
SIGTERM; ``loadgen`` drives a running server with N concurrent clients
and cross-checks its ``/metrics`` percentiles; ``stats --url`` reads a
live server's exposition text instead of replaying queries locally;
``bench-check --serve`` includes the sustained-throughput serving
benchmark in the fresh run.

Correctness observability (see README.md "Correctness observability"):
``serve`` runs a golden-query canary by default on the baselined dblp
dataset (``--canary`` / ``--no-canary`` / ``--canary-interval`` tune
it), and ``replay`` re-executes a recorded JSONL audit/access log
against the current build — or a live ``--url`` — and diffs the answer
digests, statuses, and latency quantiles (nonzero exit on answer
drift).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.interface import NaLIX
from repro.data import DblpConfig, bib_document, generate_dblp, movies_document
from repro.database.store import Database
from repro.obs.audit import STAGES, AuditLog
from repro.obs.explain import explain
from repro.obs.export import LATENCIES, chrome_trace_json, prometheus_text
from repro.obs.memory import activate_memory_tracking
from repro.obs.metrics import METRICS
from repro.obs.profiler import (
    DEFAULT_HZ,
    ProfileSpec,
    collapsed_text,
    merge_profiles,
    speedscope_document,
)
from repro.obs.quantiles import nearest_rank
from repro.resilience.faults import FaultPlan
from repro.xquery.errors import XQueryError
from repro.xquery.evaluator import evaluate_query
from repro.xquery.values import string_value


def load_database(spec, books=120, seed=7):
    """Build a Database from a dataset name or an XML file path."""
    database = Database()
    if spec == "movies":
        database.load_document(movies_document())
    elif spec == "bib":
        database.load_document(bib_document())
    elif spec == "dblp":
        database.load_document(generate_dblp(DblpConfig(books=books, seed=seed)))
    else:
        database.load_file(spec)
    return database


def _open_audit_log(args):
    path = getattr(args, "audit_log", None)
    if not path:
        return None
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        raise SystemExit(f"repro: cannot open audit log {path!r}: {exc}")
    return AuditLog(path, actor="cli")


def _print_result(result, show_xquery=True, show_trace=False):
    if not result.ok:
        print(result.render_feedback())
        if show_trace and result.trace is not None:
            print(result.trace.render())
        return False
    if show_xquery:
        print("XQuery:", result.xquery_text)
    for warning in result.warnings:
        print(warning.render())
    values = result.values()
    print(f"{len(values)} result(s):")
    for value in values[:50]:
        print(" ", value)
    if len(values) > 50:
        print(f"  ... and {len(values) - 50} more")
    if show_trace and result.trace is not None:
        print(result.trace.render())
    return True


def _finish(args, audit, exit_code):
    """Shared teardown: close the audit log, honour ``--metrics``."""
    if audit is not None:
        audit.close()
        print(f"audit log: {audit.path}")
    if getattr(args, "metrics", False):
        print(METRICS.to_json())
    return exit_code


def _build_fault_plan(args):
    specs = getattr(args, "inject_fault", None)
    if not specs:
        return None
    try:
        return FaultPlan([FaultPlan.parse_spec(spec) for spec in specs])
    except ValueError as error:
        raise SystemExit(f"repro: {error}")


def _profile_spec_from(args):
    if not getattr(args, "profile", False):
        return None
    try:
        return ProfileSpec(hz=args.profile_hz)
    except ValueError as error:
        raise SystemExit(f"repro: {error}")


def _write_profile(profiler, out):
    """Write one query's collapsed stacks; print the span attribution."""
    out = out or "profile.collapsed"
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(profiler.collapsed_text())
    print(
        f"profile: {len(profiler.samples)} samples @ {profiler.hz:g} Hz "
        f"-> {out}"
    )
    counts = profiler.span_sample_counts()
    if counts:
        print(
            "profile spans: "
            + "  ".join(
                f"{name}={counts[name]}"
                for name in sorted(counts, key=counts.get, reverse=True)
            )
        )


def cmd_query(args):
    database = load_database(args.data, books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit, fault_plan=_build_fault_plan(args))
    result = nalix.ask(
        args.sentence,
        timeout=args.timeout,
        profile=_profile_spec_from(args),
        memory=args.memory,
    )
    ok = _print_result(
        result,
        show_xquery=not args.quiet,
        show_trace=args.trace,
    )
    if args.explain:
        print()
        print(explain(result).render_text())
    if result.profile is not None:
        _write_profile(result.profile, args.profile_out)
    return _finish(args, audit, 0 if ok else 1)


def cmd_explain(args):
    """Full provenance report: word -> token -> clause lineage + plan."""
    database = load_database(args.data, books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit)
    result = nalix.ask(args.sentence, evaluate=not args.no_evaluate,
                       timeout=args.timeout, memory=args.memory)
    report = explain(result)
    print(report.to_json() if args.json else report.render_text())
    return _finish(args, audit, 0 if result.ok else 1)


def cmd_repl(args):
    database = load_database(args.data, books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit, fault_plan=_build_fault_plan(args))
    print(database)
    print("Type an English query (empty line to quit).")
    while True:
        try:
            line = input("nalix> ").strip()
        except EOFError:
            break
        if not line:
            break
        _print_result(
            nalix.ask(line, timeout=args.timeout, memory=args.memory),
            show_xquery=not args.quiet,
            show_trace=args.trace,
        )
    return _finish(args, audit, 0)


def cmd_xquery(args):
    database = load_database(args.data, books=args.books, seed=args.seed)
    try:
        items = evaluate_query(database, args.query)
    except XQueryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"{len(items)} item(s):")
    for item in items[:50]:
        print(" ", string_value(item))
    if len(items) > 50:
        print(f"  ... and {len(items) - 50} more")
    return 0


def cmd_tasks(args):
    from repro.evaluation.metrics import harmonic_mean, precision_recall
    from repro.evaluation.tasks import TASKS

    database = load_database("dblp", books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit)
    failures = 0
    for task in TASKS:
        gold = task.gold(database)
        phrasing = task.good_phrasings()[0]
        result = nalix.ask(phrasing.text, memory=args.memory)
        if not result.ok:
            print(f"{task.task_id}: REJECTED — {phrasing.text}")
            failures += 1
            continue
        precision, recall = precision_recall(
            result.distinct_items(), gold, ordered=task.ordered
        )
        score = harmonic_mean(precision, recall)
        print(
            f"{task.task_id}: P={precision:.2f} R={recall:.2f} "
            f"F={score:.2f} — {phrasing.text}"
        )
        if score < 0.5:
            failures += 1
    return _finish(args, audit, 1 if failures else 0)


def _emit(text, out):
    """Write to ``--out PATH`` (with a note) or stdout."""
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text)} bytes to {out}")
    else:
        sys.stdout.write(text)


def cmd_profile(args):
    """Re-ask one query N times under the sampling profiler.

    A single ask usually lasts a few milliseconds — too short for a
    dense flamegraph — so this command merges the samples of
    ``--repeat`` runs into one collapsed-stack (or speedscope)
    document.  The span-attribution summary goes to stderr so the
    collapsed output on stdout stays pipeable into ``flamegraph.pl``.
    """
    import json as json_module

    database = load_database(args.data, books=args.books, seed=args.seed)
    nalix = NaLIX(database)
    try:
        spec = ProfileSpec(hz=args.hz)
    except ValueError as error:
        raise SystemExit(f"repro: {error}")
    repeats = max(1, args.repeat)
    profilers = []
    result = None
    for _ in range(repeats):
        result = nalix.ask(args.sentence, profile=spec, memory=args.memory)
        profilers.append(result.profile)
    samples = merge_profiles(profilers)
    if args.format == "speedscope":
        document = speedscope_document(
            samples, 1.0 / args.hz, name=args.sentence
        )
        text = json_module.dumps(document, indent=2) + "\n"
    else:
        text = collapsed_text(samples)
    _emit(text, args.out)
    counts = {}
    for profiler in profilers:
        if profiler is None:
            continue
        for name, value in profiler.span_sample_counts().items():
            counts[name] = counts.get(name, 0) + value
    print(
        f"profile: {len(samples)} samples over {repeats} run(s) "
        f"@ {args.hz:g} Hz",
        file=sys.stderr,
    )
    if counts:
        print(
            "span samples: "
            + "  ".join(
                f"{name}={counts[name]}"
                for name in sorted(counts, key=counts.get, reverse=True)
            ),
            file=sys.stderr,
        )
    if args.memory and result is not None and result.memory is not None:
        rss = result.memory.peak_rss_bytes / (1024.0 * 1024.0)
        print(f"peak rss: {rss:.1f} MiB", file=sys.stderr)
    return 0 if result is not None and result.ok else 1


def cmd_bench_check(args):
    """The perf-regression watchdog: fresh run vs committed baseline."""
    import json as json_module

    from repro.obs.regression import (
        Tolerance,
        apply_handicaps,
        compare_results,
        load_results,
        parse_handicap,
    )

    try:
        baseline = load_results(args.baseline)
    except (OSError, ValueError) as error:
        raise SystemExit(
            f"repro: cannot load baseline {args.baseline!r}: {error}"
        )
    if args.current:
        try:
            current = load_results(args.current)
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"repro: cannot load results {args.current!r}: {error}"
            )
    else:
        from repro.evaluation.bench import collect_task_results

        print(
            f"bench-check: running {args.repeats} repeat(s) per task "
            f"(dblp, {args.books} books)...",
            file=sys.stderr,
        )
        current = collect_task_results(
            repeats=args.repeats, books=args.books, seed=args.seed
        )
    handicaps = {}
    for spec in args.handicap or ():
        try:
            stage, factor = parse_handicap(spec)
        except ValueError as error:
            raise SystemExit(f"repro: {error}")
        handicaps[stage] = factor
    if handicaps:
        current = apply_handicaps(current, handicaps)
    if args.serve and "serving" not in current:
        from repro.evaluation.bench import collect_serve_results

        print("bench-check: running the serving benchmark...",
              file=sys.stderr)
        current["serving"] = collect_serve_results(
            books=args.books, seed=args.seed
        )
    if args.serve and "serving_chaos" not in current:
        from repro.evaluation.bench import collect_serve_chaos_results

        print("bench-check: running the chaos serving benchmark...",
              file=sys.stderr)
        current["serving_chaos"] = collect_serve_chaos_results(
            books=args.books, seed=args.seed
        )
    if args.serve and "serving_observability" not in current:
        from repro.evaluation.bench import collect_obs_overhead_results

        print("bench-check: measuring observability overhead...",
              file=sys.stderr)
        current["serving_observability"] = collect_obs_overhead_results(
            books=args.books, seed=args.seed
        )
    if args.serve and "serving_canary" not in current:
        from repro.evaluation.bench import collect_canary_overhead_results

        print("bench-check: measuring canary overhead...",
              file=sys.stderr)
        current["serving_canary"] = collect_canary_overhead_results(
            books=args.books, seed=args.seed
        )
    if args.save_current:
        with open(args.save_current, "w", encoding="utf-8") as handle:
            json_module.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"saved current run to {args.save_current}", file=sys.stderr)
    try:
        tolerance = Tolerance(
            rel_warn=args.warn,
            rel_fail=args.fail,
            mad_factor=args.mad_factor,
            min_samples=args.min_samples,
        )
    except ValueError as error:
        raise SystemExit(f"repro: {error}")
    report = compare_results(baseline, current, tolerance)
    if args.json:
        _emit(report.to_json() + "\n", args.out)
    else:
        _emit(report.render_text(verbose=args.verbose) + "\n", args.out)
    if args.github:
        for line in report.github_annotations():
            print(line)
    return report.exit_code


def _parse_dump_signal(name):
    """``--dump-on SIGUSR1`` → the signal number, or a clear error."""
    import signal as signal_module

    if name is None:
        return None
    candidate = name.upper()
    if not candidate.startswith("SIG"):
        candidate = "SIG" + candidate
    number = getattr(signal_module, candidate, None)
    if number is None:
        raise SystemExit(f"repro: unknown signal {name!r} for --dump-on")
    return number


def cmd_serve(args):
    """Run the concurrent HTTP query service until SIGTERM/SIGINT."""
    from repro.evaluation.goldens import goldens_for
    from repro.serve import ReproServer, ServeConfig

    database = load_database(args.data, books=args.books, seed=args.seed)
    # The golden-query canary defaults on for the baselined dblp
    # dataset (where committed golden digests exist); --canary forces
    # it on elsewhere (self-baselining), --no-canary turns it off.
    canary = args.canary if args.canary is not None else args.data == "dblp"
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        tenant_inflight=args.tenant_inflight,
        default_timeout=args.timeout
        if args.timeout is not None
        else ServeConfig().default_timeout,
        max_timeout=args.max_timeout,
        audit_path=args.access_log,
        allow_xquery=args.allow_xquery,
        drain_grace=args.drain_grace,
        fault_plan=args.inject_fault or None,
        brownout=not args.no_brownout,
        watchdog=not args.no_watchdog,
        watchdog_interval=args.watchdog_interval,
        watchdog_soft=args.watchdog_soft,
        watchdog_hard=args.watchdog_hard,
        breaker_threshold=args.breaker_threshold,
        breaker_open_seconds=args.breaker_open,
        slos=(() if args.slo and args.slo[0].lower() in ("none", "off")
              else args.slo or None),
        slo_fast_burn=args.slo_fast_burn,
        recorder=not args.no_recorder,
        recorder_max_bytes=args.recorder_bytes,
        head_sample_rate=args.head_sample_rate,
        dump_dir=args.dump_dir,
        dump_signal=_parse_dump_signal(args.dump_on),
        canary=canary,
        canary_interval=args.canary_interval,
        canary_goldens=(
            goldens_for(args.data, args.books, args.seed) if canary else None
        ),
    )
    try:
        server = ReproServer(database, config=config)
    except ValueError as error:
        raise SystemExit(f"repro: {error}")
    server.start()
    print(f"repro serve: listening on {server.url} "
          f"(max {config.max_inflight} queries in flight"
          + (f", {config.tenant_rate:g}/s per tenant"
             if config.tenant_rate else "")
          + ")")
    if config.audit_path:
        print(f"repro serve: access log -> {config.audit_path}")
    if config.dump_dir:
        print(f"repro serve: flight-recorder dumps -> {config.dump_dir}"
              + (f" (and on {args.dump_on})" if args.dump_on else ""))
    if config.fault_plan:
        print(f"repro serve: CHAOS — injecting faults: "
              f"{', '.join(config.fault_plan)}")
    if server.canary is not None:
        goldens = "committed goldens" if config.canary_goldens else \
            "self-baselined goldens"
        print(f"repro serve: canary sweeping every "
              f"{config.canary_interval:g}s ({goldens})")
    signum = server.serve_until_signal()
    print(f"repro serve: received signal {signum}, drained and stopped")
    return 0


def cmd_replay(args):
    """Differential replay: re-ask a recorded log, diff the answers."""
    from repro.serve.replay import ReplayConfig, run_replay

    config = ReplayConfig(
        args.log,
        url=args.url,
        tenant=args.tenant,
        timeout=args.timeout,
        limit=args.limit,
        rotated=not args.no_rotated,
    )
    nalix = None
    if not args.url:
        database = load_database(args.data, books=args.books, seed=args.seed)
        nalix = NaLIX(database)
    try:
        report = run_replay(config, nalix=nalix)
    except OSError as error:
        raise SystemExit(f"repro: cannot read {args.log!r}: {error}")
    if args.format == "json":
        _emit(report.to_json() + "\n", args.out)
    else:
        _emit(report.render_text() + "\n", args.out)
    if args.github:
        for line in report.github_annotations():
            print(line)
    return report.exit_code


def cmd_top(args):
    """Live ops dashboard over a running ``repro serve`` instance."""
    from repro.serve.top import TopConfig, run_top

    config = TopConfig(
        args.url,
        interval=args.interval,
        once=args.once,
        color=False if args.no_color else None,
    )
    try:
        return run_top(config)
    except KeyboardInterrupt:
        return 0


def cmd_loadgen(args):
    """Drive a running server with N concurrent clients and report."""
    import json as json_module

    from repro.serve import LoadgenConfig, run_loadgen

    try:
        config = LoadgenConfig(
            args.url,
            concurrency=args.concurrency,
            requests=None if args.duration is not None else args.requests,
            duration=args.duration,
            task_mix=args.sentence or None,
            tenant=args.tenant,
            tenants=args.tenant.split(",") if "," in args.tenant else None,
            explain_every=args.explain_every,
            timeout=args.timeout,
            retries=args.retries,
            hedge=args.hedge,
            retry_seed=args.retry_seed,
        )
    except ValueError as error:
        raise SystemExit(f"repro: {error}")
    report = run_loadgen(config)
    if args.json:
        _emit(json_module.dumps(report.to_dict(), indent=2, sort_keys=True)
              + "\n", args.out)
    else:
        _emit(report.render_text() + "\n", args.out)
    if report.internal_errors or report.unclassified_5xx:
        return 1
    if (args.min_availability is not None
            and report.availability < args.min_availability):
        print(
            f"repro loadgen: availability {report.availability * 100:.2f}% "
            f"below the required {args.min_availability * 100:.2f}%",
            file=sys.stderr,
        )
        return 1
    return 0


def _resilience_summary(metrics):
    """Self-healing summary lines from a scraped ``/metrics`` parse.

    Surfaces the serving resilience layer — breaker states, brownout
    level, watchdog stuck/expired/recovered, client retries/hedges,
    injected faults — so ``repro stats --url`` answers "is the server
    healing itself?" without grepping the full table.
    """
    from repro.obs.export import prometheus_metric_name, \
        prometheus_sample_value

    def value(name):
        return prometheus_sample_value(
            metrics, prometheus_metric_name(name)
        )

    lines = []
    states = {0: "closed", 1: "half-open", 2: "open"}
    breaker_bits = []
    for klass in ("internal", "exhausted"):
        state = value(f"serve.breaker.{klass}.state")
        if state is not None:
            opened = value(f"serve.breaker.{klass}.opened") or 0
            breaker_bits.append(
                f"{klass}={states.get(int(state), state)} "
                f"(opened {int(opened)}x)"
            )
    if breaker_bits:
        lines.append("breakers   " + "  ".join(breaker_bits))
    level = value("serve.brownout.level")
    if level is not None:
        lines.append(
            f"brownout   level {int(level)}"
            f" (ascends {int(value('serve.brownout.ascends') or 0)},"
            f" pre-degraded"
            f" {int(value('serve.brownout.pre_degraded') or 0)})"
        )
    stuck = value("serve.watchdog.stuck")
    if stuck is not None:
        lines.append(
            f"watchdog   stuck {int(stuck)}, "
            f"expired {int(value('serve.watchdog.expired') or 0)}, "
            f"recovered {int(value('serve.watchdog.recovered') or 0)}"
        )
    retries = value("serve.client.retries")
    if retries:
        lines.append(
            f"client     retries {int(retries)}, "
            f"hedges {int(value('serve.client.hedges') or 0)} "
            f"(won {int(value('serve.client.hedge_wins') or 0)})"
        )
    injected = value("resilience.faults.injected")
    delayed = value("resilience.faults.delayed")
    if injected or delayed:
        lines.append(
            f"chaos      injected {int(injected or 0)}, "
            f"delayed {int(delayed or 0)}"
        )
    return lines


def _slo_summary(metrics):
    """Per-SLO burn-rate lines from a scraped ``/metrics`` parse.

    Returns ``None`` when the server exposes no ``repro_slo_*`` family
    at all — i.e. it predates the SLO engine — so the caller can say
    so explicitly instead of silently showing nothing.
    """
    burn = metrics.get("repro_slo_burn_rate")
    if burn is None:
        return None
    budgets = {
        labels.get("slo"): value
        for labels, value in
        metrics.get("repro_slo_error_budget_remaining", {}).get(
            "samples", ()
        )
    }
    alerts = {
        labels.get("slo"): value
        for labels, value in
        metrics.get("repro_slo_fast_burn_alert", {}).get("samples", ())
    }
    rates = {}
    for labels, value in burn.get("samples", ()):
        rates.setdefault(labels.get("slo"), {})[
            labels.get("window")] = value
    lines = []
    for name in sorted(rates):
        windows = rates[name]
        alerting = alerts.get(name, 0)
        lines.append(
            f"{name:<28} burn fast {windows.get('fast', 0.0):6.2f} / "
            f"slow {windows.get('slow', 0.0):6.2f}  "
            f"budget {budgets.get(name, 1.0) * 100:5.1f}%  "
            f"{'ALERT' if alerting else 'ok'}"
        )
    return lines


def _stats_from_log(args):
    """``stats --from-log``: summarize a recorded JSONL audit/access log.

    Reads through the shared hardened parser
    (:func:`repro.obs.audit.iter_records`) — rotated ``.1`` sibling
    chained, truncated tail tolerated, corrupt rows counted — instead
    of an ad-hoc ``json.loads`` loop, so ``stats`` and ``replay`` agree
    on what a log contains.
    """
    import json as json_module

    from repro.obs.audit import ReadStats, iter_records

    if args.format not in ("table", "json"):
        raise SystemExit(
            "repro: stats --from-log supports --format table|json"
        )
    read_stats = ReadStats()
    status_counts = {}
    error_classes = {}
    tenants = {}
    events = {}
    seconds = []
    queries = 0
    with_digest = 0
    try:
        for record in iter_records(args.from_log, stats=read_stats):
            event = record.get("event")
            if event:
                events[event] = events.get(event, 0) + 1
                continue
            queries += 1
            status = record.get("status") or "unknown"
            status_counts[status] = status_counts.get(status, 0) + 1
            if record.get("answer_digest"):
                with_digest += 1
            value = record.get("total_seconds", record.get("seconds"))
            if value is not None:
                seconds.append(value)
            tenant = record.get("tenant")
            if tenant:
                tenants[tenant] = tenants.get(tenant, 0) + 1
            error_class = record.get("error_class")
            if error_class:
                error_classes[error_class] = (
                    error_classes.get(error_class, 0) + 1
                )
    except OSError as error:
        raise SystemExit(f"repro: cannot read {args.from_log!r}: {error}")
    quantiles = None
    if seconds:
        ordered = sorted(seconds)
        quantiles = {
            "p50": nearest_rank(ordered, 0.50),
            "p95": nearest_rank(ordered, 0.95),
            "p99": nearest_rank(ordered, 0.99),
        }
    out = getattr(args, "out", None)
    if args.format == "json":
        _emit(
            json_module.dumps(
                {
                    "log_path": args.from_log,
                    "files": read_stats.files,
                    "records": read_stats.records,
                    "corrupt_skipped": read_stats.skipped,
                    "truncated_tail": read_stats.truncated,
                    "queries": queries,
                    "with_answer_digest": with_digest,
                    "statuses": status_counts,
                    "error_classes": error_classes,
                    "tenants": tenants,
                    "events": events,
                    "latency_seconds": quantiles,
                },
                indent=2, sort_keys=True,
            )
            + "\n",
            out,
        )
        return 0
    lines = [
        f"repro stats — {args.from_log} "
        f"({read_stats.records} records, {read_stats.files} files)",
        f"queries: {queries}  with answer digest: {with_digest}",
        "statuses: "
        + (
            "  ".join(
                f"{key}={value}"
                for key, value in sorted(status_counts.items())
            )
            or "none"
        ),
    ]
    if quantiles is not None:
        lines.append(
            "latency: "
            + "  ".join(
                f"{name} {quantiles[name] * 1000:.2f} ms"
                for name in ("p50", "p95", "p99")
            )
        )
    if error_classes:
        lines.append(
            "error classes: "
            + "  ".join(
                f"{key}={value}"
                for key, value in sorted(error_classes.items())
            )
        )
    if tenants:
        lines.append(
            "tenants: "
            + "  ".join(
                f"{key}={value}" for key, value in sorted(tenants.items())
            )
        )
    if events:
        lines.append(
            "events: "
            + "  ".join(
                f"{key}={value}" for key, value in sorted(events.items())
            )
        )
    if read_stats.skipped or read_stats.truncated:
        lines.append(
            f"log health: {read_stats.skipped} corrupt rows skipped, "
            f"{read_stats.truncated} truncated tail"
        )
    _emit("\n".join(lines) + "\n", out)
    return 0


def _stats_from_url(args):
    """``stats --url``: read a live server's ``/metrics`` exposition."""
    import json as json_module
    import urllib.error
    import urllib.request

    from repro.obs.export import parse_prometheus_text

    import time as time_module

    from repro.resilience.retry import RetryPolicy

    url = args.url
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"

    def scrape():
        # Scrapes ride the shared retry policy: a server mid-restart or
        # briefly overloaded should not fail an ops look-in.
        policy = RetryPolicy(max_attempts=3, seed=0)
        attempt = 0
        while True:
            attempt += 1
            try:
                with urllib.request.urlopen(url, timeout=10.0) as response:
                    return response.read().decode("utf-8")
            except (urllib.error.URLError, OSError) as error:
                if not policy.should_retry(attempt, transport_error=True):
                    raise SystemExit(
                        f"repro: cannot scrape {url!r}: {error}"
                    )
                time_module.sleep(policy.backoff_seconds(attempt))

    def render_once():
        text = scrape()
        out = getattr(args, "out", None)
        if args.format == "prom":
            _emit(text, out)
            return 0
        metrics = parse_prometheus_text(text)
        if args.format == "json":
            document = {
                name: {
                    "type": entry["type"],
                    "samples": [
                        {"labels": labels, "value": value}
                        for labels, value in entry["samples"]
                    ],
                }
                for name, entry in sorted(metrics.items())
            }
            _emit(json_module.dumps(document, indent=2, sort_keys=True)
                  + "\n", out)
            return 0
        print(f"repro stats — scraped {url} ({len(metrics)} metrics)\n")
        slo_lines = _slo_summary(metrics)
        if slo_lines is None:
            # A server predating the SLO engine: say so loudly and exit
            # nonzero so dashboards/scripts notice the missing family
            # instead of silently reporting "no SLOs configured".
            print("slo:")
            print("  this server exposes no repro_slo_* metrics — it "
                  "predates the SLO engine")
            print("  (upgrade the server, or start it without --slo none, "
                  "to get burn rates)")
            print()
        elif slo_lines:
            print("slo:")
            for line in slo_lines:
                print("  " + line)
            print()
        summary = _resilience_summary(metrics)
        if summary:
            print("self-healing:")
            for line in summary:
                print("  " + line)
            print()
        print(f"{'metric':<54}{'type':>9}{'value':>14}")
        print("-" * 77)
        for name, entry in sorted(metrics.items()):
            for labels, value in entry["samples"]:
                label_text = ",".join(
                    f"{key}={val}" for key, val in sorted(labels.items())
                )
                shown = name + (f"{{{label_text}}}" if label_text else "")
                print(f"{shown:<54}{entry['type']:>9}{value:>14.6g}")
        return 3 if slo_lines is None else 0

    watch = getattr(args, "watch", None)
    if not watch:
        return render_once()
    # --watch N: refresh the same report every N seconds until Ctrl-C.
    code = 0
    try:
        while True:
            print("\x1b[2J\x1b[H", end="")
            code = render_once()
            time_module.sleep(watch)
    except KeyboardInterrupt:
        return code


def cmd_stats(args):
    """Replay the XMP task phrasings; report per-stage statistics.

    ``--format table`` (default) prints the human-readable breakdown;
    ``json`` dumps the metrics snapshot + sliding latency windows;
    ``prom`` emits Prometheus text exposition; ``chrome`` emits Chrome
    trace-event JSON of every replayed query (one thread lane each).
    With ``--url`` the command scrapes a live ``repro serve`` instance's
    ``/metrics`` endpoint instead of replaying queries locally, and
    ``--from-log`` summarizes a recorded JSONL audit/access log through
    the shared hardened reader.
    """
    import json as json_module

    from repro.evaluation.tasks import TASKS

    if getattr(args, "from_log", None):
        return _stats_from_log(args)
    if args.url:
        return _stats_from_url(args)

    database = load_database("dblp", books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit)

    stage_stats = {
        name: {"calls": 0, "seconds": [], "errors": 0, "alloc_bytes": []}
        for name in STAGES
    }
    status_counts = {"ok": 0, "degraded": 0, "rejected": 0, "failed": 0}
    category_counts = {}
    ask_seconds = []
    traces = []
    sentences = []
    peak_rss = 0
    query_allocs = []

    queries = 0
    for task in TASKS:
        phrasings = (
            task.good_phrasings() if args.good_only else task.phrasings
        )
        for phrasing in phrasings:
            result = nalix.ask(phrasing.text, memory=args.memory)
            queries += 1
            status_counts[result.status] += 1
            ask_seconds.append(result.total_seconds)
            traces.append(result.trace)
            sentences.append(phrasing.text)
            for message in result.errors:
                category_counts[message.code] = (
                    category_counts.get(message.code, 0) + 1
                )
            for span in result.trace.iter_spans():
                if span.name not in stage_stats:
                    continue
                entry = stage_stats[span.name]
                entry["calls"] += 1
                entry["seconds"].append(span.duration_seconds)
                if span.status != "ok":
                    entry["errors"] += 1
            memory = result.memory
            if memory is not None:
                peak_rss = max(peak_rss, memory.peak_rss_bytes)
                if memory.alloc_bytes is not None:
                    query_allocs.append(memory.alloc_bytes)
                for stage_name, stage_memory in memory.stages.items():
                    if stage_name in stage_stats:
                        stage_stats[stage_name]["alloc_bytes"].append(
                            stage_memory["alloc_bytes"]
                        )

    out = getattr(args, "out", None)
    if args.format == "prom":
        _emit(
            prometheus_text(
                METRICS.snapshot(), extra_lines=LATENCIES.prometheus_lines()
            ),
            out,
        )
        return _finish(args, audit, 0)
    if args.format == "chrome":
        _emit(
            chrome_trace_json(traces, indent=2, names=sentences) + "\n", out
        )
        return _finish(args, audit, 0)
    if args.format == "json":
        _emit(
            json_module.dumps(
                {
                    "metrics": METRICS.snapshot(),
                    "latency_windows": LATENCIES.snapshot(),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            out,
        )
        return _finish(args, audit, 0)

    print(
        f"repro stats — {len(TASKS)} tasks, {queries} queries "
        f"(dblp, {args.books} books)\n"
    )
    header = (
        f"{'stage':<14}{'calls':>7}{'mean ms':>10}{'p50 ms':>10}"
        f"{'p95 ms':>10}{'p99 ms':>10}{'max ms':>10}{'errors':>8}"
    )
    if args.memory:
        header += f"{'alloc KiB':>11}"
    print(header)
    print("-" * len(header))
    for name in STAGES:
        entry = stage_stats[name]
        if not entry["calls"]:
            continue
        timings = sorted(entry["seconds"])
        mean = sum(timings) / len(timings)
        row = (
            f"{name:<14}{entry['calls']:>7}{mean * 1000:>10.2f}"
            f"{nearest_rank(timings, 0.50) * 1000:>10.2f}"
            f"{nearest_rank(timings, 0.95) * 1000:>10.2f}"
            f"{nearest_rank(timings, 0.99) * 1000:>10.2f}"
            f"{timings[-1] * 1000:>10.2f}"
            f"{entry['errors']:>8}"
        )
        if args.memory:
            allocs = entry["alloc_bytes"]
            mean_alloc = sum(allocs) / len(allocs) / 1024.0 if allocs else 0.0
            row += f"{mean_alloc:>11.1f}"
        print(row)
    if ask_seconds:
        total_mean = sum(ask_seconds) / len(ask_seconds)
        print(f"\nend-to-end mean: {total_mean * 1000:.2f} ms/query")
    if args.memory:
        mean_alloc = (
            sum(query_allocs) / len(query_allocs) if query_allocs else 0.0
        )
        print(
            f"memory: peak rss {peak_rss / (1024.0 * 1024.0):.1f} MiB, "
            f"mean alloc {mean_alloc / 1024.0:.1f} KiB/query"
        )
    print(
        "status: "
        + "  ".join(f"{key}={value}" for key, value in status_counts.items())
    )
    if category_counts:
        print("failures by category:")
        for code in sorted(category_counts, key=category_counts.get,
                           reverse=True):
            print(f"  {code:<24}{category_counts[code]:>4}")
    resilience = {
        name: value
        for name, value in METRICS.snapshot()["counters"].items()
        if name.startswith("resilience.") and value
    }
    if resilience:
        print("resilience counters:")
        for name in sorted(resilience):
            print(f"  {name:<40}{resilience[name]:>6}")
    return _finish(args, audit, 0)


def cmd_lint(args):
    """qlint: static-analyze queries and/or the pipeline tables.

    Inputs compose: positional sentences (English, or raw XQuery with
    ``--xquery``), ``--stdin`` batch lines, the nine benchmark tasks
    (``--tasks``), the full golden corpus (``--corpus``), and the
    pipeline-table self-check (``--self``).  With no inputs at all the
    command runs ``--self --corpus`` — the same checks as CI's
    ``lint-queries`` job.  Exit status is non-zero when any error
    finding fires (or any warning, with ``--strict``).
    """
    import json as json_module

    from repro.analysis import (
        RULES,
        analyze_query,
        check_pipeline_consistency,
        iter_corpus,
    )

    suppress = tuple(args.suppress or ())
    unknown = sorted(set(suppress) - set(RULES))
    if unknown:
        raise SystemExit(
            f"repro: unknown rule id(s): {', '.join(unknown)}"
        )

    sentences = list(args.sentence or ())
    if args.stdin:
        sentences.extend(
            line.strip() for line in sys.stdin if line.strip()
        )
    jobs = []  # (dataset, label, text, kind)
    kind = "xquery" if args.xquery else "english"
    for text in sentences:
        jobs.append((args.data, text, text, kind))
    corpus = args.corpus
    self_check = args.self_check
    if not jobs and not args.tasks and not corpus and not self_check:
        corpus = self_check = True
    if args.tasks and not corpus:
        from repro.evaluation.tasks import TASKS

        for task in TASKS:
            for index, phrasing in enumerate(task.good_phrasings()):
                jobs.append(
                    ("dblp", f"{task.task_id}[{index}]",
                     phrasing.text, "english")
                )
    if corpus:
        for dataset, label, text in iter_corpus():
            jobs.append((dataset, label, text, "english"))

    reports = []  # (label, AnalysisReport | None, note)
    if self_check:
        reports.append(
            ("pipeline-tables", check_pipeline_consistency(), None)
        )
    interfaces = {}

    def interface_for(dataset):
        if dataset not in interfaces:
            database = load_database(
                dataset, books=args.books, seed=args.seed
            )
            interfaces[dataset] = NaLIX(
                database, analysis_suppress=suppress
            )
        return interfaces[dataset]

    for dataset, label, text, job_kind in jobs:
        if job_kind == "xquery":
            try:
                reports.append(
                    (label, analyze_query(text, suppress=suppress), None)
                )
            except Exception as error:
                reports.append(
                    (label, None, f"unparseable XQuery: {error}")
                )
            continue
        result = interface_for(dataset).ask(text, evaluate=False)
        if result.analysis is not None:
            reports.append((label, result.analysis, None))
        else:
            codes = ", ".join(
                message.code for message in result.errors
            ) or result.status
            reports.append(
                (label, None,
                 f"the query did not reach the analyzer ({codes})")
            )

    error_count = sum(
        len(report.errors) for _, report, _ in reports if report is not None
    )
    warning_count = sum(
        len(report.warnings) for _, report, _ in reports
        if report is not None
    )
    unanalyzed = [label for label, report, _ in reports if report is None]

    if args.format == "json":
        document = []
        for label, report, note in reports:
            if report is not None:
                entry = report.to_dict()
                entry["xquery"] = entry.pop("subject", None)
            else:
                entry = {"error": note}
            entry["subject"] = label
            document.append(entry)
        print(json_module.dumps(document, indent=2))
    elif args.format == "github":
        for label, report, note in reports:
            if report is not None:
                for line in report.github_lines(context=label):
                    print(line)
            else:
                print(f"::error title=lint::{note} [{label}]")
    else:
        for label, report, note in reports:
            if note is not None:
                print(f"{label}: error — {note}")
            elif report.findings:
                print(f"{label}:")
                for finding in report.findings:
                    print(f"  {finding.render()}")
        print(
            f"linted {len(reports)} subject(s): "
            f"{error_count} error(s), {warning_count} warning(s)"
            + (f", {len(unanalyzed)} unanalyzable" if unanalyzed else "")
        )
    failed = (
        bool(unanalyzed)
        or error_count
        or (args.strict and warning_count)
    )
    return 1 if failed else 0


def cmd_lint_src(args):
    """srclint: concurrency/resource-safety analysis of the repo source.

    Lints the installed ``repro`` package by default (or the given
    paths): lock-order against the declared hierarchy, ContextVar
    set/reset pairing, wall-vs-monotonic clock discipline, and
    thread/container lifecycle.  Exit status is non-zero on any error
    finding (or any warning, with ``--strict``).  CI runs
    ``repro lint-src --strict --format github`` as a hard gate.
    """
    from repro.analysis.srclint import (
        lint_paths,
        render_src_rule_table,
    )

    if args.rules:
        print(render_src_rule_table())
        return 0
    report = lint_paths(
        paths=args.path or None,
        lockorder_path=args.lockorder,
        suppress_path=args.suppress_file,
        use_default_suppressions=not args.no_default_suppressions,
    )
    if args.format == "json":
        print(report.to_json())
    elif args.format == "github":
        for line in report.github_lines():
            print(line)
        print(
            f"srclint: {report.files_scanned} files, "
            f"{len(report.errors)} errors, {len(report.warnings)} "
            f"warnings, {len(report.suppressed)} suppressed"
        )
    else:
        print(report.render_text())
    return 0 if report.ok(strict=args.strict) else 1


def cmd_study(args):
    from repro.evaluation.report import StudyReport
    from repro.evaluation.study import Study, StudyConfig

    config = StudyConfig(
        participants=args.participants,
        seed=args.seed,
        dblp=DblpConfig(books=args.books, seed=args.seed),
    )
    audit = _open_audit_log(args)
    study = Study(config)
    if audit is not None:
        study.nalix.audit_log = audit
    if args.memory:
        # The study drives its own asks, so tracking is turned on for
        # every query via the ContextVar activation instead.
        with activate_memory_tracking(True):
            results = study.run()
    else:
        results = study.run()
    print(StudyReport(results).render())
    return _finish(args, audit, 0)


def cmd_generate(args):
    from repro.xmlstore.serializer import to_pretty_string

    document = generate_dblp(DblpConfig(books=args.books, seed=args.seed))
    text = to_pretty_string(document.root)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {document.node_count()} nodes to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _add_data_options(parser, default_data="movies"):
    parser.add_argument(
        "--data",
        default=default_data,
        help="dataset: movies | bib | dblp | path to an XML file",
    )
    parser.add_argument("--books", type=int, default=120,
                        help="books in the generated dblp dataset")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")


def _add_resilience_options(parser):
    parser.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="run each query under the default budget with this deadline",
    )
    parser.add_argument(
        "--inject-fault", action="append", metavar="SPEC",
        help="inject a deterministic fault: STAGE, STAGE:N, or "
        "STAGE:p=FLOAT[,seed=INT] (repeatable)",
    )


def _add_obs_options(parser, trace=False):
    if trace:
        parser.add_argument("--trace", action="store_true",
                            help="print the span tree of each query")
    parser.add_argument("--metrics", action="store_true",
                        help="dump the metrics registry as JSON on exit")
    parser.add_argument("--audit-log", metavar="PATH",
                        help="append one JSONL audit record per query")
    parser.add_argument("--memory", action="store_true",
                        help="account per-stage allocations (tracemalloc) "
                        "for each query")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NaLIX reproduction: natural language queries over XML",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="run one English query")
    _add_data_options(query)
    _add_obs_options(query, trace=True)
    _add_resilience_options(query)
    query.add_argument("--quiet", action="store_true",
                       help="hide the generated XQuery")
    query.add_argument("--explain", action="store_true",
                       help="print the full provenance/plan report")
    query.add_argument("--profile", action="store_true",
                       help="sample stacks during the query and write a "
                       "collapsed-stack file")
    query.add_argument("--profile-hz", type=float, default=DEFAULT_HZ,
                       metavar="HZ", help="profiler sampling rate")
    query.add_argument("--profile-out", metavar="PATH",
                       help="collapsed-stack output path "
                       "(default: profile.collapsed)")
    query.add_argument("sentence", help="the English query")
    query.set_defaults(handler=cmd_query)

    explain_parser = commands.add_parser(
        "explain",
        help="show word -> token -> clause lineage and plan statistics",
    )
    _add_data_options(explain_parser)
    _add_obs_options(explain_parser)
    explain_parser.add_argument("--json", action="store_true",
                                help="emit the report as JSON")
    explain_parser.add_argument("--no-evaluate", action="store_true",
                                help="skip evaluation (no plan statistics)")
    explain_parser.add_argument("--timeout", type=float, metavar="SECONDS")
    explain_parser.add_argument("sentence", help="the English query")
    explain_parser.set_defaults(handler=cmd_explain)

    repl = commands.add_parser("repl", help="interactive query loop")
    _add_data_options(repl)
    _add_obs_options(repl, trace=True)
    _add_resilience_options(repl)
    repl.add_argument("--quiet", action="store_true")
    repl.set_defaults(handler=cmd_repl)

    xquery = commands.add_parser("xquery", help="run raw Schema-Free XQuery")
    _add_data_options(xquery, default_data="bib")
    xquery.add_argument("query", help="the XQuery text")
    xquery.set_defaults(handler=cmd_xquery)

    tasks = commands.add_parser("tasks", help="run the 9 XMP study tasks")
    tasks.add_argument("--books", type=int, default=120)
    tasks.add_argument("--seed", type=int, default=7)
    _add_obs_options(tasks)
    tasks.set_defaults(handler=cmd_tasks)

    stats = commands.add_parser(
        "stats",
        help="replay the XMP task phrasings; report per-stage "
        "latency and failure counts",
    )
    stats.add_argument("--books", type=int, default=120)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--url", metavar="URL",
                       help="scrape a live repro serve /metrics endpoint "
                       "instead of replaying queries locally")
    stats.add_argument("--from-log", metavar="PATH",
                       help="summarize a recorded JSONL audit/access log "
                       "(rotated .1 sibling chained, corrupt rows "
                       "counted) instead of replaying queries")
    stats.add_argument("--good-only", action="store_true",
                       help="replay only the known-good phrasings")
    stats.add_argument("--format", choices=("table", "json", "prom", "chrome"),
                       default="table",
                       help="output format (default: human-readable table)")
    stats.add_argument("--watch", type=float, metavar="SECONDS",
                       help="with --url: re-scrape and refresh every N "
                       "seconds until Ctrl-C")
    stats.add_argument("--out", metavar="PATH",
                       help="write the export to a file instead of stdout")
    _add_obs_options(stats)
    stats.set_defaults(handler=cmd_stats)

    profile = commands.add_parser(
        "profile",
        help="sample a query's stacks into flamegraph/speedscope input",
    )
    _add_data_options(profile)
    profile.add_argument("--hz", type=float, default=DEFAULT_HZ,
                         help="sampling rate (default: %(default)s)")
    profile.add_argument("--repeat", type=int, default=20, metavar="N",
                         help="re-ask the query N times to densify samples")
    profile.add_argument("--format", choices=("collapsed", "speedscope"),
                         default="collapsed",
                         help="output format (default: collapsed stacks)")
    profile.add_argument("--memory", action="store_true",
                         help="also track per-stage allocations")
    profile.add_argument("--out", metavar="PATH",
                         help="write the profile to a file instead of stdout")
    profile.add_argument("sentence", help="the English query")
    profile.set_defaults(handler=cmd_profile)

    bench_check = commands.add_parser(
        "bench-check",
        help="compare a fresh benchmark run against the committed baseline",
    )
    bench_check.add_argument("--baseline",
                             default="benchmarks/BENCH_RESULTS.json",
                             metavar="PATH",
                             help="baseline results (default: %(default)s)")
    bench_check.add_argument("--current", metavar="PATH",
                             help="ingest a saved results file instead of "
                             "running the benchmark tasks")
    bench_check.add_argument("--repeats", type=int, default=5,
                             help="repeats per task for the fresh run")
    bench_check.add_argument("--books", type=int, default=120)
    bench_check.add_argument("--seed", type=int, default=7)
    bench_check.add_argument("--warn", type=float, default=0.25,
                             metavar="FRACTION",
                             help="relative slowdown that warns "
                             "(default: %(default)s)")
    bench_check.add_argument("--fail", type=float, default=1.0,
                             metavar="FRACTION",
                             help="relative slowdown that fails "
                             "(default: %(default)s)")
    bench_check.add_argument("--mad-factor", type=float, default=4.0,
                             help="noise guard: tolerate this many MADs of "
                             "the current samples")
    bench_check.add_argument("--min-samples", type=int, default=3,
                             help="skip comparisons with fewer runs")
    bench_check.add_argument("--handicap", action="append",
                             metavar="STAGE=FACTOR",
                             help="synthetically slow a stage of the current "
                             "run (gate self-test; repeatable)")
    bench_check.add_argument("--save-current", metavar="PATH",
                             help="also write the current run's results JSON")
    bench_check.add_argument("--json", action="store_true",
                             help="emit the report as JSON")
    bench_check.add_argument("--verbose", action="store_true",
                             help="list every comparison, not just "
                             "warnings and failures")
    bench_check.add_argument("--github", action="store_true",
                             help="emit ::warning/::error workflow "
                             "annotation lines")
    bench_check.add_argument("--out", metavar="PATH",
                             help="write the report to a file")
    bench_check.add_argument("--serve", action="store_true",
                             help="also run the sustained-throughput "
                             "serving benchmark in the fresh run")
    bench_check.set_defaults(handler=cmd_bench_check)

    serve = commands.add_parser(
        "serve",
        help="run the concurrent HTTP query service "
        "(/query, /metrics, /healthz, /readyz)",
    )
    _add_data_options(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks a free one "
                       "(default: %(default)s)")
    serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="concurrent queries before shedding load "
                       "with 503 (default: %(default)s)")
    serve.add_argument("--tenant-rate", type=float, metavar="R",
                       help="per-tenant rate limit in requests/second "
                       "(default: unlimited)")
    serve.add_argument("--tenant-burst", type=float, metavar="N",
                       help="per-tenant token-bucket burst depth")
    serve.add_argument("--tenant-inflight", type=int, metavar="N",
                       help="per-tenant concurrent-query cap")
    serve.add_argument("--timeout", type=float, metavar="SECONDS",
                       help="default per-query budget deadline")
    serve.add_argument("--max-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="largest per-query deadline a client may "
                       "request (default: %(default)s)")
    serve.add_argument("--access-log", metavar="PATH",
                       help="rotating JSONL access log (one audit "
                       "record per query)")
    serve.add_argument("--allow-xquery", action="store_true",
                       help="enable POST /xquery (raw queries, gated "
                       "by the qlint static analyzer)")
    serve.add_argument("--drain-grace", type=float, metavar="SECONDS",
                       help="max seconds to wait for in-flight queries "
                       "on shutdown")
    serve.add_argument("--inject-fault", action="append", metavar="SPEC",
                       help="chaos: inject a fault into the served "
                       "pipeline (STAGE, STAGE:N, STAGE:p=0.1[,seed=S]"
                       "[,delay=SECONDS][,tenant=NAME]; repeatable)")
    serve.add_argument("--no-brownout", action="store_true",
                       help="disable the brownout ladder (budget "
                       "tightening + pre-degradation under pressure)")
    serve.add_argument("--no-watchdog", action="store_true",
                       help="disable the stuck-query watchdog")
    serve.add_argument("--watchdog-interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="watchdog scan interval "
                       "(default: %(default)s)")
    serve.add_argument("--watchdog-soft", type=float, metavar="SECONDS",
                       help="absolute stuck stamp deadline (default: "
                       "1.5x each request's budget deadline)")
    serve.add_argument("--watchdog-hard", type=float, metavar="SECONDS",
                       help="absolute force-expiry deadline (default: "
                       "3x each request's budget deadline)")
    serve.add_argument("--breaker-threshold", type=float, default=0.5,
                       metavar="FRACTION",
                       help="rolling failure rate that opens a circuit "
                       "breaker (default: %(default)s)")
    serve.add_argument("--breaker-open", type=float, default=5.0,
                       metavar="SECONDS",
                       help="seconds an open breaker waits before "
                       "half-open probes (default: %(default)s)")
    serve.add_argument("--slo", action="append", metavar="SPEC",
                       help="SLO spec: availability:0.99 or "
                       "latency:0.99@0.5[@/query]; repeatable; "
                       "'none' disables the SLO engine (default: "
                       "99%% availability + p99<1s on /query)")
    serve.add_argument("--slo-fast-burn", type=float, default=14.4,
                       metavar="RATE",
                       help="fast-window burn rate that raises the "
                       "page-now alert (default: %(default)s)")
    serve.add_argument("--no-recorder", action="store_true",
                       help="disable the tail sampler + flight recorder")
    serve.add_argument("--recorder-bytes", type=int,
                       default=8 * 1024 * 1024, metavar="BYTES",
                       help="flight-recorder ring-buffer budget "
                       "(default: %(default)s)")
    serve.add_argument("--head-sample-rate", type=float, default=0.1,
                       metavar="FRACTION",
                       help="fraction of healthy traffic the sampler "
                       "retains (default: %(default)s)")
    serve.add_argument("--dump-dir", metavar="DIR",
                       help="directory for automatic flight-recorder "
                       "dumps (breaker-open, watchdog-hard, SLO "
                       "fast-burn)")
    serve.add_argument("--dump-on", metavar="SIGNAL",
                       help="also dump on this signal, e.g. SIGUSR1 "
                       "(server keeps running)")
    serve.add_argument("--canary", dest="canary", action="store_true",
                       default=None,
                       help="run the golden-query correctness canary "
                       "(default: on for --data dblp, where committed "
                       "golden digests exist)")
    serve.add_argument("--no-canary", dest="canary", action="store_false",
                       help="disable the correctness canary")
    serve.add_argument("--canary-interval", type=float, default=30.0,
                       metavar="SECONDS",
                       help="seconds between canary sweeps "
                       "(default: %(default)s)")
    serve.set_defaults(handler=cmd_serve)

    top = commands.add_parser(
        "top",
        help="live ANSI dashboard over a running repro serve "
        "(QPS, SLO burn, breakers, in-flight requests)",
    )
    top.add_argument("--url", default="http://127.0.0.1:8080",
                     help="server base URL (default: %(default)s)")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="refresh interval (default: %(default)s)")
    top.add_argument("--once", action="store_true",
                     help="print one plain frame and exit (CI smoke)")
    top.add_argument("--no-color", action="store_true",
                     help="disable ANSI colors")
    top.set_defaults(handler=cmd_top)

    loadgen = commands.add_parser(
        "loadgen",
        help="drive a running repro serve with N concurrent clients",
    )
    loadgen.add_argument("--url", default="http://127.0.0.1:8080",
                         help="server base URL (default: %(default)s)")
    loadgen.add_argument("--concurrency", type=int, default=8, metavar="N",
                         help="concurrent clients (default: %(default)s)")
    loadgen.add_argument("--requests", type=int, default=90, metavar="N",
                         help="total requests to issue "
                         "(default: %(default)s)")
    loadgen.add_argument("--duration", type=float, metavar="SECONDS",
                         help="run for a duration instead of a request "
                         "count")
    loadgen.add_argument("--tenant", default="loadgen",
                         help="tenant header value; comma-separate "
                         "several to spread workers across tenants")
    loadgen.add_argument("--explain-every", type=int, default=0,
                         metavar="N",
                         help="request explain output on every Nth "
                         "query (0 = never)")
    loadgen.add_argument("--timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="per-request client timeout")
    loadgen.add_argument("--retries", type=int, default=0, metavar="N",
                         help="retry retryable outcomes up to N times "
                         "with backoff + Retry-After (default: off)")
    loadgen.add_argument("--hedge", action="store_true",
                         help="race a hedged second attempt once a "
                         "request exceeds the client's observed p95")
    loadgen.add_argument("--retry-seed", type=int, default=0,
                         help="base seed for the retry jitter")
    loadgen.add_argument("--min-availability", type=float, metavar="FRACTION",
                         help="exit 1 when final-outcome availability "
                         "falls below this fraction")
    loadgen.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    loadgen.add_argument("--out", metavar="PATH",
                         help="write the report to a file")
    loadgen.add_argument("sentence", nargs="*",
                         help="task mix (default: the nine study-task "
                         "phrasings)")
    loadgen.set_defaults(handler=cmd_loadgen)

    replay = commands.add_parser(
        "replay",
        help="re-execute a recorded audit/access log and diff the "
        "answer digests against the current build",
    )
    _add_data_options(replay, default_data="dblp")
    replay.add_argument("log", metavar="LOG",
                        help="JSONL audit/access log path (the rotated "
                        ".1 sibling is chained automatically)")
    replay.add_argument("--url", metavar="URL",
                        help="replay against a live repro serve instance "
                        "instead of an in-process pipeline")
    replay.add_argument("--tenant", default="replay",
                        help="tenant header in --url mode "
                        "(default: %(default)s)")
    replay.add_argument("--timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="per-query budget/client timeout "
                        "(default: %(default)s)")
    replay.add_argument("--limit", type=int, metavar="N",
                        help="replay at most N records")
    replay.add_argument("--no-rotated", action="store_true",
                        help="read exactly the named file (skip the "
                        "rotated .1 sibling)")
    replay.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="report format (default: text)")
    replay.add_argument("--github", action="store_true",
                        help="emit ::warning/::error workflow "
                        "annotation lines")
    replay.add_argument("--out", metavar="PATH",
                        help="write the report to a file")
    replay.set_defaults(handler=cmd_replay)

    lint = commands.add_parser(
        "lint",
        help="qlint: static-analyze queries and the pipeline tables",
    )
    _add_data_options(lint)
    lint.add_argument("sentence", nargs="*",
                      help="English queries to lint (raw XQuery with "
                      "--xquery); none = --self --corpus")
    lint.add_argument("--stdin", action="store_true",
                      help="also read one query per line from stdin")
    lint.add_argument("--xquery", action="store_true",
                      help="treat the inputs as raw XQuery text")
    lint.add_argument("--tasks", action="store_true",
                      help="lint the 9 XMP benchmark task phrasings")
    lint.add_argument("--corpus", action="store_true",
                      help="lint the full corpus: paper examples + tasks")
    lint.add_argument("--self", dest="self_check", action="store_true",
                      help="cross-check the lexicon/grammar/translator "
                      "tables (QP rules)")
    lint.add_argument("--suppress", action="append", metavar="RULE",
                      help="suppress a rule id (repeatable)")
    lint.add_argument("--format", choices=("text", "json", "github"),
                      default="text",
                      help="output format (default: text)")
    lint.add_argument("--strict", action="store_true",
                      help="warnings also fail the lint")
    lint.set_defaults(handler=cmd_lint)

    lint_src = commands.add_parser(
        "lint-src",
        help="srclint: concurrency/resource-safety analysis of the "
        "repo's own source",
    )
    lint_src.add_argument("path", nargs="*",
                          help="files or directories to lint "
                          "(default: the installed repro package)")
    lint_src.add_argument("--format", choices=("text", "json", "github"),
                          default="text",
                          help="output format (default: text)")
    lint_src.add_argument("--strict", action="store_true",
                          help="warnings also fail the lint")
    lint_src.add_argument("--suppress-file", metavar="FILE",
                          help="extra suppression file (adds to the "
                          "packaged srclint-suppress.txt)")
    lint_src.add_argument("--no-default-suppressions", action="store_true",
                          help="ignore the packaged suppression file")
    lint_src.add_argument("--lockorder", metavar="FILE",
                          help="alternate lock-hierarchy TOML "
                          "(default: packaged lockorder.toml)")
    lint_src.add_argument("--rules", action="store_true",
                          help="print the srclint rule catalog and exit")
    lint_src.set_defaults(handler=cmd_lint_src)

    study = commands.add_parser("study", help="run the simulated user study")
    study.add_argument("--participants", type=int, default=18)
    study.add_argument("--seed", type=int, default=2006)
    study.add_argument("--books", type=int, default=120)
    _add_obs_options(study)
    study.set_defaults(handler=cmd_study)

    generate = commands.add_parser("generate", help="emit a DBLP-like XML file")
    generate.add_argument("--books", type=int, default=120)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", help="output path (stdout when absent)")
    generate.set_defaults(handler=cmd_generate)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Piping into e.g. ``head`` closes stdout early; that is not an
        # error.  Point stdout at devnull so interpreter shutdown does
        # not trip over the closed pipe.
        import os

        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
