"""Command-line interface to the reproduction.

Subcommands::

    python -m repro query   [--data movies|bib|dblp|FILE] "SENTENCE"
    python -m repro repl    [--data ...]          # interactive loop
    python -m repro xquery  [--data ...] "QUERY"  # raw Schema-Free XQuery
    python -m repro tasks   [--books N]           # run the 9 XMP tasks
    python -m repro study   [--participants N] [--seed S]
    python -m repro generate [--books N] [--seed S] [--out FILE]

Each command builds its database from the named built-in dataset (or an
XML file path) and prints human-readable output; exit status is non-zero
when a query is rejected.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.interface import NaLIX
from repro.data import DblpConfig, bib_document, generate_dblp, movies_document
from repro.database.store import Database
from repro.xquery.errors import XQueryError
from repro.xquery.evaluator import evaluate_query
from repro.xquery.values import string_value


def load_database(spec, books=120, seed=7):
    """Build a Database from a dataset name or an XML file path."""
    database = Database()
    if spec == "movies":
        database.load_document(movies_document())
    elif spec == "bib":
        database.load_document(bib_document())
    elif spec == "dblp":
        database.load_document(generate_dblp(DblpConfig(books=books, seed=seed)))
    else:
        database.load_file(spec)
    return database


def _print_result(result, show_xquery=True):
    if not result.ok:
        print(result.render_feedback())
        return False
    if show_xquery:
        print("XQuery:", result.xquery_text)
    for warning in result.warnings:
        print(warning.render())
    values = result.values()
    print(f"{len(values)} result(s):")
    for value in values[:50]:
        print(" ", value)
    if len(values) > 50:
        print(f"  ... and {len(values) - 50} more")
    return True


def cmd_query(args):
    database = load_database(args.data, books=args.books, seed=args.seed)
    nalix = NaLIX(database)
    ok = _print_result(nalix.ask(args.sentence), show_xquery=not args.quiet)
    return 0 if ok else 1


def cmd_repl(args):
    database = load_database(args.data, books=args.books, seed=args.seed)
    nalix = NaLIX(database)
    print(database)
    print("Type an English query (empty line to quit).")
    while True:
        try:
            line = input("nalix> ").strip()
        except EOFError:
            break
        if not line:
            break
        _print_result(nalix.ask(line), show_xquery=not args.quiet)
    return 0


def cmd_xquery(args):
    database = load_database(args.data, books=args.books, seed=args.seed)
    try:
        items = evaluate_query(database, args.query)
    except XQueryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"{len(items)} item(s):")
    for item in items[:50]:
        print(" ", string_value(item))
    if len(items) > 50:
        print(f"  ... and {len(items) - 50} more")
    return 0


def cmd_tasks(args):
    from repro.evaluation.metrics import harmonic_mean, precision_recall
    from repro.evaluation.tasks import TASKS

    database = load_database("dblp", books=args.books, seed=args.seed)
    nalix = NaLIX(database)
    failures = 0
    for task in TASKS:
        gold = task.gold(database)
        phrasing = task.good_phrasings()[0]
        result = nalix.ask(phrasing.text)
        if not result.ok:
            print(f"{task.task_id}: REJECTED — {phrasing.text}")
            failures += 1
            continue
        precision, recall = precision_recall(
            result.distinct_items(), gold, ordered=task.ordered
        )
        score = harmonic_mean(precision, recall)
        print(
            f"{task.task_id}: P={precision:.2f} R={recall:.2f} "
            f"F={score:.2f} — {phrasing.text}"
        )
        if score < 0.5:
            failures += 1
    return 1 if failures else 0


def cmd_study(args):
    from repro.evaluation.report import StudyReport
    from repro.evaluation.study import Study, StudyConfig

    config = StudyConfig(
        participants=args.participants,
        seed=args.seed,
        dblp=DblpConfig(books=args.books, seed=args.seed),
    )
    results = Study(config).run()
    print(StudyReport(results).render())
    return 0


def cmd_generate(args):
    from repro.xmlstore.serializer import to_pretty_string

    document = generate_dblp(DblpConfig(books=args.books, seed=args.seed))
    text = to_pretty_string(document.root)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {document.node_count()} nodes to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _add_data_options(parser, default_data="movies"):
    parser.add_argument(
        "--data",
        default=default_data,
        help="dataset: movies | bib | dblp | path to an XML file",
    )
    parser.add_argument("--books", type=int, default=120,
                        help="books in the generated dblp dataset")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NaLIX reproduction: natural language queries over XML",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="run one English query")
    _add_data_options(query)
    query.add_argument("--quiet", action="store_true",
                       help="hide the generated XQuery")
    query.add_argument("sentence", help="the English query")
    query.set_defaults(handler=cmd_query)

    repl = commands.add_parser("repl", help="interactive query loop")
    _add_data_options(repl)
    repl.add_argument("--quiet", action="store_true")
    repl.set_defaults(handler=cmd_repl)

    xquery = commands.add_parser("xquery", help="run raw Schema-Free XQuery")
    _add_data_options(xquery, default_data="bib")
    xquery.add_argument("query", help="the XQuery text")
    xquery.set_defaults(handler=cmd_xquery)

    tasks = commands.add_parser("tasks", help="run the 9 XMP study tasks")
    tasks.add_argument("--books", type=int, default=120)
    tasks.add_argument("--seed", type=int, default=7)
    tasks.set_defaults(handler=cmd_tasks)

    study = commands.add_parser("study", help="run the simulated user study")
    study.add_argument("--participants", type=int, default=18)
    study.add_argument("--seed", type=int, default=2006)
    study.add_argument("--books", type=int, default=120)
    study.set_defaults(handler=cmd_study)

    generate = commands.add_parser("generate", help="emit a DBLP-like XML file")
    generate.add_argument("--books", type=int, default=120)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", help="output path (stdout when absent)")
    generate.set_defaults(handler=cmd_generate)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
