"""Command-line interface to the reproduction.

Subcommands::

    python -m repro query   [--data movies|bib|dblp|FILE] "SENTENCE"
    python -m repro explain [--data ...] [--json] "SENTENCE"
    python -m repro repl    [--data ...]          # interactive loop
    python -m repro xquery  [--data ...] "QUERY"  # raw Schema-Free XQuery
    python -m repro tasks   [--books N]           # run the 9 XMP tasks
    python -m repro stats   [--books N] [--format table|json|prom|chrome]
    python -m repro study   [--participants N] [--seed S]
    python -m repro generate [--books N] [--seed S] [--out FILE]

Each command builds its database from the named built-in dataset (or an
XML file path) and prints human-readable output; exit status is non-zero
when a query is rejected.

Observability flags (see README.md "Observability"): ``--trace`` prints
the span tree of each query, ``--metrics`` dumps the process metrics
registry as JSON on exit, and ``--audit-log PATH`` appends one JSONL
record per query.  ``explain`` (or ``query --explain``) renders the
full word → token → clause lineage report plus per-operator plan
statistics; ``stats --format prom|chrome|json`` exports metrics in the
Prometheus text format, traces as Chrome trace-event JSON (load in
chrome://tracing or Perfetto), or a plain JSON snapshot.

Resilience flags (see README.md "Resilience"): ``--timeout SECONDS``
runs each query under the default budget with the given deadline, and
``--inject-fault STAGE[:N|:p=P,seed=S]`` (repeatable) arms the
deterministic fault-injection harness for chaos testing.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.interface import NaLIX
from repro.data import DblpConfig, bib_document, generate_dblp, movies_document
from repro.database.store import Database
from repro.obs.audit import STAGES, AuditLog
from repro.obs.explain import explain
from repro.obs.export import LATENCIES, chrome_trace_json, prometheus_text
from repro.obs.metrics import METRICS
from repro.resilience.faults import FaultPlan
from repro.xquery.errors import XQueryError
from repro.xquery.evaluator import evaluate_query
from repro.xquery.values import string_value


def load_database(spec, books=120, seed=7):
    """Build a Database from a dataset name or an XML file path."""
    database = Database()
    if spec == "movies":
        database.load_document(movies_document())
    elif spec == "bib":
        database.load_document(bib_document())
    elif spec == "dblp":
        database.load_document(generate_dblp(DblpConfig(books=books, seed=seed)))
    else:
        database.load_file(spec)
    return database


def _open_audit_log(args):
    path = getattr(args, "audit_log", None)
    if not path:
        return None
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        raise SystemExit(f"repro: cannot open audit log {path!r}: {exc}")
    return AuditLog(path, actor="cli")


def _print_result(result, show_xquery=True, show_trace=False):
    if not result.ok:
        print(result.render_feedback())
        if show_trace and result.trace is not None:
            print(result.trace.render())
        return False
    if show_xquery:
        print("XQuery:", result.xquery_text)
    for warning in result.warnings:
        print(warning.render())
    values = result.values()
    print(f"{len(values)} result(s):")
    for value in values[:50]:
        print(" ", value)
    if len(values) > 50:
        print(f"  ... and {len(values) - 50} more")
    if show_trace and result.trace is not None:
        print(result.trace.render())
    return True


def _finish(args, audit, exit_code):
    """Shared teardown: close the audit log, honour ``--metrics``."""
    if audit is not None:
        audit.close()
        print(f"audit log: {audit.path}")
    if getattr(args, "metrics", False):
        print(METRICS.to_json())
    return exit_code


def _build_fault_plan(args):
    specs = getattr(args, "inject_fault", None)
    if not specs:
        return None
    try:
        return FaultPlan([FaultPlan.parse_spec(spec) for spec in specs])
    except ValueError as error:
        raise SystemExit(f"repro: {error}")


def cmd_query(args):
    database = load_database(args.data, books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit, fault_plan=_build_fault_plan(args))
    result = nalix.ask(args.sentence, timeout=args.timeout)
    ok = _print_result(
        result,
        show_xquery=not args.quiet,
        show_trace=args.trace,
    )
    if args.explain:
        print()
        print(explain(result).render_text())
    return _finish(args, audit, 0 if ok else 1)


def cmd_explain(args):
    """Full provenance report: word -> token -> clause lineage + plan."""
    database = load_database(args.data, books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit)
    result = nalix.ask(args.sentence, evaluate=not args.no_evaluate,
                       timeout=args.timeout)
    report = explain(result)
    print(report.to_json() if args.json else report.render_text())
    return _finish(args, audit, 0 if result.ok else 1)


def cmd_repl(args):
    database = load_database(args.data, books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit, fault_plan=_build_fault_plan(args))
    print(database)
    print("Type an English query (empty line to quit).")
    while True:
        try:
            line = input("nalix> ").strip()
        except EOFError:
            break
        if not line:
            break
        _print_result(
            nalix.ask(line, timeout=args.timeout),
            show_xquery=not args.quiet,
            show_trace=args.trace,
        )
    return _finish(args, audit, 0)


def cmd_xquery(args):
    database = load_database(args.data, books=args.books, seed=args.seed)
    try:
        items = evaluate_query(database, args.query)
    except XQueryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"{len(items)} item(s):")
    for item in items[:50]:
        print(" ", string_value(item))
    if len(items) > 50:
        print(f"  ... and {len(items) - 50} more")
    return 0


def cmd_tasks(args):
    from repro.evaluation.metrics import harmonic_mean, precision_recall
    from repro.evaluation.tasks import TASKS

    database = load_database("dblp", books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit)
    failures = 0
    for task in TASKS:
        gold = task.gold(database)
        phrasing = task.good_phrasings()[0]
        result = nalix.ask(phrasing.text)
        if not result.ok:
            print(f"{task.task_id}: REJECTED — {phrasing.text}")
            failures += 1
            continue
        precision, recall = precision_recall(
            result.distinct_items(), gold, ordered=task.ordered
        )
        score = harmonic_mean(precision, recall)
        print(
            f"{task.task_id}: P={precision:.2f} R={recall:.2f} "
            f"F={score:.2f} — {phrasing.text}"
        )
        if score < 0.5:
            failures += 1
    return _finish(args, audit, 1 if failures else 0)


def _emit(text, out):
    """Write to ``--out PATH`` (with a note) or stdout."""
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text)} bytes to {out}")
    else:
        sys.stdout.write(text)


def cmd_stats(args):
    """Replay the XMP task phrasings; report per-stage statistics.

    ``--format table`` (default) prints the human-readable breakdown;
    ``json`` dumps the metrics snapshot + sliding latency windows;
    ``prom`` emits Prometheus text exposition; ``chrome`` emits Chrome
    trace-event JSON of every replayed query (one thread lane each).
    """
    import json as json_module

    from repro.evaluation.tasks import TASKS

    database = load_database("dblp", books=args.books, seed=args.seed)
    audit = _open_audit_log(args)
    nalix = NaLIX(database, audit_log=audit)

    stage_stats = {
        name: {"calls": 0, "seconds": [], "errors": 0} for name in STAGES
    }
    status_counts = {"ok": 0, "degraded": 0, "rejected": 0, "failed": 0}
    category_counts = {}
    ask_seconds = []
    traces = []

    queries = 0
    for task in TASKS:
        phrasings = (
            task.good_phrasings() if args.good_only else task.phrasings
        )
        for phrasing in phrasings:
            result = nalix.ask(phrasing.text)
            queries += 1
            status_counts[result.status] += 1
            ask_seconds.append(result.total_seconds)
            traces.append(result.trace)
            for message in result.errors:
                category_counts[message.code] = (
                    category_counts.get(message.code, 0) + 1
                )
            for span in result.trace.iter_spans():
                if span.name not in stage_stats:
                    continue
                entry = stage_stats[span.name]
                entry["calls"] += 1
                entry["seconds"].append(span.duration_seconds)
                if span.status != "ok":
                    entry["errors"] += 1

    out = getattr(args, "out", None)
    if args.format == "prom":
        _emit(
            prometheus_text(
                METRICS.snapshot(), extra_lines=LATENCIES.prometheus_lines()
            ),
            out,
        )
        return _finish(args, audit, 0)
    if args.format == "chrome":
        _emit(chrome_trace_json(traces, indent=2) + "\n", out)
        return _finish(args, audit, 0)
    if args.format == "json":
        _emit(
            json_module.dumps(
                {
                    "metrics": METRICS.snapshot(),
                    "latency_windows": LATENCIES.snapshot(),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            out,
        )
        return _finish(args, audit, 0)

    print(
        f"repro stats — {len(TASKS)} tasks, {queries} queries "
        f"(dblp, {args.books} books)\n"
    )
    header = (
        f"{'stage':<14}{'calls':>7}{'mean ms':>10}{'p50 ms':>10}"
        f"{'p95 ms':>10}{'p99 ms':>10}{'max ms':>10}{'errors':>8}"
    )
    print(header)
    print("-" * len(header))
    for name in STAGES:
        entry = stage_stats[name]
        if not entry["calls"]:
            continue
        timings = sorted(entry["seconds"])

        def pick(fraction, ordered=timings):
            return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

        mean = sum(timings) / len(timings)
        print(
            f"{name:<14}{entry['calls']:>7}{mean * 1000:>10.2f}"
            f"{pick(0.50) * 1000:>10.2f}{pick(0.95) * 1000:>10.2f}"
            f"{pick(0.99) * 1000:>10.2f}{timings[-1] * 1000:>10.2f}"
            f"{entry['errors']:>8}"
        )
    if ask_seconds:
        total_mean = sum(ask_seconds) / len(ask_seconds)
        print(f"\nend-to-end mean: {total_mean * 1000:.2f} ms/query")
    print(
        "status: "
        + "  ".join(f"{key}={value}" for key, value in status_counts.items())
    )
    if category_counts:
        print("failures by category:")
        for code in sorted(category_counts, key=category_counts.get,
                           reverse=True):
            print(f"  {code:<24}{category_counts[code]:>4}")
    resilience = {
        name: value
        for name, value in METRICS.snapshot()["counters"].items()
        if name.startswith("resilience.") and value
    }
    if resilience:
        print("resilience counters:")
        for name in sorted(resilience):
            print(f"  {name:<40}{resilience[name]:>6}")
    return _finish(args, audit, 0)


def cmd_study(args):
    from repro.evaluation.report import StudyReport
    from repro.evaluation.study import Study, StudyConfig

    config = StudyConfig(
        participants=args.participants,
        seed=args.seed,
        dblp=DblpConfig(books=args.books, seed=args.seed),
    )
    audit = _open_audit_log(args)
    study = Study(config)
    if audit is not None:
        study.nalix.audit_log = audit
    results = study.run()
    print(StudyReport(results).render())
    return _finish(args, audit, 0)


def cmd_generate(args):
    from repro.xmlstore.serializer import to_pretty_string

    document = generate_dblp(DblpConfig(books=args.books, seed=args.seed))
    text = to_pretty_string(document.root)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {document.node_count()} nodes to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _add_data_options(parser, default_data="movies"):
    parser.add_argument(
        "--data",
        default=default_data,
        help="dataset: movies | bib | dblp | path to an XML file",
    )
    parser.add_argument("--books", type=int, default=120,
                        help="books in the generated dblp dataset")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")


def _add_resilience_options(parser):
    parser.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="run each query under the default budget with this deadline",
    )
    parser.add_argument(
        "--inject-fault", action="append", metavar="SPEC",
        help="inject a deterministic fault: STAGE, STAGE:N, or "
        "STAGE:p=FLOAT[,seed=INT] (repeatable)",
    )


def _add_obs_options(parser, trace=False):
    if trace:
        parser.add_argument("--trace", action="store_true",
                            help="print the span tree of each query")
    parser.add_argument("--metrics", action="store_true",
                        help="dump the metrics registry as JSON on exit")
    parser.add_argument("--audit-log", metavar="PATH",
                        help="append one JSONL audit record per query")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NaLIX reproduction: natural language queries over XML",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="run one English query")
    _add_data_options(query)
    _add_obs_options(query, trace=True)
    _add_resilience_options(query)
    query.add_argument("--quiet", action="store_true",
                       help="hide the generated XQuery")
    query.add_argument("--explain", action="store_true",
                       help="print the full provenance/plan report")
    query.add_argument("sentence", help="the English query")
    query.set_defaults(handler=cmd_query)

    explain_parser = commands.add_parser(
        "explain",
        help="show word -> token -> clause lineage and plan statistics",
    )
    _add_data_options(explain_parser)
    _add_obs_options(explain_parser)
    explain_parser.add_argument("--json", action="store_true",
                                help="emit the report as JSON")
    explain_parser.add_argument("--no-evaluate", action="store_true",
                                help="skip evaluation (no plan statistics)")
    explain_parser.add_argument("--timeout", type=float, metavar="SECONDS")
    explain_parser.add_argument("sentence", help="the English query")
    explain_parser.set_defaults(handler=cmd_explain)

    repl = commands.add_parser("repl", help="interactive query loop")
    _add_data_options(repl)
    _add_obs_options(repl, trace=True)
    _add_resilience_options(repl)
    repl.add_argument("--quiet", action="store_true")
    repl.set_defaults(handler=cmd_repl)

    xquery = commands.add_parser("xquery", help="run raw Schema-Free XQuery")
    _add_data_options(xquery, default_data="bib")
    xquery.add_argument("query", help="the XQuery text")
    xquery.set_defaults(handler=cmd_xquery)

    tasks = commands.add_parser("tasks", help="run the 9 XMP study tasks")
    tasks.add_argument("--books", type=int, default=120)
    tasks.add_argument("--seed", type=int, default=7)
    _add_obs_options(tasks)
    tasks.set_defaults(handler=cmd_tasks)

    stats = commands.add_parser(
        "stats",
        help="replay the XMP task phrasings; report per-stage "
        "latency and failure counts",
    )
    stats.add_argument("--books", type=int, default=120)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--good-only", action="store_true",
                       help="replay only the known-good phrasings")
    stats.add_argument("--format", choices=("table", "json", "prom", "chrome"),
                       default="table",
                       help="output format (default: human-readable table)")
    stats.add_argument("--out", metavar="PATH",
                       help="write the export to a file instead of stdout")
    _add_obs_options(stats)
    stats.set_defaults(handler=cmd_stats)

    study = commands.add_parser("study", help="run the simulated user study")
    study.add_argument("--participants", type=int, default=18)
    study.add_argument("--seed", type=int, default=2006)
    study.add_argument("--books", type=int, default=120)
    _add_obs_options(study)
    study.set_defaults(handler=cmd_study)

    generate = commands.add_parser("generate", help="emit a DBLP-like XML file")
    generate.add_argument("--books", type=int, default=120)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", help="output path (stdout when absent)")
    generate.set_defaults(handler=cmd_generate)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
