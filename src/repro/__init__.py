"""NaLIX reproduction: a generic natural language interface for XML databases.

Reproduces Li, Yang & Jagadish, *Constructing a Generic Natural Language
Interface for an XML Database* (EDBT 2006), together with every substrate
the paper depends on: an XML store, a Schema-Free XQuery engine with the
``mqf`` structural-search function, a dependency parser for query English,
a term-expansion ontology, a keyword-search baseline, and the user-study
evaluation harness.

Quick start::

    from repro import Database, NaLIX
    from repro.data import movies_document

    db = Database()
    db.load_document(movies_document())
    nalix = NaLIX(db)
    result = nalix.ask("Return the director of every movie where the"
                       " title of the movie is \"Traffic\".")
    print(result.values())
"""

__version__ = "1.0.0"

__all__ = [
    "Database",
    "NaLIX",
    "QueryResult",
    "QuerySession",
    "evaluate_query",
]


def __getattr__(name):
    # Lazy exports keep `import repro.xmlstore` usable without pulling in
    # the whole stack (and avoid import cycles while the package loads).
    if name == "Database":
        from repro.database.store import Database

        return Database
    if name in ("NaLIX", "QueryResult"):
        import repro.core.interface as interface

        return getattr(interface, name)
    if name == "QuerySession":
        from repro.core.session import QuerySession

        return QuerySession
    if name == "evaluate_query":
        from repro.xquery.evaluator import evaluate_query

        return evaluate_query
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
