"""The document store: the public face of the database substrate."""

from __future__ import annotations

from repro.database.indexes import build_indexes
from repro.database.statistics import DatabaseStatistics
from repro.obs.metrics import METRICS
from repro.xmlstore.model import Document
from repro.xmlstore.parser import parse_document

# Resolved once: nodes_with_tag sits on the scan hot path, so the
# per-call cost must stay one attribute increment.
_TAG_LOOKUPS = METRICS.counter("database.index.tag_lookups")
_VALUE_LOOKUPS = METRICS.counter("database.index.value_lookups")


class Database:
    """A collection of XML documents with shared indexes.

    This plays the role of Timber in the paper: it owns the storage and
    serves structural scans. The query engine (``repro.xquery``) and the
    keyword baseline (``repro.keyword_search``) both run against it.

    Typical use::

        db = Database()
        db.load_text(xml_string, name="movies.xml")
        nodes = db.nodes_with_tag("director")
    """

    def __init__(self, documents=None):
        self.documents = {}
        self.tag_index = None
        self.value_index = None
        self.statistics = None
        for document in documents or []:
            self.documents[document.name] = document
        self._rebuild()

    # -- loading -----------------------------------------------------------

    def load_document(self, document):
        """Register an already-parsed :class:`Document`."""
        if not isinstance(document, Document):
            raise TypeError("expected a repro.xmlstore.Document")
        self.documents[document.name] = document
        self._rebuild()
        return document

    def load_text(self, xml_text, name="doc"):
        """Parse ``xml_text`` and register it under ``name``."""
        return self.load_document(parse_document(xml_text, name=name))

    def load_file(self, path, name=None):
        """Parse the XML file at ``path``."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        return self.load_text(text, name=name or str(path))

    def _rebuild(self):
        documents = list(self.documents.values())
        self.tag_index, self.value_index = build_indexes(documents)
        self.statistics = DatabaseStatistics(
            self.tag_index, self.value_index, documents
        )
        METRICS.set_gauge("database.documents", len(documents))
        METRICS.set_gauge("database.nodes", self.node_count())
        METRICS.set_gauge("database.tags", len(self.tag_index.tags()))

    # -- lookup ------------------------------------------------------------

    def document(self, name=None):
        """Return the named document; with one document loaded, the name
        may be omitted (matching the paper's single-document queries)."""
        if name is None or name not in self.documents:
            if name is None and len(self.documents) == 1:
                return next(iter(self.documents.values()))
            if name is None:
                raise KeyError("database holds several documents; name one")
            raise KeyError(f"no document named {name!r}")
        return self.documents[name]

    def nodes_with_tag(self, tag):
        """All elements (or ``@attr`` nodes) with this tag, in preorder."""
        _TAG_LOOKUPS.inc()
        return self.tag_index.nodes(tag)

    def has_tag(self, tag):
        return tag in self.tag_index

    def tags(self):
        return self.tag_index.tags()

    def nodes_with_value(self, value):
        """Nodes whose text equals ``value``; falls back to phrase search."""
        _VALUE_LOOKUPS.inc()
        nodes = self.value_index.nodes_with_exact_value(value)
        if nodes:
            return nodes
        return self.value_index.nodes_with_phrase(str(value))

    def node_count(self):
        return sum(document.node_count() for document in self.documents.values())

    def __repr__(self):
        return f"Database({len(self.documents)} documents, {self.node_count()} nodes)"
