"""Index structures over a set of XML documents.

All node lists are kept sorted by preorder id (documents are scanned in
preorder, so insertion order is already sorted), which the structural
algorithms (MQF join, Meet) rely on for their binary-search steps.
"""

from __future__ import annotations

import re

from repro.xmlstore.model import AttributeNode, ElementNode, TextNode

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:[-.'][A-Za-z0-9]+)*")


def tokenize_value(text):
    """Split a text value into lowercase index terms."""
    return [match.group(0).lower() for match in _WORD_RE.finditer(text)]


def direct_text(node):
    """The text directly inside ``node`` (not from nested elements)."""
    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, ElementNode):
        return "".join(
            child.text for child in node.children if isinstance(child, TextNode)
        )
    return ""


class TagIndex:
    """Maps element tags and ``@attribute`` names to their nodes."""

    def __init__(self):
        self._by_tag = {}

    def add(self, node):
        self._by_tag.setdefault(node.tag, []).append(node)

    def nodes(self, tag):
        """Return the preorder-sorted nodes with the given tag ([] if none)."""
        return self._by_tag.get(tag, [])

    def tags(self):
        return sorted(self._by_tag)

    def count(self, tag):
        return len(self._by_tag.get(tag, ()))

    def __contains__(self, tag):
        return tag in self._by_tag


class ValueIndex:
    """Inverted index from lowercase terms to the nodes containing them.

    A term points at the *element or attribute* whose direct text contains
    it (not at ancestors), matching how keyword-search systems over XML
    anchor matches at the finest node. An exact-value map supports the
    equality predicates the XQuery planner pushes down.
    """

    def __init__(self):
        self._by_term = {}
        self._by_exact_value = {}

    def add(self, node, text):
        for term in sorted(set(tokenize_value(text))):
            self._by_term.setdefault(term, []).append(node)
        normalized = text.strip().lower()
        if normalized:
            self._by_exact_value.setdefault(normalized, []).append(node)

    def nodes_with_term(self, term):
        """Nodes whose direct text contains ``term`` (case-insensitive)."""
        return list(self._by_term.get(term.lower(), ()))

    def nodes_with_phrase(self, phrase):
        """Nodes whose direct text contains ``phrase`` as a substring
        (case-insensitive), found via the term postings."""
        terms = tokenize_value(phrase)
        if not terms:
            return []
        candidate_lists = [self.nodes_with_term(term) for term in terms]
        if any(not lst for lst in candidate_lists):
            return []
        smallest = min(candidate_lists, key=len)
        other_ids = [
            {node.node_id for node in lst}
            for lst in candidate_lists
            if lst is not smallest
        ]
        needle = phrase.strip().lower()
        return [
            node
            for node in smallest
            if all(node.node_id in ids for ids in other_ids)
            and needle in direct_text(node).lower()
        ]

    def nodes_with_exact_value(self, value):
        """Nodes whose entire direct text equals ``value`` (case-insensitive,
        surrounding whitespace ignored)."""
        return list(self._by_exact_value.get(str(value).strip().lower(), ()))

    def terms(self):
        return sorted(self._by_term)

    def __contains__(self, term):
        return term.lower() in self._by_term


def build_indexes(documents):
    """Build ``(tag_index, value_index)`` over ``documents``."""
    tag_index = TagIndex()
    value_index = ValueIndex()
    for document in documents:
        for node in document.nodes:
            if isinstance(node, (ElementNode, AttributeNode)):
                tag_index.add(node)
                text = direct_text(node)
                if text.strip():
                    value_index.add(node, text)
    return tag_index, value_index
