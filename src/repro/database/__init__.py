"""Native XML database substrate (the paper's Timber stand-in).

A :class:`Database` holds one or more parsed XML documents and maintains
the indexes the query layers need:

* a **tag index** (element/attribute name -> preorder-sorted node list),
* an **inverted value index** (word -> nodes whose direct text contains
  it) used by the keyword-search baseline and by value-predicate
  pushdown in the XQuery planner,
* **vocabulary statistics** used by NaLIX's term expansion to check that
  a name token actually names something in the database.
"""

from repro.database.indexes import TagIndex, ValueIndex
from repro.database.statistics import DatabaseStatistics
from repro.database.store import Database

__all__ = ["Database", "DatabaseStatistics", "TagIndex", "ValueIndex"]
