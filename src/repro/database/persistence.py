"""Saving and loading databases to/from a directory on disk.

The format is deliberately boring: one pretty-printed XML file per
document plus a small ``manifest.txt`` mapping file names back to
document names (document names may contain characters that are unsafe
in file names).
"""

from __future__ import annotations

import os
import re

from repro.database.store import Database
from repro.xmlstore.serializer import serialize

MANIFEST_NAME = "manifest.txt"


def _safe_filename(name, taken):
    base = re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "document"
    if not base.endswith(".xml"):
        base += ".xml"
    candidate = base
    counter = 1
    while candidate in taken:
        counter += 1
        candidate = f"{base[:-4]}_{counter}.xml"
    return candidate


def save_database(database, directory):
    """Write every document of ``database`` under ``directory``.

    Returns the manifest: a list of (file name, document name) pairs.
    """
    os.makedirs(directory, exist_ok=True)
    manifest = []
    taken = set()
    for name, document in database.documents.items():
        filename = _safe_filename(name, taken)
        taken.add(filename)
        path = os.path.join(directory, filename)
        # Compact form: pretty-printing would inject whitespace into
        # mixed-content elements and break lossless round-tripping.
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize(document.root))
        manifest.append((filename, name))
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        for filename, name in manifest:
            handle.write(f"{filename}\t{name}\n")
    return manifest


def load_database(directory):
    """Rebuild a :class:`Database` from a directory written by
    :func:`save_database` (or any directory of XML files)."""
    database = Database()
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        with open(manifest_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                filename, _, name = line.partition("\t")
                database.load_file(
                    os.path.join(directory, filename), name=name or filename
                )
        return database
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".xml"):
            database.load_file(os.path.join(directory, entry), name=entry)
    return database
