"""Summary statistics over a database's structure and vocabulary.

NaLIX uses these to (a) check whether a name token names anything in the
database (Sec. 4, "Term Expansion" / error generation) and (b) pick the
disjunction of matching names when several tags match a name token.
"""

from __future__ import annotations


class DatabaseStatistics:
    """Tag-level statistics computed once per database load."""

    def __init__(self, tag_index, value_index, documents):
        self.tag_counts = {tag: tag_index.count(tag) for tag in tag_index.tags()}
        self.node_count = sum(document.node_count() for document in documents)
        self.document_count = len(documents)
        self._parent_tags = {}
        self._child_tags = {}
        for document in documents:
            for element in document.iter_elements():
                if element.parent is not None:
                    parent_tag = element.parent.tag
                    self._parent_tags.setdefault(element.tag, set()).add(parent_tag)
                    self._child_tags.setdefault(parent_tag, set()).add(element.tag)
                for attribute in element.attributes:
                    self._parent_tags.setdefault(attribute.tag, set()).add(element.tag)
                    self._child_tags.setdefault(element.tag, set()).add(attribute.tag)

    def tags(self):
        return sorted(self.tag_counts)

    def has_tag(self, tag):
        return tag in self.tag_counts

    def parent_tags(self, tag):
        """Tags observed as a parent of ``tag`` anywhere in the data."""
        return sorted(self._parent_tags.get(tag, ()))

    def child_tags(self, tag):
        """Tags observed as a child (or attribute) of ``tag``."""
        return sorted(self._child_tags.get(tag, ()))

    def summary(self):
        """A small dict used by reports and examples."""
        return {
            "documents": self.document_count,
            "nodes": self.node_count,
            "distinct_tags": len(self.tag_counts),
        }
