"""Sentence tokenizer: words, numbers, quoted strings, punctuation.

Quoted spans (single, double, or typographic quotes) become single
:class:`Word` tokens flagged ``quoted=True`` — they are literal values
and must never be split or interpreted ("Gone with the Wind" is one
value token, not a PP attachment puzzle).
"""

from __future__ import annotations

import re

_QUOTE_PAIRS = {'"': '"', "'": "'", "“": "”", "‘": "’"}

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?)
  | (?P<word>[A-Za-z]+(?:[-'][A-Za-z]+)*)
  | (?P<punct>[,;:.!?()])
    """,
    re.VERBOSE,
)


class Word:
    """One surface token."""

    __slots__ = ("text", "index", "quoted", "is_number", "is_punct")

    def __init__(self, text, index, quoted=False, is_number=False, is_punct=False):
        self.text = text
        self.index = index
        self.quoted = quoted
        self.is_number = is_number
        self.is_punct = is_punct

    @property
    def lower(self):
        return self.text.lower()

    def is_capitalized(self):
        return bool(self.text) and self.text[0].isupper() and not self.is_punct

    def __repr__(self):
        flags = "q" if self.quoted else ("n" if self.is_number else "")
        return f"Word({self.text!r}{',' + flags if flags else ''})"


def tokenize_sentence(sentence):
    """Split ``sentence`` into :class:`Word` tokens.

    An apostrophe inside a word is kept ("author's" stays one token; the
    tagger strips possessives). An unterminated quote falls back to
    treating the quote character as punctuation.
    """
    words = []
    position = 0
    length = len(sentence)
    while position < length:
        ch = sentence[position]
        if ch.isspace():
            position += 1
            continue
        if ch in _QUOTE_PAIRS:
            closing = _QUOTE_PAIRS[ch]
            end = sentence.find(closing, position + 1)
            # A plain apostrophe is only a quote if it wraps a span that
            # does not look like a contraction (e.g. 'Tolkien's' inside).
            if ch == "'" and (end < 0 or end == position + 1):
                end = -1
            if end > position:
                words.append(
                    Word(sentence[position + 1 : end], len(words), quoted=True)
                )
                position = end + 1
                continue
            position += 1
            continue
        match = _TOKEN_RE.match(sentence, position)
        if match is None:
            position += 1
            continue
        text = match.group(0)
        words.append(
            Word(
                text,
                len(words),
                is_number=match.lastgroup == "number",
                is_punct=match.lastgroup == "punct",
            )
        )
        position = match.end()
    return words
