"""Closed-class lexicon and open-class word lists for the tagger.

The closed classes (determiners, prepositions, pronouns, auxiliaries,
conjunctions) are small and exhaustive for query English. The open-class
lists carry the verbs and adjectives that show up in database queries;
unknown lowercase words default to NOUN (queries are mostly about
things), and unknown capitalised words to VALUE.
"""

from __future__ import annotations

from repro.nlp.categories import Category

DETERMINERS = {"the", "a", "an", "this", "that", "these", "those"}

QUANTIFIERS = {"every", "each", "all", "any", "some", "no"}

PREPOSITIONS = {
    "of",
    "in",
    "on",
    "at",
    "by",
    "with",
    "from",
    "for",
    "to",
    "about",
    "under",
    "over",
    "between",
    "within",
    "into",
    "as",
    "per",
    "during",
    "through",
    "without",
}

PRONOUNS = {
    "it",
    "its",
    "they",
    "them",
    "their",
    "theirs",
    "he",
    "she",
    "him",
    "her",
    "his",
    "hers",
    "we",
    "us",
    "our",
    "you",
    "your",
    "i",
    "me",
    "my",
    "whose",
    "whom",
}

AUXILIARIES = {
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "am",
    "has",
    "have",
    "had",
    "having",
    "do",
    "does",
    "did",
    "will",
    "would",
    "shall",
    "should",
    "can",
    "could",
    "may",
    "might",
    "must",
    "there",  # existential "are there": carries no content in queries
}

CONJUNCTIONS = {"and", "or", "but", "nor"}

NEGATIONS = {"not", "never", "n't"}

SUBORDINATORS = {"where", "that", "which", "who", "when", "while", "whereby"}

WH_WORDS = {"what", "which", "who", "whom", "whose", "how", "when", "where"}

# Verbs commonly relating two entities in database queries (open class,
# extensible). Stored as lemmas; the tagger lemmatises before lookup.
RELATION_VERBS = {
    "direct",
    "publish",
    "write",
    "author",
    "edit",
    "produce",
    "release",
    "contain",
    "include",
    "have",
    "belong",
    "appear",
    "occur",
    "mention",
    "cost",
    "sell",
    "buy",
    "star",
    "feature",
    "cite",
    "reference",
    "review",
    "win",
    "make",
    "create",
    "record",
    "perform",
    "own",
    "work",
    "teach",
    "study",
    "supervise",
    "manage",
}

PLAIN_ADJECTIVES = {
    "many",
    "few",
    "fewer",
    "several",
    "more",
    "most",
    "less",
    "top",
    "new",
    "old",
    "recent",
    "first",
    "second",
    "third",
    "last",
    "good",
    "bad",
    "long",
    "short",
    "big",
    "small",
    "famous",
    "popular",
    "different",
    "distinct",
    "unique",
    "same",
    "other",
    "alphabetic",
    "alphabetical",
    "ascending",
    "descending",
    "expensive",
    "cheap",
}

# Common nouns guaranteed to be nouns even when they could be read as
# verbs ("title", "price"); keeps the tagger from mis-tagging heads.
COMMON_NOUNS = {
    "book",
    "article",
    "author",
    "editor",
    "title",
    "price",
    "year",
    "publisher",
    "movie",
    "film",
    "director",
    "actor",
    "name",
    "number",
    "element",
    "document",
    "database",
    "entry",
    "item",
    "record",
    "result",
    "list",
    "page",
    "journal",
    "volume",
    "issue",
    "isbn",
    "genre",
    "rating",
    "review",
    "section",
    "chapter",
    "person",
    "people",
    "city",
    "country",
    "date",
    "month",
    "day",
    "award",
    "study",
    "work",
}


def closed_class_category(word):
    """Category for a closed-class word, or None."""
    if word in DETERMINERS:
        return Category.DETERMINER
    if word in QUANTIFIERS:
        return Category.QUANTIFIER
    if word in NEGATIONS:
        return Category.NEGATION
    if word in AUXILIARIES:
        return Category.AUXILIARY
    if word in CONJUNCTIONS:
        return Category.CONJUNCTION
    if word in PRONOUNS:
        return Category.PRONOUN
    if word in SUBORDINATORS:
        return Category.SUBORDINATOR
    if word in PREPOSITIONS:
        return Category.PREP
    return None
