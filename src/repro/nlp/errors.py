"""Errors raised by the NLP substrate."""


class NLPError(Exception):
    """Base class for NLP-layer errors."""


class ParseFailure(NLPError):
    """The dependency parser could not build a tree for the sentence.

    The paper's Minipar also fails on a fraction of well-formed queries
    (~88% precision / ~80% recall on SUSANNE); this exception is the
    analogous failure mode and is surfaced to NaLIX's feedback layer.
    """

    def __init__(self, message, sentence=None):
        super().__init__(message)
        self.sentence = sentence
