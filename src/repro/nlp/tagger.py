"""Per-word category assignment: lexicon lookup plus morphology.

Tagging order (first match wins):

1. quoted spans and numbers are VALUE;
2. caller vocabulary (single words — multi-word phrases are matched by
   the chunker);
3. the closed-class lexicon;
4. known common nouns and relation verbs (after lemmatisation);
5. plain adjectives;
6. capitalised mid-sentence words are VALUE (proper names);
7. everything else defaults to NOUN — queries are about things, and an
   unknown open-class word is almost always a database element name.
"""

from __future__ import annotations

from repro.nlp.categories import Category
from repro.nlp.lexicon import (
    COMMON_NOUNS,
    PLAIN_ADJECTIVES,
    RELATION_VERBS,
    WH_WORDS,
    closed_class_category,
)
from repro.nlp.morphology import singularize, verb_lemma


class TaggedWord:
    """A word with its category and lemma."""

    __slots__ = ("word", "category", "lemma")

    def __init__(self, word, category, lemma):
        self.word = word
        self.category = category
        self.lemma = lemma

    @property
    def text(self):
        return self.word.text

    def __repr__(self):
        return f"TaggedWord({self.text!r}, {self.category}, {self.lemma!r})"


def tag_words(words, vocabulary=None):
    """Tag a token list; ``vocabulary`` maps single-word lemmas to
    categories supplied by the application (NaLIX's enum sets)."""
    vocabulary = vocabulary or {}
    tagged = []
    for word in words:
        tagged.append(_tag_one(word, tagged, vocabulary))
    return tagged


def _tag_one(word, tagged_so_far, vocabulary):
    if word.quoted or word.is_number:
        return TaggedWord(word, Category.VALUE, word.text)
    if word.is_punct:
        return TaggedWord(word, Category.BOUNDARY, word.text)

    lower = word.lower
    possessive = lower.endswith("'s")
    if possessive:
        lower = lower[:-2]

    if lower in vocabulary:
        return TaggedWord(word, vocabulary[lower], lower)

    # Sentence-initial wh-words start a query ("Which books ...").
    if not tagged_so_far and lower in WH_WORDS:
        return TaggedWord(word, Category.WH, lower)

    closed = closed_class_category(lower)
    if closed is not None:
        # Auxiliaries are lemmatised ("is" -> "be") so multi-word phrases
        # stored with base forms ("be the same as") match all inflections.
        lemma = verb_lemma(lower) if closed == Category.AUXILIARY else lower
        return TaggedWord(word, closed, lemma)

    noun_lemma = singularize(lower)
    if noun_lemma in vocabulary:
        return TaggedWord(word, vocabulary[noun_lemma], noun_lemma)
    if noun_lemma in COMMON_NOUNS:
        return TaggedWord(word, Category.NOUN, noun_lemma)

    verb = verb_lemma(lower)
    if verb in RELATION_VERBS and verb != lower:
        # Inflected relation verb: "directed", "publishes", "written".
        return TaggedWord(word, Category.VERB, verb)
    if verb in RELATION_VERBS and _looks_verbal(word, tagged_so_far):
        return TaggedWord(word, Category.VERB, verb)

    if lower in PLAIN_ADJECTIVES:
        return TaggedWord(word, Category.ADJECTIVE, lower)

    if word.is_capitalized() and tagged_so_far:
        return TaggedWord(word, Category.VALUE, word.text)

    return TaggedWord(word, Category.NOUN, noun_lemma)


def _looks_verbal(word, tagged_so_far):
    """Base-form relation verbs are verbs after auxiliaries or relative
    pronouns ("that have", "who direct"), nouns otherwise ("the work")."""
    if not tagged_so_far:
        return False
    previous = tagged_so_far[-1]
    return previous.category in (Category.AUXILIARY, Category.SUBORDINATOR,
                                 Category.PRONOUN)
