"""Dependency parse tree structure.

A :class:`ParseNode` is one word or merged multi-word chunk with a
syntactic category, attached under its governor. Node ids follow
sentence order, matching how the paper numbers parse-tree nodes in its
Figures 2, 3 and 10.
"""

from __future__ import annotations


class ParseNode:
    """One node of the dependency tree."""

    def __init__(self, text, lemma, category, index, quoted=False):
        self.text = text
        self.lemma = lemma
        self.category = category
        self.index = index          # position of the chunk in the sentence
        self.quoted = quoted
        self.parent = None
        self.children = []
        self.conjunct_of = None     # coordination partner (first conjunct)
        self.node_id = None         # assigned by assign_ids()

    # -- construction -------------------------------------------------------

    def attach(self, child):
        child.parent = self
        self.children.append(child)
        return child

    def detach(self):
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    def reattach_to(self, new_parent):
        self.detach()
        new_parent.attach(self)
        return self

    # -- traversal ------------------------------------------------------------

    def preorder(self):
        yield self
        for child in self.children:
            yield from child.preorder()

    def descendants(self):
        for child in self.children:
            yield from child.preorder()

    def ancestors(self):
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def find(self, predicate):
        return [node for node in self.preorder() if predicate(node)]

    def assign_ids(self):
        """Number nodes by sentence position, 1-based (paper style)."""
        ordered = sorted(self.preorder(), key=lambda node: node.index)
        for number, node in enumerate(ordered, start=1):
            node.node_id = number
        return self

    # -- rendering ---------------------------------------------------------------

    def to_indented_string(self, level=0, parts=None):
        own_buffer = parts is None
        if own_buffer:
            parts = []
        label = f"{self.text} [{self.category}]"
        if self.node_id is not None:
            label += f" ({self.node_id})"
        parts.append("  " * level + label)
        for child in sorted(self.children, key=lambda node: node.index):
            child.to_indented_string(level + 1, parts)
        if own_buffer:
            return "\n".join(parts)
        return None

    def __repr__(self):
        return f"ParseNode({self.text!r}, {self.category})"
