"""Chunking: merge tagged words into multi-word parse units.

Three merges happen here, in order:

1. **Vocabulary phrases** — longest-first matching of the application's
   multi-word phrases ("the same as", "the number of", "sorted by") over
   *lemmatised* words, so "is the same as" matches the stored
   "be the same as".
2. **Participle + by** — "directed by", "published by": a relation verb
   immediately followed by "by" becomes one verbal connector chunk.
3. **Proper-name runs** — consecutive VALUE words merge ("Ron Howard").
"""

from __future__ import annotations

from repro.nlp.categories import Category


class Chunk:
    """A maximal parse unit: one or more tagged words."""

    __slots__ = ("tagged_words", "category", "lemma")

    def __init__(self, tagged_words, category, lemma=None):
        self.tagged_words = tagged_words
        self.category = category
        self.lemma = lemma or " ".join(tw.lemma for tw in tagged_words)

    @property
    def text(self):
        return " ".join(tw.text for tw in self.tagged_words)

    @property
    def index(self):
        return self.tagged_words[0].word.index

    @property
    def quoted(self):
        return len(self.tagged_words) == 1 and self.tagged_words[0].word.quoted

    def __repr__(self):
        return f"Chunk({self.text!r}, {self.category})"


def build_chunks(tagged_words, phrase_vocabulary=None):
    """Merge ``tagged_words`` into chunks.

    ``phrase_vocabulary`` maps lemma phrases (space-separated, length >= 2)
    to categories; single-word vocabulary is handled by the tagger.
    """
    phrases = _index_phrases(phrase_vocabulary or {})
    chunks = []
    position = 0
    while position < len(tagged_words):
        match = _match_phrase(tagged_words, position, phrases)
        if match is not None:
            length, category, lemma = match
            chunks.append(
                Chunk(tagged_words[position : position + length], category, lemma)
            )
            position += length
            continue
        chunks.append(Chunk([tagged_words[position]], tagged_words[position].category))
        position += 1
    chunks = _merge_participle_by(chunks)
    chunks = _merge_value_runs(chunks)
    return chunks


def _index_phrases(phrase_vocabulary):
    """Group phrases by first lemma for quick candidate lookup."""
    by_first = {}
    for phrase, category in phrase_vocabulary.items():
        parts = tuple(phrase.split())
        if len(parts) < 2:
            continue
        by_first.setdefault(parts[0], []).append((parts, category, phrase))
    for candidates in by_first.values():
        candidates.sort(key=lambda item: -len(item[0]))
    return by_first


def _match_phrase(tagged_words, position, phrases):
    first = tagged_words[position]
    if first.word.quoted:
        return None
    for parts, category, phrase in phrases.get(first.lemma, ()):
        if position + len(parts) > len(tagged_words):
            continue
        window = tagged_words[position : position + len(parts)]
        if any(tw.word.quoted for tw in window):
            continue
        if all(tw.lemma == part for tw, part in zip(window, parts)):
            return (len(parts), category, phrase)
    return None


def _merge_participle_by(chunks):
    """"directed" + "by" -> one VERB chunk "directed by"."""
    merged = []
    position = 0
    while position < len(chunks):
        current = chunks[position]
        nxt = chunks[position + 1] if position + 1 < len(chunks) else None
        if (
            current.category == Category.VERB
            and nxt is not None
            and nxt.category == Category.PREP
            and nxt.lemma == "by"
        ):
            merged.append(
                Chunk(
                    current.tagged_words + nxt.tagged_words,
                    Category.VERB,
                    current.lemma + " by",
                )
            )
            position += 2
            continue
        merged.append(current)
        position += 1
    return merged


def _merge_value_runs(chunks):
    """Merge consecutive unquoted VALUE chunks: "Ron" "Howard" -> one."""
    merged = []
    for chunk in chunks:
        if (
            merged
            and chunk.category == Category.VALUE
            and merged[-1].category == Category.VALUE
            and not chunk.quoted
            and not merged[-1].quoted
        ):
            last = merged.pop()
            merged.append(
                Chunk(
                    last.tagged_words + chunk.tagged_words,
                    Category.VALUE,
                    last.lemma + " " + chunk.lemma,
                )
            )
        else:
            merged.append(chunk)
    return merged
