"""Light-weight English morphology: lemmas for nouns and verbs.

Covers regular inflection plus the irregulars that actually occur in
database queries. Used by the tagger to normalise words before lexicon
lookup, and by NaLIX's term expansion to match name tokens against
database tag names ("movies" -> tag ``movie``).
"""

from __future__ import annotations

_IRREGULAR_NOUNS = {
    # -ies words whose stem ends in -ie (the "+ies -> y" rule is wrong).
    "movies": "movie",
    "cookies": "cookie",
    "ties": "tie",
    "pies": "pie",
    "prices": "price",
    "children": "child",
    "people": "person",
    "men": "man",
    "women": "woman",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "geese": "goose",
    "indices": "index",
    "matrices": "matrix",
    "appendices": "appendix",
    "criteria": "criterion",
    "phenomena": "phenomenon",
    "data": "data",
    "series": "series",
    "species": "species",
    "theses": "thesis",
    "analyses": "analysis",
}

_IRREGULAR_VERBS = {
    "is": "be",
    "are": "be",
    "was": "be",
    "were": "be",
    "been": "be",
    "being": "be",
    "am": "be",
    "has": "have",
    "had": "have",
    "having": "have",
    "does": "do",
    "did": "do",
    "done": "do",
    "doing": "do",
    "wrote": "write",
    "written": "write",
    "gave": "give",
    "given": "give",
    "made": "make",
    "sold": "sell",
    "bought": "buy",
    "found": "find",
    "got": "get",
    "gotten": "get",
    "went": "go",
    "gone": "go",
    "came": "come",
    "took": "take",
    "taken": "take",
    "won": "win",
    "held": "hold",
    "shown": "show",
    "showed": "show",
    "cost": "cost",
}

# Words that end in s but are singular (so noun lemmatisation leaves them).
_S_SINGULARS = {
    "this",
    "thus",
    "less",
    "is",
    "was",
    "has",
    "does",
    "its",
    "his",
    "us",
    "plus",
    "minus",
    "address",
    "press",
    "class",
    "access",
    "business",
    "analysis",
    "thesis",
    "status",
    "always",
    "perhaps",
    "across",
}

_VOWELS = set("aeiou")

# -ing forms whose stems the suffix rules get wrong.
_ING_EXCEPTIONS = {
    "including": "include",
    "containing": "contain",
    "starring": "star",
    "having": "have",
    "being": "be",
    "writing": "write",
    "citing": "cite",
    "pricing": "price",
    "naming": "name",
    "using": "use",
    "making": "make",
    "taking": "take",
    "giving": "give",
}

# -ed forms whose stems the suffix rules get wrong.
_ED_EXCEPTIONS = {
    "edited": "edit",
    "united": "unite",
    "cited": "cite",
    "titled": "title",
    "priced": "price",
    "released": "release",
    "included": "include",
    "contained": "contain",
    "joined": "join",
    "earned": "earn",
    "owned": "own",
    "starred": "star",
    "appeared": "appear",
    "named": "name",
    "used": "use",
}


def singularize(word):
    """Best-effort singular form of a noun (input assumed lowercase)."""
    if word in _IRREGULAR_NOUNS:
        return _IRREGULAR_NOUNS[word]
    if word in _S_SINGULARS or len(word) <= 3 or not word.endswith("s"):
        return word
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("ves") and len(word) > 4:
        return word[:-3] + "f"
    if word.endswith(("ses", "xes", "zes", "ches", "shes")):
        return word[:-2]
    if word.endswith("ss") or word.endswith("us"):
        return word
    return word[:-1]


def pluralize(word):
    """Best-effort plural form (inverse of :func:`singularize`)."""
    for plural, singular in _IRREGULAR_NOUNS.items():
        if singular == word:
            return plural
    if word.endswith("y") and len(word) > 1 and word[-2] not in _VOWELS:
        return word[:-1] + "ies"
    if word.endswith(("s", "x", "z", "ch", "sh")):
        return word + "es"
    return word + "s"


def verb_lemma(word):
    """Best-effort base form of a verb (input assumed lowercase)."""
    if word in _IRREGULAR_VERBS:
        return _IRREGULAR_VERBS[word]
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("ied") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("ing") and len(word) > 4:
        if word in _ING_EXCEPTIONS:
            return _ING_EXCEPTIONS[word]
        stem = word[:-3]
        if stem.endswith(("at", "et", "ut", "is", "ar", "or", "ag", "uc", "as",
                          "ud", "iv")):
            return stem + "e"
        return _undouble(stem)
    if word.endswith("ed") and len(word) > 3:
        if word in _ED_EXCEPTIONS:
            return _ED_EXCEPTIONS[word]
        stem = word[:-2]
        if stem.endswith(("at", "et", "ut", "is", "ar", "or", "ag", "uc", "as")):
            # produced -> produce, stored -> store, managed -> manage ...
            return stem + "e"
        return _undouble(stem)
    if word.endswith(("ses", "xes", "zes", "ches", "shes")) and len(word) > 4:
        return word[:-2]
    if word.endswith("s") and not word.endswith("ss") and len(word) > 3:
        return word[:-1]
    return word


def _undouble(stem):
    """Undo consonant doubling: planned -> plan, running -> run."""
    if (
        len(stem) >= 3
        and stem[-1] == stem[-2]
        and stem[-1] not in _VOWELS
        and stem[-1] not in "sl"
    ):
        return stem[:-1]
    return stem


def is_past_participle_shape(word):
    """Heuristic: does this look like a past/past-participle form?"""
    return word.endswith("ed") or word in {
        lemma_form
        for lemma_form in _IRREGULAR_VERBS
        if lemma_form.endswith(("en", "ne", "wn", "ld", "st"))
    } or word in ("written", "given", "shown", "sold", "made", "held", "won")
