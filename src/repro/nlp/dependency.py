"""Deterministic dependency parser for query English.

The parser consumes the chunk stream left to right, maintaining a small
attachment state (current clause anchor, the last noun head, an open
complement slot, the clause's subject). The rules are tuned to the query
genre — an imperative or wh root, noun phrases, "of"/"with" chains,
participle connectors, comparatives, and subordinate "where" clauses —
and produce trees with the same shapes as the paper's Figures 2, 3
and 10.

The parser is intentionally *not* a general English grammar: like the
paper's use of Minipar, it occasionally mis-attaches (and NaLIX's
validator then reports what it could not use). That behaviour is part of
what the reproduction models.
"""

from __future__ import annotations

from repro.nlp.categories import Category
from repro.nlp.chunker import build_chunks
from repro.nlp.errors import ParseFailure
from repro.nlp.parse_tree import ParseNode
from repro.nlp.tagger import tag_words
from repro.nlp.tokenizer import tokenize_sentence

_NP_CATEGORIES = (Category.NOUN, Category.FUNCTION, Category.VALUE,
                  Category.PRONOUN)

# Verbs/prepositions that, after a comma, extend the command's return
# list ("..., including their year and title").
_RETURN_EXTENDERS = {"include", "with", "along with", "as well as"}


class DependencyParser:
    """Parses sentences into :class:`ParseNode` trees.

    ``vocabulary`` maps lemma phrases to :class:`Category` values; NaLIX
    supplies its enumerated phrase sets through it. Single-word entries
    override the tagger, multi-word entries drive the chunker.
    """

    def __init__(self, vocabulary=None):
        vocabulary = dict(vocabulary or {})
        self.word_vocabulary = {
            phrase: category
            for phrase, category in vocabulary.items()
            if " " not in phrase
        }
        self.phrase_vocabulary = {
            phrase: category
            for phrase, category in vocabulary.items()
            if " " in phrase
        }

    def parse(self, sentence):
        """Parse ``sentence``; raises :class:`ParseFailure` when no tree
        can be built (empty input, no recognisable structure)."""
        words = tokenize_sentence(sentence)
        if not words:
            raise ParseFailure("the query is empty", sentence=sentence)
        tagged = tag_words(words, self.word_vocabulary)
        chunks = build_chunks(tagged, self.phrase_vocabulary)
        tree = _TreeBuilder(sentence, chunks).build()
        return tree.assign_ids()


class _TreeBuilder:
    """One-pass attachment state machine over the chunk stream."""

    def __init__(self, sentence, chunks):
        self.sentence = sentence
        self.chunks = chunks
        self.position = 0
        self.root = None
        self.clause_anchor = None
        self.slot = None            # CM/OT/FT/OBT node awaiting complement
        self.last_noun = None       # most recent noun-like head
        self.last_np_node = None    # most recent attached NP-ish node
        self.subject_head = None    # current clause subject (for OT lifting)
        self.in_subclause = False
        self.pending_modifiers = []
        self.pending_negation = None
        self.copula_pending = False
        self.copula_noun = None
        self.have_context = False
        self.after_boundary = False
        self.coordination_parent = None
        self.coordination_first = None

    # -- helpers ------------------------------------------------------------

    def _node(self, chunk, category=None):
        return ParseNode(
            chunk.text,
            chunk.lemma,
            category or chunk.category,
            chunk.index,
            quoted=chunk.quoted,
        )

    def _peek(self, offset=1):
        index = self.position + offset
        if index < len(self.chunks):
            return self.chunks[index]
        return None

    def _attach_modifiers(self, head):
        for modifier in self.pending_modifiers:
            head.attach(modifier)
        self.pending_modifiers = []

    def _ensure_root(self, chunk):
        """Queries must open with a command/wh chunk; otherwise a
        placeholder root is created for the validator to reject."""
        if self.root is not None:
            return
        placeholder = ParseNode("", "", Category.UNKNOWN, -1)
        self.root = placeholder
        self.clause_anchor = placeholder

    # -- main loop --------------------------------------------------------------

    def build(self):
        while self.position < len(self.chunks):
            chunk = self.chunks[self.position]
            handler = _HANDLERS.get(chunk.category, _TreeBuilder._on_unknown)
            handler(self, chunk)
            if chunk.category != Category.BOUNDARY:
                self.after_boundary = False
            self.position += 1
        if self.root is None:
            raise ParseFailure(
                "no query structure recognised", sentence=self.sentence
            )
        # Leftover modifiers with no head dangle from the root as markers.
        for modifier in self.pending_modifiers:
            self.root.attach(modifier)
        self.pending_modifiers = []
        return self.root

    # -- handlers, one per category ------------------------------------------------

    def _on_command(self, chunk):
        if self.root is None:
            node = self._node(chunk, Category.COMMAND)
            self.root = node
            self.clause_anchor = node
            return
        # A mid-sentence command verb behaves like a return extender.
        self._on_verb(chunk)

    def _on_wh(self, chunk):
        if self.root is None:
            node = self._node(chunk, Category.WH)
            self.root = node
            self.clause_anchor = node
            return
        self._attach_marker(chunk)

    def _on_noun(self, chunk):
        self._ensure_root(chunk)
        head = self._node(chunk)
        self._attach_modifiers(head)
        parent = self._np_parent()
        parent.attach(head)
        if self.coordination_first is not None:
            head.conjunct_of = self.coordination_first
            self.coordination_first = None
            self.coordination_parent = None
        self.last_noun = head
        self.last_np_node = head
        if (
            self.in_subclause
            and self.subject_head is None
            and parent is self.clause_anchor
        ):
            self.subject_head = head
        self.copula_pending = False
        self.have_context = False

    def _on_function(self, chunk):
        if self.root is None and self.position == 0:
            # "How many movies ..." — the aggregate phrase itself opens
            # the question; give it an implicit Return root.
            implicit_root = ParseNode("", "return", Category.COMMAND, -1)
            self.root = implicit_root
            self.clause_anchor = implicit_root
        self._ensure_root(chunk)
        node = self._node(chunk)
        self._attach_modifiers(node)
        parent = self._np_parent()
        parent.attach(node)
        if self.coordination_first is not None:
            node.conjunct_of = self.coordination_first
            self.coordination_first = None
            self.coordination_parent = None
        if (
            self.in_subclause
            and self.subject_head is None
            and parent is self.clause_anchor
        ):
            self.subject_head = node
        self.slot = node
        self.last_np_node = node
        self.copula_pending = False

    def _on_value(self, chunk):
        self._ensure_root(chunk)
        node = self._node(chunk)
        self._attach_modifiers(node)
        if self.slot is not None:
            self.slot.attach(node)
            self.slot = None
        elif self.copula_pending and self.copula_noun is not None:
            self.copula_noun.attach(node)
            self.copula_pending = False
        elif self.coordination_parent is not None:
            self.coordination_parent.attach(node)
            node.conjunct_of = self.coordination_first
            self.coordination_parent = None
            self.coordination_first = None
        elif self.last_noun is not None:
            self.last_noun.attach(node)
        else:
            self.clause_anchor.attach(node)
            if self.in_subclause and self.subject_head is None:
                self.subject_head = node
        self.last_np_node = node

    def _np_parent(self):
        """Where the next noun-phrase head belongs."""
        if self.slot is not None:
            slot = self.slot
            self.slot = None
            return slot
        if self.coordination_parent is not None:
            return self.coordination_parent
        if self.have_context and self.last_noun is not None:
            return self.last_noun
        if self.copula_pending and self.copula_noun is not None:
            return self.copula_noun
        return self.clause_anchor

    def _on_prep(self, chunk):
        self._ensure_root(chunk)
        node = self._node(chunk)
        if self.after_boundary and chunk.lemma in _RETURN_EXTENDERS:
            self.root.attach(node)
            self.last_noun = None
        elif self.slot is not None:
            self.slot.attach(node)
        elif self.last_noun is not None:
            self.last_noun.attach(node)
        else:
            self.clause_anchor.attach(node)
        self.slot = node

    def _on_verb(self, chunk):
        self._ensure_root(chunk)
        node = self._node(chunk)
        if self.pending_negation is not None:
            node.attach(self.pending_negation)
            self.pending_negation = None
        if self.after_boundary and chunk.lemma.split()[0] in _RETURN_EXTENDERS:
            self.root.attach(node)
            self.last_noun = None
        elif self.last_noun is not None:
            self.last_noun.attach(node)
        else:
            self.clause_anchor.attach(node)
        self.slot = node
        self.have_context = False
        self.copula_pending = False

    def _on_comparative(self, chunk):
        self._ensure_root(chunk)
        node = self._node(chunk, Category.COMPARATIVE)
        if self.pending_negation is not None:
            node.attach(self.pending_negation)
            self.pending_negation = None
        if self.in_subclause and self.subject_head is not None:
            subject = self.subject_head
            self.clause_anchor.attach(node)
            subject.reattach_to(node)
            self.subject_head = None
        elif self.last_noun is not None:
            self.last_noun.attach(node)
        else:
            self.clause_anchor.attach(node)
        self.slot = node
        self.copula_pending = False

    def _on_order(self, chunk):
        self._ensure_root(chunk)
        node = self._node(chunk)
        self.root.attach(node)
        self.slot = node
        self.copula_pending = False

    def _on_quantifier(self, chunk):
        self.pending_modifiers.append(self._node(chunk))

    def _on_determiner(self, chunk):
        nxt = self._peek()
        if chunk.lemma in ("that", "which") and nxt is not None and nxt.category in (
            Category.AUXILIARY,
            Category.VERB,
            Category.COMPARATIVE,
        ):
            self._on_subordinator(chunk)
            return
        self.pending_modifiers.append(self._node(chunk))

    def _on_adjective(self, chunk):
        self.pending_modifiers.append(self._node(chunk))

    def _on_negation(self, chunk):
        self.pending_negation = self._node(chunk)

    def _on_conjunction(self, chunk):
        if chunk.lemma != "and":
            # Disjunction and contrast are outside the supported grammar;
            # leave an unknown node for the validator to report.
            self._on_unknown(chunk)
            return
        if self.last_np_node is not None and self.last_np_node.category in (
            Category.NOUN,
            Category.FUNCTION,
        ):
            self.coordination_parent = self.last_np_node.parent
            self.coordination_first = self.last_np_node
        else:
            # Predicate-level "and": start a fresh predicate.
            self.subject_head = None
            self.last_noun = None
            self.coordination_parent = None
            self.coordination_first = None
        self.slot = None
        self.copula_pending = False
        self.have_context = False

    def _on_pronoun(self, chunk):
        if chunk.lemma == "whose" and self.last_noun is not None:
            # "movie whose director ..." — a possessive connector.
            self._on_prep(chunk)
            return
        if chunk.lemma in ("their", "its", "his", "her", "whose", "my", "our",
                           "your"):
            self.pending_modifiers.append(self._node(chunk))
            return
        # A personal pronoun stands where a noun would (with a warning
        # issued downstream by the validator).
        self._on_noun(chunk)

    def _on_auxiliary(self, chunk):
        self._ensure_root(chunk)
        if chunk.lemma == "be" and self._copula_is_predicate():
            # In a subordinate clause, a copula linking the subject to a
            # value is an equality operator: "where the director of each
            # movie is Ron Howard". (When the copula is part of a phrase
            # like "is the same as", the chunker has already merged it.)
            self._on_comparative(chunk)
            return
        node = self._node(chunk)
        # Auxiliaries are general markers: attach for provenance, but
        # nothing ever hangs off them.
        (self.last_noun or self.clause_anchor).attach(node)
        if chunk.lemma == "have":
            self.have_context = True
        elif chunk.lemma == "be":
            self.copula_pending = True
            self.copula_noun = self.subject_head or self.last_noun
        return

    def _copula_is_predicate(self):
        """Does this 'be' equate the clause subject with a value?"""
        if not self.in_subclause or self.subject_head is None:
            return False
        offset = 1
        while True:
            nxt = self._peek(offset)
            if nxt is None:
                return False
            if nxt.category in (Category.DETERMINER, Category.ADJECTIVE,
                                Category.QUANTIFIER, Category.NEGATION):
                offset += 1
                continue
            return nxt.category == Category.VALUE

    def _on_subordinator(self, chunk):
        self._ensure_root(chunk)
        node = self._node(chunk)
        (self.last_noun or self.clause_anchor).attach(node)
        if chunk.lemma in ("where", "when", "while", "whereby"):
            self.in_subclause = True
            self.subject_head = None
            self.last_noun = None
        self.slot = None
        self.copula_pending = False
        self.have_context = False

    def _on_boundary(self, chunk):
        self.after_boundary = True
        self.copula_pending = False
        self.have_context = False
        self.slot = None

    def _on_unknown(self, chunk):
        self._ensure_root(chunk)
        node = self._node(chunk, Category.UNKNOWN)
        if self.slot is not None:
            self.slot.attach(node)
        elif self.last_noun is not None:
            self.last_noun.attach(node)
        else:
            self.clause_anchor.attach(node)

    def _attach_marker(self, chunk):
        node = self._node(chunk)
        (self.last_noun or self.clause_anchor).attach(node)


_HANDLERS = {
    Category.COMMAND: _TreeBuilder._on_command,
    Category.WH: _TreeBuilder._on_wh,
    Category.NOUN: _TreeBuilder._on_noun,
    Category.FUNCTION: _TreeBuilder._on_function,
    Category.VALUE: _TreeBuilder._on_value,
    Category.PREP: _TreeBuilder._on_prep,
    Category.VERB: _TreeBuilder._on_verb,
    Category.COMPARATIVE: _TreeBuilder._on_comparative,
    Category.ORDER: _TreeBuilder._on_order,
    Category.QUANTIFIER: _TreeBuilder._on_quantifier,
    Category.DETERMINER: _TreeBuilder._on_determiner,
    Category.ADJECTIVE: _TreeBuilder._on_adjective,
    Category.NEGATION: _TreeBuilder._on_negation,
    Category.CONJUNCTION: _TreeBuilder._on_conjunction,
    Category.PRONOUN: _TreeBuilder._on_pronoun,
    Category.AUXILIARY: _TreeBuilder._on_auxiliary,
    Category.SUBORDINATOR: _TreeBuilder._on_subordinator,
    Category.BOUNDARY: _TreeBuilder._on_boundary,
    Category.UNKNOWN: _TreeBuilder._on_unknown,
}
