"""Dependency parsing for query English (the paper's Minipar stand-in).

The pipeline is: :mod:`tokenizer` (quotation-aware word splitting) ->
:mod:`chunker` (multi-word expression and proper-noun merging, driven by
a caller-supplied vocabulary) -> :mod:`tagger` (lexicon + morphology
category assignment) -> :mod:`dependency` (deterministic attachment
rules producing a :class:`~repro.nlp.parse_tree.ParseNode` tree).

The parser is *generic*: it has its own closed-class lexicon and
morphology, and accepts extra vocabulary (multi-word phrases with their
syntactic categories) from the application — this is how NaLIX's
enumerated phrase sets ("the same as", "the number of", ...) reach the
parser, just as Minipar consults its lexicon.
"""

from repro.nlp.categories import Category
from repro.nlp.dependency import DependencyParser
from repro.nlp.errors import ParseFailure
from repro.nlp.parse_tree import ParseNode
from repro.nlp.tokenizer import Word, tokenize_sentence

__all__ = [
    "Category",
    "DependencyParser",
    "ParseFailure",
    "ParseNode",
    "Word",
    "tokenize_sentence",
]
