"""Syntactic categories used across the NLP pipeline.

These are coarse, parser-level categories (what Minipar's grammatical
classes give NaLIX), not NaLIX token types: the mapping from categories
to token types (CMT, NT, VT, ...) is the job of
:mod:`repro.core.classifier`.
"""


class Category:
    """Namespace of category constants."""

    COMMAND = "COMMAND"          # imperative query verb: return, list, find
    WH = "WH"                    # wh-phrase: what, which, who (query-initial)
    NOUN = "NOUN"                # common noun (potential name token)
    VALUE = "VALUE"              # quoted string, number, or proper-noun run
    PREP = "PREP"                # preposition (potential connection marker)
    VERB = "VERB"                # non-command verb (relates two nouns)
    FUNCTION = "FUNCTION"        # "the number of", "lowest", ... (aggregates)
    COMPARATIVE = "COMPARATIVE"  # "the same as", "greater than", "after", ...
    ORDER = "ORDER"              # "sorted by", "in alphabetical order", ...
    QUANTIFIER = "QUANTIFIER"    # every, each, all, some, any
    DETERMINER = "DETERMINER"    # the, a, an, this, those
    ADJECTIVE = "ADJECTIVE"      # plain adjective (modifier marker)
    NEGATION = "NEGATION"        # not, never
    CONJUNCTION = "CONJUNCTION"  # and
    PRONOUN = "PRONOUN"          # it, they, their, its
    AUXILIARY = "AUXILIARY"      # is, are, has, have, do, been ...
    SUBORDINATOR = "SUBORDINATOR"  # where, that/who/which introducing clauses
    BOUNDARY = "BOUNDARY"        # comma and other clause punctuation
    UNKNOWN = "UNKNOWN"          # a word the lexicon cannot place

    ALL = (
        COMMAND,
        WH,
        NOUN,
        VALUE,
        PREP,
        VERB,
        FUNCTION,
        COMPARATIVE,
        ORDER,
        QUANTIFIER,
        DETERMINER,
        ADJECTIVE,
        NEGATION,
        CONJUNCTION,
        PRONOUN,
        AUXILIARY,
        SUBORDINATOR,
        BOUNDARY,
        UNKNOWN,
    )
