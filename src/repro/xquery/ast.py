"""Abstract syntax for the Schema-Free XQuery subset NaLIX generates.

Every node knows how to serialize itself (``to_text``), so the
translator's output is always a legible XQuery string like the paper's
Figure 9, and the string round-trips through :mod:`repro.xquery.parser`.
Equality is structural, which the round-trip tests rely on.
"""

from __future__ import annotations


class Expr:
    """Base class for all expressions."""

    def to_text(self):
        raise NotImplementedError

    def children(self):
        """Direct sub-expressions (used by generic tree walks)."""
        return []

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, self.to_text()))

    def __repr__(self):
        return f"{type(self).__name__}({self.to_text()})"


class Literal(Expr):
    """A string or numeric constant."""

    def __init__(self, value):
        self.value = value

    def to_text(self):
        if isinstance(self.value, str):
            escaped = self.value.replace('"', '""')
            return f'"{escaped}"'
        if isinstance(self.value, float) and self.value.is_integer():
            return str(int(self.value))
        return str(self.value)


class VarRef(Expr):
    """A variable reference, e.g. ``$v1``."""

    def __init__(self, name):
        self.name = name

    def to_text(self):
        return f"${self.name}"


class DocSource(Expr):
    """``doc("name")`` — the root of a named document."""

    def __init__(self, name):
        self.name = name

    def to_text(self):
        return f'doc("{self.name}")'


class Step:
    """One path step: an axis plus a node test.

    Axes: ``child`` (``/``), ``descendant`` (``//``), ``attribute``
    (``/@``), ``text`` (``/text()``). The node test is a tag name, ``*``,
    a ``|``-separated alternation (``title|booktitle`` — how NaLIX encodes
    a name token that matched several database names, Sec. 4), or for the
    attribute axis an attribute name.
    """

    CHILD = "child"
    DESCENDANT = "descendant"
    ATTRIBUTE = "attribute"
    TEXT = "text"

    def __init__(self, axis, test="*"):
        self.axis = axis
        self.test = test

    def to_text(self):
        test = f"({self.test})" if "|" in self.test else self.test
        if self.axis == Step.CHILD:
            return f"/{test}"
        if self.axis == Step.DESCENDANT:
            return f"//{test}"
        if self.axis == Step.ATTRIBUTE:
            return f"/@{test}"
        return "/text()"

    def matches_tags(self):
        """The set of tags this step's name test accepts, or None for *."""
        if self.test == "*":
            return None
        return set(self.test.split("|"))

    def __eq__(self, other):
        return (
            isinstance(other, Step)
            and self.axis == other.axis
            and self.test == other.test
        )

    def __hash__(self):
        return hash((self.axis, self.test))

    def __repr__(self):
        return f"Step({self.to_text()})"


class PathExpr(Expr):
    """``start`` followed by steps, e.g. ``doc("m")//movie/title``."""

    def __init__(self, start, steps):
        self.start = start
        self.steps = list(steps)

    def to_text(self):
        return self.start.to_text() + "".join(step.to_text() for step in self.steps)

    def children(self):
        return [self.start]

    def last_tag(self):
        """The final name test, or None (used by the planner)."""
        if self.steps:
            last = self.steps[-1]
            if last.axis == Step.ATTRIBUTE:
                return "@" + last.test
            if last.axis != Step.TEXT:
                return last.test
        return None


class Sequence(Expr):
    """A comma sequence ``(a, b, c)``."""

    def __init__(self, items):
        self.items = list(items)

    def to_text(self):
        return "(" + ", ".join(item.to_text() for item in self.items) + ")"

    def children(self):
        return list(self.items)


class Comparison(Expr):
    """A general comparison with existential sequence semantics."""

    OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __init__(self, op, left, right):
        if op not in Comparison.OPS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def to_text(self):
        return f"{self.left.to_text()} {self.op} {self.right.to_text()}"

    def children(self):
        return [self.left, self.right]


class And(Expr):
    """Conjunction of two or more conditions."""

    def __init__(self, items):
        self.items = list(items)

    def to_text(self):
        return " and ".join(_parenthesize_bool(item) for item in self.items)

    def children(self):
        return list(self.items)


class Or(Expr):
    """Disjunction of two or more conditions."""

    def __init__(self, items):
        self.items = list(items)

    def to_text(self):
        return " or ".join(_parenthesize_bool(item) for item in self.items)

    def children(self):
        return list(self.items)


class Not(Expr):
    """``not(...)`` — also reachable as FunctionCall("not", ...)."""

    def __init__(self, operand):
        self.operand = operand

    def to_text(self):
        return f"not({self.operand.to_text()})"

    def children(self):
        return [self.operand]


class FunctionCall(Expr):
    """A built-in call: count, sum, avg, min, max, mqf, contains, ..."""

    def __init__(self, name, args):
        self.name = name
        self.args = list(args)

    def to_text(self):
        inner = ", ".join(arg.to_text() for arg in self.args)
        return f"{self.name}({inner})"

    def children(self):
        return list(self.args)


class Quantified(Expr):
    """``some|every $v in source satisfies condition``."""

    def __init__(self, kind, var, source, condition):
        if kind not in ("some", "every"):
            raise ValueError("quantifier kind must be 'some' or 'every'")
        self.kind = kind
        self.var = var
        self.source = source
        self.condition = condition

    def to_text(self):
        return (
            f"{self.kind} ${self.var} in {self.source.to_text()} "
            f"satisfies ({self.condition.to_text()})"
        )

    def children(self):
        return [self.source, self.condition]


class ElementConstructor(Expr):
    """``<tag>{ expr }</tag>`` — simple computed content constructor."""

    def __init__(self, tag, content_items):
        self.tag = tag
        self.content_items = list(content_items)

    def to_text(self):
        inner = ", ".join(item.to_text() for item in self.content_items)
        return f"<{self.tag}>{{ {inner} }}</{self.tag}>"

    def children(self):
        return list(self.content_items)


# -- FLWOR clauses ----------------------------------------------------------


class Clause:
    """Base class for FLWOR clauses."""

    def to_text(self):
        raise NotImplementedError

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, self.to_text()))

    def __repr__(self):
        return f"{type(self).__name__}({self.to_text()})"


class ForClause(Clause):
    """``for $v1 in e1, $v2 in e2, ...``"""

    def __init__(self, bindings):
        self.bindings = list(bindings)

    def to_text(self):
        inner = ", ".join(f"${var} in {expr.to_text()}" for var, expr in self.bindings)
        return f"for {inner}"


class LetClause(Clause):
    """``let $v := expr`` — expr may be a brace-wrapped nested FLWOR."""

    def __init__(self, var, expr):
        self.var = var
        self.expr = expr

    def to_text(self):
        if isinstance(self.expr, FLWOR):
            return f"let ${self.var} := {{ {self.expr.to_text()} }}"
        return f"let ${self.var} := {self.expr.to_text()}"


class WhereClause(Clause):
    def __init__(self, condition):
        self.condition = condition

    def to_text(self):
        return f"where {self.condition.to_text()}"


class OrderByClause(Clause):
    def __init__(self, keys):
        """``keys``: list of (expr, descending: bool)."""
        self.keys = list(keys)

    def to_text(self):
        rendered = []
        for expr, descending in self.keys:
            rendered.append(expr.to_text() + (" descending" if descending else ""))
        return "order by " + ", ".join(rendered)


class ReturnClause(Clause):
    def __init__(self, expr):
        self.expr = expr

    def to_text(self):
        return f"return {self.expr.to_text()}"


class FLWOR(Expr):
    """A full FLWOR expression: ordered clauses ending in ``return``."""

    def __init__(self, clauses):
        self.clauses = list(clauses)
        if not self.clauses or not isinstance(self.clauses[-1], ReturnClause):
            raise ValueError("FLWOR must end with a return clause")

    def to_text(self):
        return " ".join(clause.to_text() for clause in self.clauses)

    def to_pretty_text(self, indent="  ", level=0):
        """Multi-line rendering in the style of the paper's Figure 9."""
        pad = indent * level
        lines = []
        for clause in self.clauses:
            if isinstance(clause, LetClause) and isinstance(clause.expr, FLWOR):
                lines.append(f"{pad}let ${clause.var} := {{")
                lines.append(clause.expr.to_pretty_text(indent, level + 1))
                lines.append(f"{pad}}}")
            else:
                lines.append(pad + clause.to_text())
        return "\n".join(lines)

    def children(self):
        result = []
        for clause in self.clauses:
            if isinstance(clause, ForClause):
                result.extend(expr for _, expr in clause.bindings)
            elif isinstance(clause, LetClause):
                result.append(clause.expr)
            elif isinstance(clause, WhereClause):
                result.append(clause.condition)
            elif isinstance(clause, OrderByClause):
                result.extend(expr for expr, _ in clause.keys)
            elif isinstance(clause, ReturnClause):
                result.append(clause.expr)
        return result

    def for_bindings(self):
        bindings = []
        for clause in self.clauses:
            if isinstance(clause, ForClause):
                bindings.extend(clause.bindings)
        return bindings

    def where_condition(self):
        for clause in self.clauses:
            if isinstance(clause, WhereClause):
                return clause.condition
        return None

    def return_expr(self):
        return self.clauses[-1].expr


def _parenthesize_bool(expr):
    if isinstance(expr, (And, Or)):
        return f"({expr.to_text()})"
    return expr.to_text()


def doc_path(document_name, tag):
    """Shorthand for ``doc("name")//tag`` used throughout the translator."""
    if tag.startswith("@"):
        return PathExpr(
            DocSource(document_name), [Step(Step.DESCENDANT, "*"),
                                       Step(Step.ATTRIBUTE, tag[1:])]
        )
    return PathExpr(DocSource(document_name), [Step(Step.DESCENDANT, tag)])
