"""Built-in function library for the XQuery subset.

``mqf`` is special-cased by the evaluator (it needs candidate
populations, not just argument values) and therefore does not appear
here. Everything else is a plain sequence -> sequence function.
"""

from __future__ import annotations

from repro.xquery.errors import XQueryEvaluationError, XQueryTypeError
from repro.xquery.values import atomize, atomize_sequence, string_value


def _numeric_atoms(sequence, function_name):
    atoms = []
    for atom in atomize_sequence(sequence):
        if isinstance(atom, bool) or not isinstance(atom, (int, float)):
            number = _try_number(atom)
            if number is None:
                raise XQueryTypeError(
                    f"{function_name}() requires numeric values, got {atom!r}"
                )
            atom = number
        atoms.append(atom)
    return atoms


def _try_number(value):
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    return None


def fn_count(sequence):
    return [len(sequence)]


def fn_sum(sequence):
    return [sum(_numeric_atoms(sequence, "sum"))]


def fn_avg(sequence):
    atoms = _numeric_atoms(sequence, "avg")
    if not atoms:
        return []
    return [sum(atoms) / len(atoms)]


def fn_min(sequence):
    atoms = atomize_sequence(sequence)
    if not atoms:
        return []
    numbers = [atom for atom in atoms if isinstance(atom, (int, float))]
    if len(numbers) == len(atoms):
        return [min(numbers)]
    return [min(str(atom).casefold() for atom in atoms)]


def fn_max(sequence):
    atoms = atomize_sequence(sequence)
    if not atoms:
        return []
    numbers = [atom for atom in atoms if isinstance(atom, (int, float))]
    if len(numbers) == len(atoms):
        return [max(numbers)]
    return [max(str(atom).casefold() for atom in atoms)]


def fn_empty(sequence):
    return [not sequence]


def fn_exists(sequence):
    return [bool(sequence)]


def fn_string(sequence):
    if not sequence:
        return [""]
    return [string_value(sequence[0])]


def fn_number(sequence):
    if not sequence:
        return []
    atom = atomize(sequence[0])
    if isinstance(atom, (int, float)) and not isinstance(atom, bool):
        return [atom]
    number = _try_number(str(atom))
    if number is None:
        raise XQueryTypeError(f"number() cannot convert {atom!r}")
    return [number]


def fn_distinct_values(sequence):
    seen = set()
    result = []
    for atom in atomize_sequence(sequence):
        key = str(atom).casefold() if isinstance(atom, str) else atom
        if key not in seen:
            seen.add(key)
            result.append(atom)
    return result


def fn_contains(haystack, needle):
    hay = string_value(haystack[0]) if haystack else ""
    sub = string_value(needle[0]) if needle else ""
    return [sub.casefold() in hay.casefold()]


def fn_starts_with(haystack, prefix):
    hay = string_value(haystack[0]) if haystack else ""
    pre = string_value(prefix[0]) if prefix else ""
    return [hay.casefold().startswith(pre.casefold())]


def fn_ends_with(haystack, suffix):
    hay = string_value(haystack[0]) if haystack else ""
    suf = string_value(suffix[0]) if suffix else ""
    return [hay.casefold().endswith(suf.casefold())]


def fn_string_length(sequence):
    if not sequence:
        return [0]
    return [len(string_value(sequence[0]))]


def fn_concat(*argument_sequences):
    return [
        "".join(
            string_value(seq[0]) if seq else "" for seq in argument_sequences
        )
    ]


_SINGLE_ARGUMENT = {
    "count": fn_count,
    "sum": fn_sum,
    "avg": fn_avg,
    "min": fn_min,
    "max": fn_max,
    "empty": fn_empty,
    "exists": fn_exists,
    "string": fn_string,
    "number": fn_number,
    "distinct-values": fn_distinct_values,
    "string-length": fn_string_length,
}

_TWO_ARGUMENT = {
    "contains": fn_contains,
    "starts-with": fn_starts_with,
    "ends-with": fn_ends_with,
}


#: Names the evaluator resolves outside this table: ``mqf`` needs
#: candidate populations, ``not`` is the AST's Not node in call syntax.
_SPECIAL_FORMS = {"mqf": (2, None), "not": (1, 1)}


def builtin_names():
    """Every callable name the XQuery subset accepts (static analysis)."""
    return (
        set(_SINGLE_ARGUMENT) | set(_TWO_ARGUMENT) | {"concat"}
        | set(_SPECIAL_FORMS)
    )


def builtin_arity(name):
    """``(min_args, max_args)`` for a callable name (max None = unbounded).

    Returns None for unknown names so the analyzer can distinguish
    "unknown function" from "wrong arity".
    """
    if name in _SINGLE_ARGUMENT:
        return (1, 1)
    if name in _TWO_ARGUMENT:
        return (2, 2)
    if name == "concat":
        return (2, None)
    return _SPECIAL_FORMS.get(name)


def call_builtin(name, argument_sequences):
    """Dispatch a built-in by name; raises for unknown names/arity."""
    if name in _SINGLE_ARGUMENT:
        if len(argument_sequences) != 1:
            raise XQueryEvaluationError(f"{name}() takes exactly one argument")
        return _SINGLE_ARGUMENT[name](argument_sequences[0])
    if name in _TWO_ARGUMENT:
        if len(argument_sequences) != 2:
            raise XQueryEvaluationError(f"{name}() takes exactly two arguments")
        return _TWO_ARGUMENT[name](*argument_sequences)
    if name == "concat":
        if len(argument_sequences) < 2:
            raise XQueryEvaluationError("concat() takes two or more arguments")
        return fn_concat(*argument_sequences)
    raise XQueryEvaluationError(f"unknown function {name}()")


def is_aggregate(name):
    """True for the aggregates NaLIX maps function tokens onto."""
    return name in ("count", "sum", "avg", "min", "max")
