"""Recursive-descent parser from XQuery text to the AST.

The grammar covers exactly what the NaLIX translator emits (and what the
paper's worked examples show), so any generated query round-trips:
``parse_xquery(expr.to_text()) == expr``.

Grammar sketch::

    query      := flwor | or_expr
    flwor      := (for_clause | let_clause)* where? orderby? return
    for_clause := 'for' '$'name 'in' expr (',' '$'name 'in' expr)*
    let_clause := 'let' '$'name ':=' ('{' flwor '}' | expr)
    or_expr    := and_expr ('or' and_expr)*
    and_expr   := comparison ('and' comparison)*
    comparison := value (('='|'!='|'<'|'<='|'>'|'>=') value)?
    value      := quantified | flwor-at-expr | primary path-steps*
    primary    := literal | '$'name | 'doc' '(' string ')'
                | name '(' args ')' | '(' expr (',' expr)* ')'
                | '<' name '>' '{' args '}' '<' '/' name '>'
"""

from __future__ import annotations

from repro.xquery import ast
from repro.xquery.errors import XQueryParseError
from repro.xquery.lexer import tokenize


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    # -- token utilities ---------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def at(self, kind, text=None):
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def advance(self):
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind, text=None):
        token = self.peek()
        if not self.at(kind, text):
            wanted = text or kind
            raise XQueryParseError(
                f"expected {wanted!r}, found {token.text or 'end of query'!r}",
                position=token.position,
            )
        return self.advance()

    def error(self, message):
        return XQueryParseError(message, position=self.peek().position)

    # -- entry points --------------------------------------------------------

    def parse_query(self):
        expr = self.parse_expr()
        if not self.at("eof"):
            raise self.error(f"unexpected trailing input {self.peek().text!r}")
        return expr

    def parse_expr(self):
        if self.at("keyword", "for") or self.at("keyword", "let"):
            return self.parse_flwor()
        return self.parse_or()

    # -- FLWOR ---------------------------------------------------------------

    def parse_flwor(self):
        clauses = []
        while True:
            if self.at("keyword", "for"):
                clauses.append(self.parse_for_clause())
            elif self.at("keyword", "let"):
                clauses.append(self.parse_let_clause())
            else:
                break
        if self.at("keyword", "where"):
            self.advance()
            clauses.append(ast.WhereClause(self.parse_or()))
        if self.at("keyword", "order"):
            clauses.append(self.parse_order_by())
        self.expect("keyword", "return")
        clauses.append(ast.ReturnClause(self.parse_or()))
        return ast.FLWOR(clauses)

    def parse_for_clause(self):
        self.expect("keyword", "for")
        bindings = [self.parse_for_binding()]
        while self.at("symbol", ","):
            self.advance()
            bindings.append(self.parse_for_binding())
        return ast.ForClause(bindings)

    def parse_for_binding(self):
        var = self.expect("var").text[1:]
        self.expect("keyword", "in")
        return (var, self.parse_or())

    def parse_let_clause(self):
        self.expect("keyword", "let")
        var = self.expect("var").text[1:]
        self.expect("symbol", ":=")
        if self.at("symbol", "{"):
            self.advance()
            expr = self.parse_flwor()
            self.expect("symbol", "}")
        else:
            expr = self.parse_or()
        return ast.LetClause(var, expr)

    def parse_order_by(self):
        self.expect("keyword", "order")
        self.expect("keyword", "by")
        keys = [self.parse_order_key()]
        while self.at("symbol", ","):
            self.advance()
            keys.append(self.parse_order_key())
        return ast.OrderByClause(keys)

    def parse_order_key(self):
        expr = self.parse_or()
        descending = False
        if self.at("keyword", "descending"):
            descending = True
            self.advance()
        elif self.at("keyword", "ascending"):
            self.advance()
        return (expr, descending)

    # -- boolean / comparison layers ------------------------------------------

    def parse_or(self):
        items = [self.parse_and()]
        while self.at("keyword", "or"):
            self.advance()
            items.append(self.parse_and())
        if len(items) == 1:
            return items[0]
        return ast.Or(items)

    def parse_and(self):
        items = [self.parse_comparison()]
        while self.at("keyword", "and"):
            self.advance()
            items.append(self.parse_comparison())
        if len(items) == 1:
            return items[0]
        return ast.And(items)

    def parse_comparison(self):
        left = self.parse_value()
        token = self.peek()
        if token.kind == "symbol" and token.text in ast.Comparison.OPS:
            self.advance()
            right = self.parse_value()
            return ast.Comparison(token.text, left, right)
        return left

    # -- values and paths -------------------------------------------------------

    def parse_value(self):
        if self.at("keyword", "some") or self.at("keyword", "every"):
            return self.parse_quantified()
        if self.at("keyword", "for") or self.at("keyword", "let"):
            return self.parse_flwor()
        primary = self.parse_primary()
        steps = self.parse_steps()
        if steps:
            return ast.PathExpr(primary, steps)
        return primary

    def parse_quantified(self):
        kind = self.advance().text
        var = self.expect("var").text[1:]
        self.expect("keyword", "in")
        source = self.parse_value()
        self.expect("keyword", "satisfies")
        if self.at("symbol", "("):
            self.advance()
            condition = self.parse_or()
            self.expect("symbol", ")")
        else:
            condition = self.parse_comparison()
        return ast.Quantified(kind, var, source, condition)

    def parse_primary(self):
        token = self.peek()
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.text[1:-1].replace('""', '"'))
        if token.kind == "number":
            self.advance()
            if "." in token.text:
                return ast.Literal(float(token.text))
            return ast.Literal(int(token.text))
        if token.kind == "var":
            self.advance()
            return ast.VarRef(token.text[1:])
        if token.kind == "keyword" and token.text == "doc":
            self.advance()
            self.expect("symbol", "(")
            name = self.expect("string").text[1:-1]
            self.expect("symbol", ")")
            return ast.DocSource(name)
        if token.kind == "name":
            return self.parse_function_call()
        if self.at("symbol", "("):
            self.advance()
            items = [self.parse_or()]
            while self.at("symbol", ","):
                self.advance()
                items.append(self.parse_or())
            self.expect("symbol", ")")
            if len(items) == 1:
                return items[0]
            return ast.Sequence(items)
        if self.at("symbol", "<"):
            return self.parse_element_constructor()
        raise self.error(f"unexpected token {token.text or 'end of query'!r}")

    def parse_function_call(self):
        name = self.expect("name").text
        self.expect("symbol", "(")
        args = []
        if not self.at("symbol", ")"):
            args.append(self.parse_or())
            while self.at("symbol", ","):
                self.advance()
                args.append(self.parse_or())
        self.expect("symbol", ")")
        if name == "not" and len(args) == 1:
            return ast.Not(args[0])
        return ast.FunctionCall(name, args)

    def parse_element_constructor(self):
        self.expect("symbol", "<")
        tag = self.expect("name").text
        self.expect("symbol", ">")
        self.expect("symbol", "{")
        items = [self.parse_or()]
        while self.at("symbol", ","):
            self.advance()
            items.append(self.parse_or())
        self.expect("symbol", "}")
        self.expect("symbol", "<")
        self.expect("symbol", "/")
        closing = self.expect("name").text
        if closing != tag:
            raise self.error(f"mismatched constructor tags <{tag}>...</{closing}>")
        self.expect("symbol", ">")
        return ast.ElementConstructor(tag, items)

    def parse_steps(self):
        steps = []
        while True:
            if self.at("symbol", "//"):
                self.advance()
                steps.append(ast.Step(ast.Step.DESCENDANT, self.parse_name_test()))
            elif self.at("symbol", "/"):
                self.advance()
                if self.at("symbol", "@"):
                    self.advance()
                    steps.append(
                        ast.Step(ast.Step.ATTRIBUTE, self.expect("name").text)
                    )
                elif self.at("name", "text") and self.peek(1).text == "(":
                    self.advance()
                    self.expect("symbol", "(")
                    self.expect("symbol", ")")
                    steps.append(ast.Step(ast.Step.TEXT))
                else:
                    steps.append(ast.Step(ast.Step.CHILD, self.parse_name_test()))
            else:
                return steps

    def parse_name_test(self):
        if self.at("symbol", "("):
            self.advance()
            names = [self._step_name()]
            while self.at("symbol", "|"):
                self.advance()
                names.append(self._step_name())
            self.expect("symbol", ")")
            return "|".join(names)
        return self._step_name()

    def _step_name(self):
        if self.at("symbol", "@"):
            self.advance()
            return "@" + self.expect("name").text
        if self.at("symbol", "*"):
            self.advance()
            return "*"
        token = self.peek()
        if token.kind in ("name", "keyword"):
            self.advance()
            return token.text
        raise self.error(f"expected a name test, found {token.text!r}")


def parse_xquery(text):
    """Parse XQuery ``text`` into an AST expression."""
    return _Parser(tokenize(text)).parse_query()
