"""Schema-Free XQuery engine (the paper's target query language).

Implements the FLWOR subset NaLIX emits — nested FLWOR expressions in
``let``, aggregates, quantifiers, ``order by``, value joins — plus the
``mqf`` (meaningful query focus) function of Schema-Free XQuery
(Li, Yu & Jagadish, VLDB 2004), which relates elements by structural
proximity without schema knowledge.

The engine has three faces:

* :mod:`repro.xquery.ast` — the expression tree, with a ``to_text()``
  serializer so every generated query is a readable XQuery string;
* :mod:`repro.xquery.parser` — a lexer + recursive-descent parser from
  query text back to the AST (queries round-trip);
* :mod:`repro.xquery.evaluator` — evaluation against a
  :class:`repro.database.Database`, with a conjunctive planner
  (:mod:`repro.xquery.plan`) that turns ``for``/``where``/``mqf``
  patterns into index scans and structural joins.
"""

from repro.xquery.ast import (
    And,
    Comparison,
    DocSource,
    FLWOR,
    ForClause,
    FunctionCall,
    LetClause,
    Literal,
    Not,
    Or,
    OrderByClause,
    PathExpr,
    Quantified,
    ReturnClause,
    Sequence,
    Step,
    VarRef,
    WhereClause,
)
from repro.xquery.errors import XQueryError, XQueryParseError, XQueryTypeError
from repro.xquery.evaluator import Evaluator, evaluate_query
from repro.xquery.parser import parse_xquery

__all__ = [
    "And",
    "Comparison",
    "DocSource",
    "Evaluator",
    "FLWOR",
    "ForClause",
    "FunctionCall",
    "LetClause",
    "Literal",
    "Not",
    "Or",
    "OrderByClause",
    "PathExpr",
    "Quantified",
    "ReturnClause",
    "Sequence",
    "Step",
    "VarRef",
    "WhereClause",
    "XQueryError",
    "XQueryParseError",
    "XQueryTypeError",
    "evaluate_query",
    "parse_xquery",
]
