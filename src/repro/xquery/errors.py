"""Errors raised by the XQuery engine."""


class XQueryError(Exception):
    """Base class for all query-engine errors."""


class XQueryParseError(XQueryError):
    """The query text is not in the supported XQuery subset."""

    def __init__(self, message, position=None):
        suffix = f" (at offset {position})" if position is not None else ""
        super().__init__(message + suffix)
        self.position = position


class XQueryTypeError(XQueryError):
    """An operation was applied to values of the wrong kind."""


class XQueryEvaluationError(XQueryError):
    """A runtime failure (unknown variable, unknown function, ...)."""
