"""Tokenizer for the supported XQuery subset."""

from __future__ import annotations

import re

from repro.xquery.errors import XQueryParseError


class Token:
    """A lexical token with kind, text and source offset."""

    __slots__ = ("kind", "text", "position")

    def __init__(self, kind, text, position):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


KEYWORDS = {
    "for",
    "let",
    "where",
    "order",
    "by",
    "return",
    "in",
    "some",
    "every",
    "satisfies",
    "and",
    "or",
    "ascending",
    "descending",
    "doc",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"]|"")*")
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<var>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<symbol>:=|!=|<=|>=|//|[(){},=<>/@|*])
    """,
    re.VERBOSE,
)


def tokenize(text):
    """Tokenize ``text``; raises :class:`XQueryParseError` on junk."""
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise XQueryParseError(
                f"unexpected character {text[position]!r}", position=position
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group(0)
        kind = match.lastgroup
        if kind == "name" and value in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("eof", "", len(text)))
    return tokens
