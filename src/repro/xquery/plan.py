"""Conjunctive planner for FLWOR evaluation.

NaLIX-generated queries have a characteristic shape: a wide ``for``
clause over ``doc(...)//tag`` scans, with *all* selectivity expressed in
a conjunctive ``where`` — value predicates, comparisons, and ``mqf``
calls. Evaluating that naively means materialising a cross product of
every tag extent, which is hopeless on a 73k-node document.

The planner splits the ``where`` conjunction into:

* **single-variable predicates** — pushed into the candidate scan of the
  one ``for`` variable they constrain;
* **mqf groups** — evaluated with the anchor-based structural join of
  :mod:`repro.xquery.mqf` (candidates are the filtered sets, competitor
  populations the unfiltered scans, preserving naive semantics);
* **residual conjuncts** — everything else (cross-variable comparisons,
  predicates over ``let`` variables), applied per tuple afterwards.

The planner only claims FLWORs of the common shape (all ``for`` clauses
first, sources independent of one another); the evaluator falls back to
naive sequential semantics otherwise, and a naive mode is also kept for
the ablation benchmark.
"""

from __future__ import annotations

from repro.obs.metrics import METRICS
from repro.obs.plan_stats import operator
from repro.resilience.budget import charge, check_deadline
from repro.xquery import ast
from repro.xquery.errors import XQueryEvaluationError
from repro.xquery.mqf import CandidateSet, mqf_join
from repro.xquery.values import is_node

CROSS_PRODUCT_LIMIT = 10_000_000

_MQF_JOINS = METRICS.counter("planner.mqf.joins")
_MQF_CANDIDATES = METRICS.histogram("planner.mqf.candidates")
_MQF_TUPLES = METRICS.histogram("planner.mqf.tuples")


def free_variables(expr):
    """All variable names referenced by ``expr``, including inside nested
    FLWORs (no scoping analysis — used only as an over-approximation)."""
    names = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.VarRef):
            names.add(node.name)
        if isinstance(node, ast.Quantified):
            names.add(node.var)
        stack.extend(node.children())
    return names


def value_only_usage(expr, name):
    """True if every use of ``$name`` in ``expr`` is as a direct operand
    of a comparison.

    Such an expression's result depends on the variable only through its
    *atomized value*, which makes it safe to memoize by value — the key
    optimisation for the generated grouped-aggregate pattern, whose
    inner FLWOR references the outer core variable solely via
    ``$copy = $outer``. Conservative: any other occurrence (path start,
    function argument, return, mqf) disables the optimisation, as does a
    shadowing rebinding (its uses just look like unsafe ones).
    """
    if isinstance(expr, ast.VarRef):
        return expr.name != name
    if isinstance(expr, ast.Comparison):
        for side in (expr.left, expr.right):
            if isinstance(side, ast.VarRef) and side.name == name:
                continue
            if not value_only_usage(side, name):
                return False
        return True
    return all(value_only_usage(child, name) for child in expr.children())


def flatten_conjuncts(condition):
    """Flatten nested ``And`` nodes into a conjunct list."""
    if condition is None:
        return []
    if isinstance(condition, ast.And):
        conjuncts = []
        for item in condition.items:
            conjuncts.extend(flatten_conjuncts(item))
        return conjuncts
    return [condition]


def is_plannable(flwor):
    """Check the clause shape the planner handles.

    Requirements: at least one ``for`` clause, all ``for`` clauses before
    any ``let``, and **independent** binding sources — a source that
    references an earlier binding of the same FLWOR (``$a in
    $b//author``) needs the naive nested-loop semantics.
    """
    stage = 0  # 0: fors, 1: lets, 2: done
    seen_for = False
    for clause in flwor.clauses[:-1]:
        if isinstance(clause, ast.ForClause):
            if stage > 0:
                return False
            seen_for = True
        elif isinstance(clause, ast.LetClause):
            stage = max(stage, 1)
        elif isinstance(clause, (ast.WhereClause, ast.OrderByClause)):
            stage = 2
        else:
            return False
    if not seen_for:
        return False
    bound = set()
    for var, source in flwor.for_bindings():
        if free_variables(source) & bound:
            return False
        bound.add(var)
    return True


class _MqfGroup:
    """One mqf(...) conjunct scheduled as a structural join."""

    def __init__(self, variables):
        self.variables = variables


class Plan:
    """The decomposed for/where block of one FLWOR."""

    def __init__(self, for_vars):
        self.for_vars = for_vars
        self.single_var_predicates = {var: [] for var in for_vars}
        self.mqf_groups = []
        self.extra_mqf_conjuncts = []
        self.residual_conjuncts = []


def build_plan(flwor, let_vars, outer_vars):
    """Classify the where conjuncts of a plannable FLWOR.

    ``let_vars`` are the FLWOR's own let-bound names (conjuncts touching
    them must run after the lets); ``outer_vars`` the names already bound
    in the enclosing environment (those act as constants).
    """
    for_vars = [var for var, _ in flwor.for_bindings()]
    plan = Plan(for_vars)
    for_var_set = set(for_vars)
    let_var_set = set(let_vars)
    joined = set()

    for conjunct in flatten_conjuncts(flwor.where_condition()):
        referenced = free_variables(conjunct)
        local_for = referenced & for_var_set
        if referenced & let_var_set:
            plan.residual_conjuncts.append(conjunct)
            continue
        if _is_mqf_over(conjunct, for_var_set):
            variables = [arg.name for arg in conjunct.args]
            if joined & set(variables):
                # A variable already in another join group: apply this
                # mqf as a residual predicate on the joined tuples.
                plan.extra_mqf_conjuncts.append(conjunct)
            else:
                plan.mqf_groups.append(_MqfGroup(variables))
                joined |= set(variables)
            continue
        if len(local_for) == 1:
            plan.single_var_predicates[next(iter(local_for))].append(conjunct)
            continue
        plan.residual_conjuncts.append(conjunct)
    return plan


def _is_mqf_over(conjunct, for_var_set):
    return (
        isinstance(conjunct, ast.FunctionCall)
        and conjunct.name == "mqf"
        and len(conjunct.args) >= 1
        and all(isinstance(arg, ast.VarRef) for arg in conjunct.args)
        and all(arg.name in for_var_set for arg in conjunct.args)
    )


def enumerate_tuples(plan, candidates, populations):
    """Produce binding tuples (dict var -> node/item) for the for-block.

    ``candidates``: var -> filtered item list. ``populations``: var ->
    unfiltered item list. Items need not be nodes unless they take part
    in an mqf group.
    """
    streams = []  # each: (vars, list of tuples)
    grouped = set()
    for group in plan.mqf_groups:
        for var in group.variables:
            if not all(is_node(item) for item in populations[var]):
                raise XQueryEvaluationError(
                    f"mqf argument ${var} must range over nodes"
                )
        with operator(
            "mqf-join",
            detail=", ".join(f"${var}" for var in group.variables),
        ) as op:
            tuples = mqf_join(
                [candidates[var] for var in group.variables],
                [populations[var] for var in group.variables],
            )
            op.rows_in = sum(
                len(candidates[var]) for var in group.variables
            )
            op.rows_out = len(tuples)
            op.set(
                "population",
                sum(len(populations[var]) for var in group.variables),
            )
        _MQF_JOINS.inc()
        _MQF_CANDIDATES.observe(
            sum(len(candidates[var]) for var in group.variables)
        )
        _MQF_TUPLES.observe(len(tuples))
        streams.append((group.variables, tuples))
        grouped |= set(group.variables)
    for var in plan.for_vars:
        if var not in grouped:
            streams.append(([var], [(item,) for item in candidates[var]]))

    total = 1
    for _, tuples in streams:
        total *= max(len(tuples), 0)
        if total > CROSS_PRODUCT_LIMIT:
            raise XQueryEvaluationError(
                "query would materialise too large a cross product; "
                "add conditions relating the query's variables"
            )

    combined = [{}]
    for variables, tuples in streams:
        check_deadline()
        extended = []
        for bindings in combined:
            for row in tuples:
                merged = dict(bindings)
                merged.update(zip(variables, row))
                extended.append(merged)
        charge("candidate_tuples", len(extended))
        combined = extended
        if not combined:
            break

    if plan.extra_mqf_conjuncts:
        population_sets = {
            var: CandidateSet(populations[var]) for var in plan.for_vars
        }
        combined = [
            bindings
            for bindings in combined
            if _extra_mqf_holds(plan, bindings, population_sets)
        ]
    return combined


def _extra_mqf_holds(plan, bindings, population_sets):
    from repro.xquery.mqf import meaningfully_related

    for conjunct in plan.extra_mqf_conjuncts:
        names = [arg.name for arg in conjunct.args]
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                if not meaningfully_related(
                    bindings[names[i]],
                    bindings[names[j]],
                    population_sets[names[i]],
                    population_sets[names[j]],
                ):
                    return False
    return True
