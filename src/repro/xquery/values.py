"""The engine's value model: sequences, atomization, comparison.

Every expression evaluates to a Python list (an XQuery *sequence*) of
items; an item is either a tree node (:class:`ElementNode`,
:class:`AttributeNode`, :class:`TextNode`) or an atomic value
(``str``, ``int``, ``float``, ``bool``).

Design notes (documented deviations, matching what NaLIX needs):

* Atomizing a node yields a number when its entire text looks numeric,
  otherwise its string value — untyped-atomic behaviour with numeric
  sniffing, as schema-less XML databases do.
* String equality is case-insensitive and whitespace-trimmed, because the
  natural-language front end cannot ask users for exact capitalisation
  ("Addison-Wesley" must match "addison-wesley").
* Ordering comparisons are numeric when both sides are numeric, else
  lexicographic on the casefolded strings.
"""

from __future__ import annotations

from repro.xmlstore.model import AttributeNode, ElementNode, Node, TextNode
from repro.xquery.errors import XQueryTypeError


def is_node(item):
    return isinstance(item, Node)


def string_value(item):
    """The string value of any item."""
    if isinstance(item, (ElementNode, AttributeNode, TextNode)):
        return item.string_value()
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float) and item.is_integer():
        return str(int(item))
    return str(item)


def _parse_number(text):
    try:
        return float(text)
    except ValueError:
        return None


def atomize(item):
    """Convert an item to its atomic value (number if it looks numeric).

    An element with its own character data atomizes to that *direct*
    text: in the paper's Figure 1, ``<year>2000 <movie>...`` groups
    movies under a year whose value is "2000", and comparisons must see
    that value, not the concatenation with every nested title. Elements
    without direct text (pure containers like ``<book>``) atomize to the
    full descendant text, which is what makes container-level value
    joins ("$book_copy = $book") behave as identity-by-content.
    """
    if isinstance(item, bool) or isinstance(item, (int, float)):
        return item
    if isinstance(item, str):
        return item
    if is_node(item):
        if isinstance(item, ElementNode):
            direct = "".join(
                child.text
                for child in item.children
                if isinstance(child, TextNode)
            ).strip()
            text = direct if direct else string_value(item).strip()
        else:
            text = string_value(item).strip()
        number = _parse_number(text)
        if number is not None:
            return number
        return text
    raise XQueryTypeError(f"cannot atomize {type(item).__name__}")


def atomize_sequence(sequence):
    return [atomize(item) for item in sequence]


def effective_boolean_value(sequence):
    """XQuery effective boolean value of a sequence."""
    if not sequence:
        return False
    first = sequence[0]
    if is_node(first):
        return True
    if len(sequence) > 1:
        raise XQueryTypeError("effective boolean value of a multi-atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return first != 0
    if isinstance(first, str):
        return bool(first)
    return True


def _comparable_pair(left, right):
    """Coerce two atomics into comparable forms.

    Returns a (left, right, numeric) triple. When exactly one side is
    numeric, the other is re-parsed as a number if possible, else both
    become strings.
    """
    left_num = left if isinstance(left, (int, float)) and not isinstance(left, bool) else None
    right_num = right if isinstance(right, (int, float)) and not isinstance(right, bool) else None
    if left_num is None and isinstance(left, str):
        left_num = _parse_number(left.strip())
    if right_num is None and isinstance(right, str):
        right_num = _parse_number(right.strip())
    if left_num is not None and right_num is not None:
        return left_num, right_num, True
    return _normalize_string(left), _normalize_string(right), False


def _normalize_string(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value).strip().casefold()


def compare_atomic(op, left, right):
    """Compare two atomic values under the rules in the module docstring."""
    left, right, _numeric = _comparable_pair(left, right)
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise XQueryTypeError(f"unknown comparison operator {op!r}")


def general_compare(op, left_sequence, right_sequence):
    """Existential comparison: true if any pair of atomized items holds."""
    left_atoms = atomize_sequence(left_sequence)
    right_atoms = atomize_sequence(right_sequence)
    for left in left_atoms:
        for right in right_atoms:
            if compare_atomic(op, left, right):
                return True
    return False


def sort_key(sequence):
    """A total-order key for 'order by': (emptiness, type rank, value)."""
    if not sequence:
        return (0, 0, 0)
    atom = atomize(sequence[0])
    if isinstance(atom, bool):
        return (1, 1, int(atom))
    if isinstance(atom, (int, float)):
        return (1, 2, atom)
    return (1, 3, str(atom).casefold())
