"""Meaningful Query Focus (MQF) — the core of Schema-Free XQuery.

Implements the MLCAS ("meaningful lowest common ancestor structure")
relation of Li, Yu & Jagadish (VLDB 2004), which the paper's Sec. 2
motivates with the "Gone with the Wind" example: ``mqf(director, title)``
must relate a ``title`` to a ``director`` only when the two are *mutually
structurally nearest* — no competing node with the same label sits
structurally closer to either side.

Definition used here (pairwise MLCA):
    Nodes ``a`` (from candidate set *A*) and ``b`` (from set *B*) are
    *meaningfully related* iff there is no ``b' in B`` with
    ``lca(a, b')`` a proper descendant of ``lca(a, b)``, and no
    ``a' in A`` with ``lca(a', b)`` a proper descendant of ``lca(a, b)``.
    A tuple drawn from k sets is meaningful iff every pair in it is.

Key observations exploited by the implementation:

* Every ``lca(a, x)`` lies on ``a``'s root path, so the candidates are
  totally ordered by depth and the deepest one is achieved by one of
  ``a``'s *preorder neighbours* in the sorted candidate set.
* Define ``anchor(a, B)`` = the ancestor-or-self of ``a`` at that maximal
  depth. Then ``(a, b)`` is meaningful **iff**
  ``anchor(a, B) is anchor(b, A)`` — grouping both sets by anchor
  enumerates all meaningful pairs in O((|A|+|B|) log).

Competitor nodes equal to ``a`` or ``b`` themselves are ignored, so sets
over the same label behave sensibly.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.resilience.budget import charge, check_deadline
from repro.xmlstore.model import lowest_common_ancestor


class CandidateSet:
    """A preorder-sorted set of candidate nodes for one mqf argument."""

    def __init__(self, nodes):
        self.nodes = sorted(nodes, key=lambda node: node.node_id)
        self.ids = [node.node_id for node in self.nodes]

    def __len__(self):
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def neighbours(self, node):
        """Yield the nearest preorder predecessor/successor of ``node`` in
        this set, skipping ``node`` itself."""
        index = bisect_left(self.ids, node.node_id)
        for probe in (index - 1, index, index + 1):
            if 0 <= probe < len(self.nodes):
                other = self.nodes[probe]
                if other is not node:
                    yield other


def anchor(node, candidates):
    """The ancestor-or-self of ``node`` giving the deepest LCA with any
    candidate (excluding ``node`` itself); None if the set is empty.

    Correctness rests on the fact that among a preorder-sorted set, the
    node maximizing LCA depth with ``node`` is always one of its two
    preorder neighbours.
    """
    best = None
    for other in candidates.neighbours(node):
        lca = lowest_common_ancestor(node, other)
        if best is None or lca.depth > best.depth:
            best = lca
    return best


def meaningfully_related(a, b, set_a, set_b):
    """True iff ``a`` and ``b`` are mutually structurally nearest.

    ``set_a``/``set_b`` are the full :class:`CandidateSet` populations the
    two nodes were drawn from (competitors are judged against them).
    """
    if a is b:
        return True
    lca = lowest_common_ancestor(a, b)
    anchor_a = anchor(a, set_b)
    if anchor_a is None or anchor_a.depth != lca.depth:
        return False
    anchor_b = anchor(b, set_a)
    return anchor_b is not None and anchor_b.depth == lca.depth


def meaningful_pairs(set_a, set_b, population_a=None, population_b=None):
    """Enumerate all meaningful pairs between two candidate sets.

    ``set_a``/``set_b`` are the candidates to enumerate; ``population_a``/
    ``population_b`` are the full populations competitors are drawn from
    (defaulting to the candidate sets). The distinction matters when a
    value predicate has filtered the candidates: in
    ``where mqf($m, $d) and $d = "Ron Howard"`` the competitors for
    meaningfulness are *all* directors, not just the Ron Howard nodes.

    Returns a list of ``(a, b)`` node pairs. Uses the anchor-grouping
    argument from the module docstring: a pair is meaningful iff both
    sides share the same anchor node, which is then their LCA.
    """
    population_a = population_a if population_a is not None else set_a
    population_b = population_b if population_b is not None else set_b
    groups_a = {}
    for node in set_a:
        anchored = anchor(node, population_b)
        if anchored is not None:
            groups_a.setdefault(anchored.node_id, []).append(node)
    pairs = []
    for node in set_b:
        anchored = anchor(node, population_a)
        if anchored is None:
            continue
        for partner in groups_a.get(anchored.node_id, ()):
            pairs.append((partner, node))
    return pairs


def mqf_join(candidate_lists, population_lists=None):
    """Multiway MQF join: all tuples meaningful under the pairwise rule.

    ``candidate_lists`` is a list of node lists (one per mqf argument);
    ``population_lists`` optionally supplies the full populations used to
    judge meaningfulness (see :func:`meaningful_pairs`). Returns a list
    of tuples, one node per argument, such that every pair inside a tuple
    is meaningfully related.

    The join order is chosen greedily by *exact* intermediate-size
    estimates computed from anchor histograms: two same-labelled
    argument sets anchor each other at the document root and would
    produce a quadratic pair blow-up if joined directly, so the planner
    starts from the most selective relationship and extends one set at a
    time, always through the cheapest available edge.
    """
    sets = [CandidateSet(nodes) for nodes in candidate_lists]
    if population_lists is None:
        populations = sets
    else:
        populations = [
            candidate_set if population is None else CandidateSet(population)
            for candidate_set, population in zip(sets, population_lists)
        ]
    arity = len(sets)
    if arity == 0:
        return []
    if arity == 1:
        return [(node,) for node in sets[0]]

    anchor_cache = {}

    def anchors(i, j):
        """node_id -> anchor node_id, for candidates of i vs population j."""
        if (i, j) not in anchor_cache:
            mapping = {}
            for node in sets[i]:
                anchored = anchor(node, populations[j])
                if anchored is not None:
                    mapping[node.node_id] = anchored.node_id
            anchor_cache[(i, j)] = mapping
        return anchor_cache[(i, j)]

    def estimate(i, j):
        """Exact number of meaningful (i, j) pairs."""
        counts_i = {}
        for anchored in anchors(i, j).values():
            counts_i[anchored] = counts_i.get(anchored, 0) + 1
        counts_j = {}
        for anchored in anchors(j, i).values():
            counts_j[anchored] = counts_j.get(anchored, 0) + 1
        return sum(
            count * counts_j.get(anchored, 0)
            for anchored, count in counts_i.items()
        )

    def pairs(i, j):
        by_anchor = {}
        anchors_j = anchors(j, i)
        for node in sets[j]:
            anchored = anchors_j.get(node.node_id)
            if anchored is not None:
                by_anchor.setdefault(anchored, []).append(node)
        anchors_i = anchors(i, j)
        result = []
        for node in sets[i]:
            anchored = anchors_i.get(node.node_id)
            if anchored is None:
                continue
            partners = by_anchor.get(anchored, ())
            if partners:
                charge("candidate_tuples", len(partners))
                for partner in partners:
                    result.append((node, partner))
        return result

    _, start_i, start_j = min(
        (estimate(i, j), i, j)
        for i in range(arity)
        for j in range(i + 1, arity)
    )
    tuples = [
        {start_i: left, start_j: right} for left, right in pairs(start_i, start_j)
    ]
    joined = {start_i, start_j}
    while len(joined) < arity and tuples:
        check_deadline()
        _, via, new = min(
            (estimate(s, j), s, j)
            for s in joined
            for j in range(arity)
            if j not in joined
        )
        partners = {}
        for left, right in pairs(via, new):
            partners.setdefault(left.node_id, []).append(right)
        others = [position for position in joined if position != via]
        extended = []
        for partial in tuples:
            for node in partners.get(partial[via].node_id, ()):
                if all(
                    meaningfully_related(
                        partial[position], node,
                        populations[position], populations[new],
                    )
                    for position in others
                ):
                    record = dict(partial)
                    record[new] = node
                    extended.append(record)
        charge("candidate_tuples", len(extended))
        tuples = extended
        joined.add(new)
    if len(joined) < arity:
        return []
    return [
        tuple(record[position] for position in range(arity))
        for record in tuples
    ]


def mqf_predicate(bound_nodes, candidate_sets):
    """Check an already-bound tuple (the naive, non-join evaluation path).

    ``bound_nodes`` are the nodes currently bound to the mqf arguments;
    ``candidate_sets`` the full populations those bindings range over.
    """
    count = len(bound_nodes)
    for i in range(count):
        for j in range(i + 1, count):
            if not meaningfully_related(
                bound_nodes[i], bound_nodes[j], candidate_sets[i], candidate_sets[j]
            ):
                return False
    return True
