"""Evaluation of the XQuery AST against a :class:`repro.database.Database`.

Two evaluation paths exist for FLWOR expressions:

* the **planned** path (default) — the conjunctive planner of
  :mod:`repro.xquery.plan` pushes predicates into scans and turns ``mqf``
  calls into structural joins;
* the **naive** path (``Evaluator(db, use_planner=False)``) — direct
  nested-loop semantics, kept both as the semantic reference for tests
  and for the ablation benchmark.

Both paths implement identical semantics; the property-based tests
compare them on random small documents.
"""

from __future__ import annotations

from repro.obs.metrics import METRICS
from repro.obs.plan_stats import operator
from repro.obs.spans import span
from repro.resilience.budget import charge, check_deadline
from repro.xmlstore.model import AttributeNode, ElementNode, TextNode
from repro.xquery import ast
from repro.xquery.errors import XQueryEvaluationError
from repro.xquery.functions import call_builtin
from repro.xquery.mqf import CandidateSet, mqf_predicate
from repro.xquery.parser import parse_xquery
from repro.xquery.plan import build_plan, enumerate_tuples, is_plannable
from repro.xquery.values import (
    atomize,
    effective_boolean_value,
    general_compare,
    is_node,
    sort_key,
)

_FLWOR_PLANNED = METRICS.counter("evaluator.flwor.planned")
_FLWOR_NAIVE = METRICS.counter("evaluator.flwor.naive")
_LET_CACHE_HITS = METRICS.counter("evaluator.let_cache.hits")
_LET_CACHE_MISSES = METRICS.counter("evaluator.let_cache.misses")
_CANDIDATES = METRICS.histogram("planner.candidates_per_variable")
_MISSING = object()


class Environment:
    """Variable bindings plus the candidate populations mqf judges against."""

    def __init__(self, values=None, populations=None):
        self.values = values or {}
        self.populations = populations or {}

    def child(self, new_values, new_populations=None):
        values = dict(self.values)
        values.update(new_values)
        populations = dict(self.populations)
        if new_populations:
            populations.update(new_populations)
        return Environment(values, populations)

    def lookup(self, name):
        if name not in self.values:
            raise XQueryEvaluationError(f"unbound variable ${name}")
        return self.values[name]

    def population(self, name):
        return self.populations.get(name)

    def names(self):
        return set(self.values)


class Evaluator:
    """Evaluates expressions against one database."""

    def __init__(self, database, use_planner=True):
        self.database = database
        self.use_planner = use_planner

    # -- public API ---------------------------------------------------------

    def run(self, query, env=None):
        """Evaluate query text or an AST; returns a sequence (list).

        Runs inside an ``evaluator.run`` span (a no-op without an
        active trace); the ``with`` block guarantees the span is
        finished even when evaluation raises, so traces of failed
        queries stay complete.
        """
        expr = parse_xquery(query) if isinstance(query, str) else query
        with span("evaluator.run", planner=self.use_planner) as current:
            items = self.evaluate(expr, env or Environment())
            current.set("items", len(items))
        return items

    # -- dispatch -------------------------------------------------------------

    def evaluate(self, expr, env):
        if isinstance(expr, ast.Literal):
            return [expr.value]
        if isinstance(expr, ast.VarRef):
            return list(env.lookup(expr.name))
        if isinstance(expr, ast.DocSource):
            return [self._document(expr.name).root]
        if isinstance(expr, ast.PathExpr):
            return self._eval_path(expr, env)
        if isinstance(expr, ast.Sequence):
            result = []
            for item in expr.items:
                result.extend(self.evaluate(item, env))
            return result
        if isinstance(expr, ast.Comparison):
            left = self.evaluate(expr.left, env)
            right = self.evaluate(expr.right, env)
            return [general_compare(expr.op, left, right)]
        if isinstance(expr, ast.And):
            for item in expr.items:
                if not effective_boolean_value(self.evaluate(item, env)):
                    return [False]
            return [True]
        if isinstance(expr, ast.Or):
            for item in expr.items:
                if effective_boolean_value(self.evaluate(item, env)):
                    return [True]
            return [False]
        if isinstance(expr, ast.Not):
            return [not effective_boolean_value(self.evaluate(expr.operand, env))]
        if isinstance(expr, ast.FunctionCall):
            return self._eval_function(expr, env)
        if isinstance(expr, ast.Quantified):
            return self._eval_quantified(expr, env)
        if isinstance(expr, ast.FLWOR):
            return self._eval_flwor(expr, env)
        if isinstance(expr, ast.ElementConstructor):
            return [self._construct_element(expr, env)]
        raise XQueryEvaluationError(f"cannot evaluate {type(expr).__name__}")

    # -- documents and paths ------------------------------------------------

    def _document(self, name):
        try:
            return self.database.document(name)
        except KeyError:
            if len(self.database.documents) == 1:
                return self.database.document()
            raise XQueryEvaluationError(f"unknown document {name!r}")

    def _eval_path(self, expr, env):
        steps = expr.steps
        if isinstance(expr.start, ast.DocSource):
            document = self._document(expr.start.name)
            if steps and steps[0].axis == ast.Step.DESCENDANT:
                nodes = self._scan_document(document, steps[0])
                return self._apply_steps(nodes, steps[1:])
            if steps and steps[0].axis == ast.Step.CHILD:
                tags = steps[0].matches_tags()
                roots = (
                    [document.root]
                    if tags is None or document.root.tag in tags
                    else []
                )
                return self._apply_steps(roots, steps[1:])
            return self._apply_steps([document.root], steps)
        nodes = self.evaluate(expr.start, env)
        return self._apply_steps(nodes, steps)

    def _scan_document(self, document, step):
        """Index-backed ``doc(...)//test`` scan (includes the root)."""
        tags = step.matches_tags()
        if tags is None:
            return list(document.iter_elements())
        single_document = len(self.database.documents) == 1
        nodes = []
        for tag in tags:
            for node in self.database.nodes_with_tag(tag):
                if single_document or node.root() is document.root:
                    nodes.append(node)
        nodes.sort(key=lambda node: node.node_id)
        charge("materialized_nodes", len(nodes))
        return nodes

    def _apply_steps(self, nodes, steps):
        current = nodes
        for step in steps:
            current = self._apply_step(current, step)
        return current

    def _apply_step(self, nodes, step):
        result = []
        seen = set()

        def emit(node):
            if id(node) not in seen:
                seen.add(id(node))
                result.append(node)

        tags = step.matches_tags()
        for node in nodes:
            if not isinstance(node, ElementNode):
                continue
            if step.axis == ast.Step.CHILD:
                for child in node.children:
                    if isinstance(child, ElementNode) and (
                        tags is None or child.tag in tags
                    ):
                        emit(child)
                if tags is not None:
                    for attribute in node.attributes:
                        if attribute.tag in tags:
                            emit(attribute)
            elif step.axis == ast.Step.DESCENDANT:
                for descendant in node.iter_descendants():
                    if isinstance(descendant, ElementNode):
                        if tags is None or descendant.tag in tags:
                            emit(descendant)
                    elif isinstance(descendant, AttributeNode):
                        if tags is not None and descendant.tag in tags:
                            emit(descendant)
            elif step.axis == ast.Step.ATTRIBUTE:
                for attribute in node.attributes:
                    if step.test == "*" or attribute.name in step.test.split("|"):
                        emit(attribute)
            elif step.axis == ast.Step.TEXT:
                for child in node.children:
                    if isinstance(child, TextNode):
                        emit(child)
        result.sort(key=lambda node: node.node_id)
        charge("materialized_nodes", len(result))
        return result

    # -- functions and quantifiers -----------------------------------------

    def _eval_function(self, expr, env):
        if expr.name == "mqf":
            return [self._eval_mqf_predicate(expr, env)]
        arguments = [self.evaluate(arg, env) for arg in expr.args]
        return call_builtin(expr.name, arguments)

    def _eval_mqf_predicate(self, expr, env):
        """mqf(...) outside the planner: judge the currently-bound nodes."""
        bound = []
        populations = []
        for arg in expr.args:
            if not isinstance(arg, ast.VarRef):
                raise XQueryEvaluationError("mqf() arguments must be variables")
            sequence = env.lookup(arg.name)
            if len(sequence) != 1 or not is_node(sequence[0]):
                # Unrelatable binding (empty or non-node): not meaningful.
                return False
            node = sequence[0]
            population = env.population(arg.name)
            if population is None:
                population = CandidateSet([node])
            bound.append(node)
            populations.append(population)
        return mqf_predicate(bound, populations)

    def _eval_quantified(self, expr, env):
        source = self.evaluate(expr.source, env)
        population = CandidateSet([item for item in source if is_node(item)])
        for item in source:
            child = env.child({expr.var: [item]}, {expr.var: population})
            holds = effective_boolean_value(self.evaluate(expr.condition, child))
            if expr.kind == "some" and holds:
                return [True]
            if expr.kind == "every" and not holds:
                return [False]
        return [expr.kind == "every"]

    # -- FLWOR ---------------------------------------------------------------

    def _eval_flwor(self, flwor, env):
        check_deadline()
        if self.use_planner and is_plannable(flwor):
            _FLWOR_PLANNED.inc()
            return self._eval_flwor_planned(flwor, env)
        _FLWOR_NAIVE.inc()
        return self._eval_flwor_naive(flwor, env)

    def _eval_flwor_naive(self, flwor, env):
        with operator("flwor", detail="naive") as op:
            result = self._eval_flwor_naive_inner(flwor, env)
            op.rows_out = len(result)
        return result

    def _eval_flwor_naive_inner(self, flwor, env):
        stream = [env]
        pending_order = None
        for clause in flwor.clauses[:-1]:
            if isinstance(clause, ast.ForClause):
                for var, source in clause.bindings:
                    expanded = []
                    for current in stream:
                        items = self.evaluate(source, current)
                        charge("flwor_iterations", len(items))
                        population = CandidateSet(
                            [item for item in items if is_node(item)]
                        )
                        for item in items:
                            expanded.append(
                                current.child({var: [item]}, {var: population})
                            )
                    stream = expanded
            elif isinstance(clause, ast.LetClause):
                stream = [
                    current.child({clause.var: self.evaluate(clause.expr, current)})
                    for current in stream
                ]
            elif isinstance(clause, ast.WhereClause):
                stream = [
                    current
                    for current in stream
                    if effective_boolean_value(
                        self.evaluate(clause.condition, current)
                    )
                ]
            elif isinstance(clause, ast.OrderByClause):
                pending_order = clause
        if pending_order is not None:
            stream = self._order_stream(stream, pending_order)
        result = []
        return_expr = flwor.return_expr()
        for current in stream:
            result.extend(self.evaluate(return_expr, current))
        return result

    def _eval_flwor_planned(self, flwor, env):
        with operator("flwor", detail="planned") as flwor_op:
            result = self._eval_flwor_planned_inner(flwor, env)
            flwor_op.rows_out = len(result)
        return result

    def _eval_flwor_planned_inner(self, flwor, env):
        let_clauses = [
            clause for clause in flwor.clauses if isinstance(clause, ast.LetClause)
        ]
        let_vars = [clause.var for clause in let_clauses]
        plan = build_plan(flwor, let_vars, env.names())
        let_cache_plans = self._plan_let_caching(let_clauses, plan)

        candidates = {}
        populations = {}
        for var, source in flwor.for_bindings():
            with operator("scan", detail=f"${var}") as op:
                items = self.evaluate(source, env)
                op.rows_in = len(items)
                populations[var] = items
                filtered = items
                for predicate in plan.single_var_predicates[var]:
                    population = CandidateSet(
                        [item for item in items if is_node(item)]
                    )
                    filtered = [
                        item
                        for item in filtered
                        if effective_boolean_value(
                            self.evaluate(
                                predicate,
                                env.child({var: [item]}, {var: population}),
                            )
                        )
                    ]
                candidates[var] = filtered
                op.rows_out = len(filtered)
                if plan.single_var_predicates[var]:
                    op.set(
                        "pushed_predicates",
                        len(plan.single_var_predicates[var]),
                    )
            _CANDIDATES.observe(len(filtered))

        tuples = enumerate_tuples(plan, candidates, populations)
        charge("flwor_iterations", len(tuples))
        population_sets = {
            var: CandidateSet([item for item in populations[var] if is_node(item)])
            for var in plan.for_vars
        }

        # Let and residual-filter work is interleaved per tuple, so their
        # operators accumulate time via start()/stop() across the loop.
        let_ops = []
        for index, clause in enumerate(let_clauses):
            with operator("let", detail=f"${clause.var}") as op:
                pass
            let_ops.append(op)
        with operator("filter", detail="residual predicates") as filter_op:
            pass
        let_hits = [0] * len(let_clauses)
        let_misses = [0] * len(let_clauses)

        let_caches = [{} for _ in let_clauses]
        stream = []
        for bindings in tuples:
            current = env.child(
                {var: [item] for var, item in bindings.items()},
                {var: population_sets[var] for var in bindings},
            )
            for index, clause in enumerate(let_clauses):
                let_op = let_ops[index]
                let_op.start()
                key_vars = let_cache_plans[index]
                if key_vars is not None:
                    key = tuple(
                        atomize(current.lookup(name)[0])
                        if current.lookup(name)
                        else None
                        for name in key_vars
                    )
                    cache = let_caches[index]
                    value = cache.get(key, _MISSING)
                    if value is _MISSING:
                        _LET_CACHE_MISSES.inc()
                        let_misses[index] += 1
                        value = cache[key] = self.evaluate(clause.expr, current)
                    else:
                        _LET_CACHE_HITS.inc()
                        let_hits[index] += 1
                else:
                    let_misses[index] += 1
                    value = self.evaluate(clause.expr, current)
                current = current.child({clause.var: value})
                let_op.stop()
            filter_op.start()
            kept = all(
                effective_boolean_value(self.evaluate(conjunct, current))
                for conjunct in plan.residual_conjuncts
            )
            filter_op.stop()
            if kept:
                stream.append(current)

        for index in range(len(let_clauses)):
            let_op = let_ops[index]
            let_op.rows_in = len(tuples)
            let_op.rows_out = let_misses[index]
            let_op.set("cache_hits", let_hits[index])
            let_op.set(
                "cached", let_cache_plans[index] is not None
            )
        filter_op.rows_in = len(tuples)
        filter_op.rows_out = len(stream)
        filter_op.set("predicates", len(plan.residual_conjuncts))

        for clause in flwor.clauses:
            if isinstance(clause, ast.OrderByClause):
                with operator("order-by") as op:
                    op.rows_in = op.rows_out = len(stream)
                    stream = self._order_stream(stream, clause)
        result = []
        return_expr = flwor.return_expr()
        with operator("return") as op:
            op.rows_in = len(stream)
            for current in stream:
                result.extend(self.evaluate(return_expr, current))
            op.rows_out = len(result)
        return result

    def _plan_let_caching(self, let_clauses, plan):
        """Per-let memoization plans.

        A let whose expression touches the FLWOR's tuple variables only
        through comparisons (``$copy = $outer``) can be cached by the
        *values* of those variables — turning the generated grouped
        aggregates from one inner evaluation per binding into one per
        distinct group value. Returns, per let clause, the sorted key
        variable list, or None when caching is unsafe.
        """
        from repro.xquery.plan import free_variables, value_only_usage

        plans = []
        earlier_lets = set()
        for clause in let_clauses:
            free = free_variables(clause.expr)
            if free & earlier_lets:
                plans.append(None)
            else:
                key_vars = sorted(set(plan.for_vars) & free)
                if all(
                    value_only_usage(clause.expr, name) for name in key_vars
                ):
                    plans.append(key_vars)
                else:
                    plans.append(None)
            earlier_lets.add(clause.var)
        return plans

    def _order_stream(self, stream, clause):
        def key(current):
            return tuple(
                _directional_key(sort_key(self.evaluate(expr, current)), descending)
                for expr, descending in clause.keys
            )

        return sorted(stream, key=key)

    # -- construction ----------------------------------------------------------

    def _construct_element(self, expr, env):
        element = ElementNode(expr.tag)
        for item_expr in expr.content_items:
            for item in self.evaluate(item_expr, env):
                if isinstance(item, ElementNode):
                    element.append(_copy_subtree(item))
                elif isinstance(item, AttributeNode):
                    element.set_attribute(item.name, item.value)
                elif isinstance(item, TextNode):
                    element.append(TextNode(item.text))
                else:
                    from repro.xquery.values import string_value

                    element.append(TextNode(string_value(item)))
        return element


class _ReverseKey:
    """Inverts sort order for 'descending' keys of mixed types."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key


def _directional_key(key, descending):
    return _ReverseKey(key) if descending else key


def _copy_subtree(element):
    copy = ElementNode(element.tag)
    for attribute in element.attributes:
        copy.set_attribute(attribute.name, attribute.value)
    for child in element.children:
        if isinstance(child, ElementNode):
            copy.append(_copy_subtree(child))
        else:
            copy.append(TextNode(child.text))
    return copy


def evaluate_query(database, query, use_planner=True):
    """Convenience wrapper: evaluate ``query`` (text or AST) on ``database``."""
    return Evaluator(database, use_planner=use_planner).run(query)
