"""The W3C XQuery Use Cases "bib.xml" sample document.

This is the document the XMP use-case queries were written against; the
paper adapted those queries to a DBLP sub-collection, but the original
bib sample remains useful for examples and tests (it has prices, which
DBLP lacks).
"""

from __future__ import annotations

from repro.xmlstore.model import Document, ElementNode

_BOOKS = [
    {
        "year": "1994",
        "title": "TCP/IP Illustrated",
        "authors": [("Stevens", "W.")],
        "publisher": "Addison-Wesley",
        "price": "65.95",
    },
    {
        "year": "1992",
        "title": "Advanced Programming in the Unix environment",
        "authors": [("Stevens", "W.")],
        "publisher": "Addison-Wesley",
        "price": "65.95",
    },
    {
        "year": "2000",
        "title": "Data on the Web",
        "authors": [("Abiteboul", "Serge"), ("Buneman", "Peter"),
                    ("Suciu", "Dan")],
        "publisher": "Morgan Kaufmann Publishers",
        "price": "39.95",
    },
    {
        "year": "1999",
        "title": "The Economics of Technology and Content for Digital TV",
        "editors": [("Gerbarg", "Darcy", "CITI")],
        "publisher": "Kluwer Academic Publishers",
        "price": "129.95",
    },
]


def bib_document(name="bib.xml"):
    """Build the bib.xml sample as a :class:`Document`."""
    root = ElementNode("bib")
    for entry in _BOOKS:
        book = root.append_element("book", attributes={"year": entry["year"]})
        book.append_element("title", entry["title"])
        for last, first in entry.get("authors", []):
            author = book.append_element("author")
            author.append_element("last", last)
            author.append_element("first", first)
        for last, first, affiliation in entry.get("editors", []):
            editor = book.append_element("editor")
            editor.append_element("last", last)
            editor.append_element("first", first)
            editor.append_element("affiliation", affiliation)
        book.append_element("publisher", entry["publisher"])
        book.append_element("price", entry["price"])
    return Document(root, name=name)
