"""Datasets used by examples, tests and the evaluation harness.

* :func:`movies_document` — the paper's Figure 1 movie database;
* :func:`bib_document` — the W3C XQuery Use Cases "bib.xml" sample;
* :func:`generate_dblp` — a deterministic DBLP-like sub-collection with
  the same shape as the paper's experimental data set (all books, plus
  twice as many articles).
"""

from repro.data.bib import bib_document
from repro.data.dblp import DblpConfig, generate_dblp
from repro.data.movies import movies_document

__all__ = ["DblpConfig", "bib_document", "generate_dblp", "movies_document"]
