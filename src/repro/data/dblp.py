"""Deterministic DBLP-like sub-collection generator.

The paper's experimental data set was "a sub-collection of DBLP, which
included all the elements on books in DBLP and twice as many elements on
articles" (1.44 MB, 73 142 nodes), with ``year`` standing in for the
XMP use case's ``price``. That exact cut is not recoverable, so this
module generates a collection with the same shape and the same tag
vocabulary, sized by configuration (the default is laptop-test sized;
``DblpConfig.paper_scale()`` approximates the original node count).

Every run with the same config is bit-for-bit identical (seeded PRNG),
and a handful of fixed anchor entries guarantee that each XMP task has a
non-empty answer (Addison-Wesley books after 1991, an author "Suciu",
a book title containing "XML", ...).
"""

from __future__ import annotations

import random

from repro.data.names import (
    FIRST_NAMES,
    JOURNALS,
    LAST_NAMES,
    PUBLISHERS,
    TITLE_ADJECTIVES,
    TITLE_TOPICS,
)
from repro.xmlstore.model import Document, ElementNode


class DblpConfig:
    """Size and seed of the generated collection."""

    def __init__(self, books=120, articles=None, seed=7):
        self.books = books
        self.articles = articles if articles is not None else 2 * books
        self.seed = seed

    @classmethod
    def paper_scale(cls):
        """Approximates the paper's 73k-node collection."""
        return cls(books=2400, articles=4800, seed=7)

    def __repr__(self):
        return f"DblpConfig(books={self.books}, articles={self.articles}, seed={self.seed})"


# Anchor entries that the XMP tasks rely on (always present).
_ANCHOR_BOOKS = [
    {
        "title": "Data on the Web",
        "authors": ["Serge Abiteboul", "Peter Buneman", "Dan Suciu"],
        "publisher": "Morgan Kaufmann",
        "year": 2000,
    },
    {
        "title": "TCP/IP Illustrated",
        "authors": ["Walter Stevens"],
        "publisher": "Addison-Wesley",
        "year": 1994,
    },
    {
        "title": "Advanced Programming in the Unix Environment",
        "authors": ["Walter Stevens"],
        "publisher": "Addison-Wesley",
        "year": 1992,
    },
    {
        "title": "Principles of XML Query Processing",
        "authors": ["Yunyao Li", "Huahai Yang"],
        "publisher": "Addison-Wesley",
        "year": 1998,
    },
    {
        "title": "Foundations of Databases",
        "authors": ["Serge Abiteboul", "Richard Hull", "Victor Vianu"],
        "publisher": "Addison-Wesley",
        "year": 1995,
    },
]


def _person_name(rng):
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def _title(rng):
    return f"{rng.choice(TITLE_ADJECTIVES)} {rng.choice(TITLE_TOPICS)}"


def _append_book(root, title, authors, publisher, year):
    book = root.append_element("book")
    for author in authors:
        book.append_element("author", author)
    book.append_element("title", title)
    book.append_element("publisher", publisher)
    book.append_element("year", year)
    return book


def _append_article(root, title, authors, journal, year, pages):
    article = root.append_element("article")
    for author in authors:
        article.append_element("author", author)
    article.append_element("title", title)
    article.append_element("journal", journal)
    article.append_element("year", year)
    article.append_element("pages", pages)
    return article


def generate_dblp(config=None, name="dblp.xml"):
    """Generate the collection; returns an indexed :class:`Document`."""
    config = config or DblpConfig()
    rng = random.Random(config.seed)
    root = ElementNode("dblp")

    for anchor in _ANCHOR_BOOKS[: max(0, config.books)]:
        _append_book(
            root,
            anchor["title"],
            anchor["authors"],
            anchor["publisher"],
            anchor["year"],
        )
    for index in range(max(0, config.books - len(_ANCHOR_BOOKS))):
        author_count = rng.choice((1, 1, 1, 2, 2, 3))
        title = _title(rng)
        if index % 17 == 0:
            title += " with XML"
        _append_book(
            root,
            title,
            [_person_name(rng) for _ in range(author_count)],
            rng.choice(PUBLISHERS),
            rng.randint(1985, 2005),
        )
    for index in range(config.articles):
        author_count = rng.choice((1, 2, 2, 3))
        start = rng.randint(1, 900)
        _append_article(
            root,
            _title(rng),
            [_person_name(rng) for _ in range(author_count)],
            rng.choice(JOURNALS),
            rng.randint(1985, 2005),
            f"{start}-{start + rng.randint(8, 40)}",
        )
    return Document(root, name=name)
