"""Name and word pools for the synthetic DBLP generator."""

FIRST_NAMES = [
    "Alan", "Barbara", "Carlos", "Diane", "Edward", "Fiona", "George",
    "Helen", "Ivan", "Julia", "Kenneth", "Laura", "Michael", "Nina",
    "Oscar", "Patricia", "Quentin", "Rachel", "Samuel", "Teresa",
    "Ulrich", "Victoria", "Walter", "Xavier", "Yvonne", "Zachary",
    "Serge", "Peter", "Dan", "Jennifer", "Hector", "Yunyao", "Huahai",
]

LAST_NAMES = [
    "Adams", "Brown", "Chen", "Davis", "Evans", "Fischer", "Garcia",
    "Hansen", "Ito", "Johnson", "Kim", "Larsen", "Miller", "Nguyen",
    "Olsen", "Peterson", "Quinn", "Rossi", "Schmidt", "Tanaka",
    "Ueda", "Vogel", "Wang", "Xu", "Yamamoto", "Zhang", "Abiteboul",
    "Buneman", "Suciu", "Widom", "Ullman", "Jagadish", "Stonebraker",
]

TITLE_ADJECTIVES = [
    "Advanced", "Practical", "Modern", "Foundations of", "Principles of",
    "Efficient", "Scalable", "Distributed", "Declarative", "Adaptive",
    "Incremental", "Probabilistic", "Approximate", "Parallel", "Secure",
]

TITLE_TOPICS = [
    "Database Systems", "Query Processing", "XML Retrieval",
    "Information Integration", "Data Mining", "Transaction Management",
    "Stream Processing", "Schema Matching", "Index Structures",
    "Query Optimization", "Data Warehousing", "Semistructured Data",
    "Natural Language Interfaces", "Keyword Search", "Web Services",
    "Data Provenance", "Access Control", "Sensor Networks",
]

PUBLISHERS = [
    "Addison-Wesley",
    "Morgan Kaufmann",
    "Springer",
    "Prentice Hall",
    "MIT Press",
    "Cambridge University Press",
    "O'Reilly",
    "Kluwer Academic Publishers",
]

JOURNALS = [
    "ACM Transactions on Database Systems",
    "The VLDB Journal",
    "IEEE Transactions on Knowledge and Data Engineering",
    "Information Systems",
    "SIGMOD Record",
    "Journal of the ACM",
    "Data and Knowledge Engineering",
]
