"""The movie database of the paper's Figure 1.

Node layout matches the figure: movies grouped under ``year`` elements,
each movie carrying ``title`` and ``director`` children — deliberately
*not* the layout a schema designer would pick, to show that Schema-Free
XQuery's ``mqf`` does not care.
"""

from __future__ import annotations

from repro.xmlstore.model import Document, ElementNode, TextNode

_FIGURE_1 = [
    ("2000", [
        ("How the Grinch Stole Christmas", "Ron Howard"),
        ("Traffic", "Steven Soderbergh"),
    ]),
    ("2001", [
        ("A Beautiful Mind", "Ron Howard"),
        ("Tribute", "Ron Howard"),
        ("The Lord of the Rings", "Peter Jackson"),
    ]),
]


def movies_document(name="movie.xml", entries=None):
    """Build the Figure 1 document (or one from custom ``entries``).

    ``entries``: list of ``(year, [(title, director), ...])`` pairs.
    """
    root = ElementNode("movies")
    for year_text, movies in entries if entries is not None else _FIGURE_1:
        year = root.append_element("year")
        year.append(TextNode(str(year_text)))
        for title, director in movies:
            movie = year.append_element("movie")
            movie.append_element("title", title)
            movie.append_element("director", director)
    return Document(root, name=name)
