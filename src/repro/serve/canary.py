"""The serving correctness canary: golden queries on a timer.

A :class:`CanaryRunner` rides inside ``repro serve`` and periodically
re-executes the nine XMP study tasks (their canonical phrasings, see
:func:`repro.evaluation.tasks.reference_sentences`) **in-process**
against the served pipeline, comparing each answer's canonical digest
(:mod:`repro.obs.answers`) against a golden fixture.  Latency told us
the service was fast; the canary tells us it is still *right* — a bad
deploy, a corrupted index, or a translator regression flips
``repro_canary_pass`` to 0 within one sweep even when every probe
still returns HTTP 200.

Isolation is structural, not configured: the canary calls
``NaLIX.ask()`` directly, so it never passes through admission (no
tenant rate-limit tokens burned), never reaches
``SLOEngine.record_request`` (no error-budget burn), and never lands
in the serving latency windows or the access log.  Production
surfaces cannot be moved by synthetic traffic.  The reserved
``_canary`` tenant is published via :func:`fault_scope` only so chaos
experiments can target (or spare) the canary with
``--inject-fault 'STAGE:tenant=_canary'``.

Golden digests come from a committed fixture
(:mod:`repro.evaluation.goldens`) when the dataset matches one; on an
unknown dataset the first sweep self-baselines, which still catches
*drift over the process lifetime* (the golden source is visible in
``/statusz`` either way).  Drift — a digest mismatch or any non-``ok``
status — is edge-triggered like the SLO fast-burn alert: the
``on_drift`` hook fires once on the pass→fail transition (the server
wires it to a flight-recorder dump), re-arms on recovery, and the
failing results are parked in the flight recorder so the dump carries
the evidence.

Exports: ``repro_canary_pass`` (1/0), ``repro_canary_drift`` (number
of drifting tasks), ``repro_canary_sweeps_total``, and per-task
``repro_canary_task_ok`` / ``repro_canary_task_seconds`` gauges.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import METRICS
from repro.obs.tracecontext import new_trace_id
from repro.resilience.faults import fault_scope
from repro.analysis.racecheck import named_lock

#: The reserved tenant canary probes run under (never a real client's).
CANARY_TENANT = "_canary"

#: Default seconds between sweeps.
DEFAULT_CANARY_INTERVAL = 30.0

_PASS = METRICS.gauge("canary.pass")
_DRIFT = METRICS.gauge("canary.drift")
_SWEEPS = METRICS.counter("canary.sweeps")


def _default_tasks():
    # Lazy: repro.evaluation.bench imports repro.serve, so a module-top
    # import here would be circular.
    from repro.evaluation.tasks import reference_sentences

    return reference_sentences()


class CanaryRunner:
    """Periodic in-process golden-query sweeps over one pipeline.

    ``goldens`` is an optional ``{task_id: digest}`` dict of committed
    fixtures; tasks without one self-baseline on their first sweep.
    ``on_drift(failing_task_ids)`` fires once per pass→fail transition.
    ``recorder`` (a :class:`~repro.obs.recorder.FlightRecorder`)
    receives the failing traces so the auto-dump holds evidence.
    """

    def __init__(self, nalix, interval=DEFAULT_CANARY_INTERVAL, tasks=None,
                 goldens=None, tenant=CANARY_TENANT, timeout=10.0,
                 on_drift=None, audit=None, recorder=None,
                 clock=time.perf_counter):
        self.nalix = nalix
        self.interval = interval
        self.tasks = list(tasks) if tasks is not None else _default_tasks()
        self.goldens = dict(goldens or {})
        self._committed = frozenset(self.goldens)
        self.tenant = tenant
        self.timeout = timeout
        self.on_drift = on_drift
        self.audit = audit
        self.recorder = recorder
        self._clock = clock
        self._lock = named_lock("serve.canary")
        self._stop = threading.Event()
        self._thread = None
        self._alerting = False
        self._sweeps = 0
        self._last_sweep_seconds = None
        # task_id -> latest probe outcome (see _probe).
        self._state = {}

    # -- one sweep -----------------------------------------------------------

    def run_once(self):
        """Execute every canary task once; returns drifting task ids.

        Also the unit-test entry point: two calls model "within two
        canary periods" without a live timer.
        """
        sweep_started = self._clock()
        failing = []
        evidence = []
        for task_id, sentence in self.tasks:
            outcome = self._probe(task_id, sentence)
            if not outcome["ok"]:
                failing.append(task_id)
                evidence.append(outcome)
        with self._lock:
            self._sweeps += 1
            self._last_sweep_seconds = self._clock() - sweep_started
            was_alerting = self._alerting
            self._alerting = bool(failing)
        _SWEEPS.inc()
        _PASS.set(0.0 if failing else 1.0)
        _DRIFT.set(float(len(failing)))
        if failing and not was_alerting:
            self._fire_drift(failing, evidence)
        elif not failing and was_alerting:
            self._record_event("canary-recovered")
        return failing

    def _probe(self, task_id, sentence):
        """Run one golden sentence and compare its digest."""
        started = self._clock()
        with fault_scope(self.tenant):
            result = self.nalix.ask(sentence, timeout=self.timeout)
        seconds = self._clock() - started
        digest = getattr(result, "answer_digest", None)
        with self._lock:
            golden = self.goldens.get(task_id)
            if golden is None and digest is not None and result.status == "ok":
                # Self-baseline: the first healthy answer becomes golden.
                self.goldens[task_id] = digest
                golden = digest
            source = (
                "committed" if task_id in self._committed
                else "computed" if golden is not None
                else None
            )
        ok = (result.status == "ok" and digest is not None
              and golden is not None and digest == golden)
        outcome = {
            "task": task_id,
            "sentence": sentence,
            "ok": ok,
            "status": result.status,
            "error_class": result.error_class,
            "answer_digest": digest,
            "golden_digest": golden,
            "golden_source": source,
            "seconds": seconds,
            "result": result,
        }
        with self._lock:
            self._state[task_id] = outcome
        return outcome

    # -- the alert edge --------------------------------------------------------

    def _fire_drift(self, failing, evidence):
        if self.recorder is not None:
            for outcome in evidence:
                result = outcome["result"]
                self.recorder.record(
                    new_trace_id(), trace=result.trace, reason="canary-drift",
                    tenant=self.tenant, endpoint="canary",
                    sentence=outcome["sentence"], status=outcome["status"],
                    error_class=outcome["error_class"],
                    answer_digest=outcome["answer_digest"],
                    seconds=outcome["seconds"],
                )
        self._record_event(
            "canary-drift", tasks=list(failing),
            details=[
                {
                    "task": outcome["task"],
                    "status": outcome["status"],
                    "answer_digest": outcome["answer_digest"],
                    "golden_digest": outcome["golden_digest"],
                }
                for outcome in evidence
            ],
        )
        if self.on_drift is not None:
            try:
                self.on_drift(list(failing))
            except Exception:
                METRICS.inc("canary.alert_errors")

    def _record_event(self, event, **fields):
        if self.audit is not None:
            self.audit.record_event(event, tenant=self.tenant, **fields)

    # -- lifecycle -------------------------------------------------------------

    def start(self):
        """Start the sweep thread (first sweep runs immediately)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-canary", daemon=True
        )
        self._thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                self.run_once()
            except Exception:
                # A canary crash must never take down serving.
                METRICS.inc("canary.sweep_errors")
            if self._stop.wait(self.interval):
                return

    def stop(self):
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    # -- the ops surface -------------------------------------------------------

    def snapshot(self):
        """The ``/statusz`` fragment (also the ``repro top`` row)."""
        with self._lock:
            tasks = {
                task_id: {
                    key: value
                    for key, value in outcome.items()
                    if key not in ("result", "sentence")
                }
                for task_id, outcome in sorted(self._state.items())
            }
            failing = sorted(
                task_id for task_id, outcome in self._state.items()
                if not outcome["ok"]
            )
            return {
                "tenant": self.tenant,
                "interval_seconds": self.interval,
                "task_count": len(self.tasks),
                "sweeps": self._sweeps,
                "pass": bool(self._sweeps) and not failing,
                "alerting": self._alerting,
                "drifting": failing,
                "last_sweep_seconds": self._last_sweep_seconds,
                "tasks": tasks,
            }

    def prometheus_lines(self):
        """Canary exposition: overall + per-task labeled gauges."""
        with self._lock:
            state = sorted(self._state.items())
        lines = [
            "# HELP repro_canary_task_ok 1 when the task's latest canary "
            "answer matched its golden digest.",
            "# TYPE repro_canary_task_ok gauge",
        ]
        for task_id, outcome in state:
            lines.append(
                f'repro_canary_task_ok{{task="{task_id}"}} '
                f"{1 if outcome['ok'] else 0}"
            )
        lines += [
            "# HELP repro_canary_task_seconds Latest canary probe latency "
            "per task.",
            "# TYPE repro_canary_task_seconds gauge",
        ]
        for task_id, outcome in state:
            lines.append(
                f'repro_canary_task_seconds{{task="{task_id}"}} '
                f"{outcome['seconds']:.6f}"
            )
        return lines

    def __repr__(self):
        with self._lock:
            return (
                f"CanaryRunner({len(self.tasks)} tasks, "
                f"every {self.interval}s, sweeps={self._sweeps})"
            )
