"""``repro serve``: a concurrent query service with a live ops surface.

The serving layer wraps :class:`repro.core.interface.NaLIX` in a
long-lived, multi-tenant HTTP service (stdlib ``ThreadingHTTPServer``,
no dependencies) and turns the observability substrate — traces,
metrics, latency windows, audit log, provenance — into *live*
endpoints instead of post-hoc dumps:

* :class:`ReproServer` / :class:`ServeConfig` — the service itself
  (``/query``, ``/metrics``, ``/healthz``, ``/readyz``, ``/statusz``),
  per-tenant admission control built on
  :class:`repro.resilience.QueryBudget`, structured access logs into a
  rotating :class:`repro.obs.audit.AuditLog`, and graceful drain on
  SIGTERM.
* :class:`AdmissionController` — capacity + per-tenant rate limiting
  (token buckets, inflight caps).
* Self-healing (see DESIGN.md §9): :class:`BrownoutController` (budget
  tightening + pre-degradation under pressure or an open
  :class:`repro.resilience.breaker.CircuitBreaker`),
  :class:`Watchdog` / :class:`InflightRegistry` (stuck-query detection,
  stack dumps, forced budget expiry), and :class:`ServeClient` (the
  shared retrying/hedging HTTP client).
* :func:`run_loadgen` / :class:`LoadgenConfig` — the load-generator
  CLI's engine: N concurrent clients, a task mix, client- and
  server-side percentiles, availability accounting, and a ``/metrics``
  scrape cross-check.
* Correctness observability (see DESIGN.md §12):
  :class:`CanaryRunner` — periodic in-process golden-query sweeps
  comparing answer digests against committed fixtures, structurally
  isolated from production SLOs and rate limits — and
  :func:`run_replay` / :class:`ReplayConfig` /
  :class:`ReplayReport` — differential re-execution of a recorded
  audit/access log against the current build or a live server.
"""

from repro.serve.admission import (                         # noqa: F401
    AdmissionController,
    AdmissionError,
    TokenBucket,
)
from repro.serve.brownout import BrownoutController         # noqa: F401
from repro.serve.canary import (                            # noqa: F401
    CANARY_TENANT,
    CanaryRunner,
)
from repro.serve.client import (                            # noqa: F401
    QueryOutcome,
    ServeClient,
)
from repro.serve.replay import (                            # noqa: F401
    ReplayConfig,
    ReplayReport,
    ReplayRow,
    run_replay,
)
from repro.serve.loadgen import (                           # noqa: F401
    LoadgenConfig,
    LoadgenReport,
    default_task_mix,
    run_loadgen,
)
from repro.serve.server import ReproServer, ServeConfig     # noqa: F401
from repro.serve.top import TopConfig, run_top              # noqa: F401
from repro.serve.watchdog import (                          # noqa: F401
    InflightRegistry,
    Watchdog,
)

__all__ = [
    "CANARY_TENANT",
    "AdmissionController",
    "AdmissionError",
    "BrownoutController",
    "CanaryRunner",
    "InflightRegistry",
    "LoadgenConfig",
    "LoadgenReport",
    "QueryOutcome",
    "ReplayConfig",
    "ReplayReport",
    "ReplayRow",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "TokenBucket",
    "TopConfig",
    "Watchdog",
    "default_task_mix",
    "run_top",
    "run_loadgen",
    "run_replay",
]
