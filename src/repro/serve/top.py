"""``repro top``: a dependency-free live dashboard for ``repro serve``.

One screen, refreshed in place, answering the on-call questions in
order: *is it up* (QPS, availability, p50/p99), *is it burning budget*
(per-SLO fast/slow burn rates against the alert threshold), *is it
defending itself* (breaker states, brownout level, watchdog counts,
flight-recorder fill, the correctness canary's verdict), and *what is
it chewing on right now* (the
in-flight request table with ages and stuck/expired stamps).

Everything renders with raw ANSI escapes — no curses, no third-party
TUI — so it works over ssh, inside CI (``--once`` prints a single
plain frame and exits), and in tests (``render_frame`` is a pure
function from two poll snapshots to a string).

QPS and availability are computed client-side from *counter deltas*
between consecutive ``/metrics`` scrapes (``repro_serve_responses_*``),
so they reflect the poll interval, not the server's whole uptime.
Burn rates, breaker states, and the in-flight table come straight from
``/statusz``.  A server that predates the SLO engine simply renders
``-`` in those slots — ``repro top`` never crashes on an old server.
"""

from __future__ import annotations

import select
import sys
import time

from repro.obs.export import parse_prometheus_text
from repro.serve.client import ServeClient, TransportError

#: ANSI fragments (empty when color is off).
_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_CYAN = "\x1b[36m"
_CLEAR = "\x1b[2J\x1b[H"

#: Response-class counters whose deltas make QPS and availability.
_RESPONSE_METRICS = ("repro_serve_responses_2xx_total",
                     "repro_serve_responses_4xx_total",
                     "repro_serve_responses_5xx_total")


class TopConfig:
    """Everything ``repro top`` can tune."""

    def __init__(self, url, interval=2.0, once=False, color=None,
                 max_inflight_rows=10):
        self.url = url
        self.interval = interval
        self.once = once
        # None = auto (on for a tty, off otherwise).
        self.color = color
        self.max_inflight_rows = max_inflight_rows


class _Poll:
    """One scrape of the server: statusz + parsed metrics + a clock."""

    __slots__ = ("status", "metrics", "at", "error")

    def __init__(self, status=None, metrics=None, at=0.0, error=None):
        self.status = status
        self.metrics = metrics or {}
        self.at = at
        self.error = error


def poll_server(client, clock=time.monotonic):
    """Fetch ``/statusz`` + ``/metrics``; errors land in ``_Poll.error``."""
    at = clock()
    try:
        status = client.get_json("/statusz")
        metrics = parse_prometheus_text(client.get_json("/metrics"))
    except (TransportError, ValueError) as error:
        return _Poll(at=at, error=str(error))
    return _Poll(status=status, metrics=metrics, at=at)


def _metric_value(metrics, name):
    entry = metrics.get(name)
    if not entry or not entry.get("samples"):
        return None
    return entry["samples"][0][1]


def _response_totals(poll):
    values = [_metric_value(poll.metrics, name) for name in _RESPONSE_METRICS]
    if all(value is None for value in values):
        return None
    return [value or 0.0 for value in values]


def _rates(previous, current):
    """(qps, availability) from response-counter deltas, or (None, None)."""
    if previous is None or previous.error or current.error:
        return None, None
    before = _response_totals(previous)
    after = _response_totals(current)
    elapsed = current.at - previous.at
    if before is None or after is None or elapsed <= 0:
        return None, None
    deltas = [max(0.0, b - a) for a, b in zip(before, after)]
    total = sum(deltas)
    qps = total / elapsed
    availability = (total - deltas[2]) / total if total else None
    return qps, availability


def _fmt(value, spec="{:.2f}", missing="-"):
    return missing if value is None else spec.format(value)


def _paint(text, color, colors_on):
    return f"{color}{text}{_RESET}" if colors_on else text


def render_frame(current, previous=None, color=False, max_inflight_rows=10,
                 url=""):
    """The full dashboard frame for one poll (pure; unit-testable)."""
    lines = []
    title = f"repro top — {url}"
    lines.append(_paint(title, _BOLD, color))
    if current.error:
        lines.append(_paint(f"  server unreachable: {current.error}",
                            _RED, color))
        return "\n".join(lines) + "\n"
    status = current.status or {}

    qps, availability = _rates(previous, current)
    uptime = status.get("uptime_seconds")
    windows = status.get("windows") or {}
    endpoint = windows.get("endpoint:/query") or {}
    avail_text = _fmt(availability, "{:.2%}")
    if availability is not None:
        avail_color = _GREEN if availability >= 0.99 else (
            _YELLOW if availability >= 0.95 else _RED)
        avail_text = _paint(avail_text, avail_color, color)
    lines.append(
        f"  up {_fmt(uptime, '{:.0f}s')}   qps {_fmt(qps)}   "
        f"avail {avail_text}   "
        f"p50 {_fmt(endpoint.get('p50'), '{:.3f}s')}   "
        f"p99 {_fmt(endpoint.get('p99'), '{:.3f}s')}"
    )

    lines.append(_paint("SLOs", _BOLD, color))
    slos = status.get("slo")
    if not slos:
        lines.append("  (no SLO engine on this server)")
    for entry in slos or []:
        fast = entry["windows"]["fast"]["burn_rate"]
        slow = entry["windows"]["slow"]["burn_rate"]
        threshold = entry.get("fast_burn_threshold")
        alerting = entry.get("alerting")
        budget = entry.get("error_budget_remaining")
        flag = "ALERT" if alerting else "ok"
        flag = _paint(flag, _RED if alerting else _GREEN, color)
        lines.append(
            f"  {entry['name']:<28} burn fast {fast:6.2f} / "
            f"slow {slow:6.2f} (alert at {_fmt(threshold, '{:.1f}')})  "
            f"budget {_fmt(budget, '{:.1%}')}  {flag}"
        )

    lines.append(_paint("Defenses", _BOLD, color))
    breakers = status.get("breakers") or {}
    parts = []
    for name, snap in sorted(breakers.items()):
        state = snap.get("state", "?")
        state_color = {"closed": _GREEN, "open": _RED}.get(state, _YELLOW)
        parts.append(f"{name}={_paint(state, state_color, color)}")
    brownout = status.get("brownout") or {}
    watchdog = status.get("watchdog") or {}
    recorder = status.get("recorder") or {}
    sampler = status.get("sampler") or {}
    lines.append(
        "  breakers " + (" ".join(parts) if parts else "-")
        + f"   brownout L{brownout.get('level', '-')}"
        + f"   stuck {watchdog.get('stuck_total', '-')}"
        + f"/expired {watchdog.get('expired_total', '-')}"
        + f"/recovered {watchdog.get('recovered_total', '-')}"
    )
    if recorder:
        fill = (recorder["bytes"] / recorder["max_bytes"]
                if recorder.get("max_bytes") else 0.0)
        lines.append(
            f"  recorder {recorder.get('count', 0)} traces "
            f"{recorder.get('bytes', 0) / 1024:.0f} KiB ({fill:.0%} full)  "
            f"retained {recorder.get('retained_total', 0)}  "
            f"evicted {recorder.get('evicted_total', 0)}  "
            f"dumps {recorder.get('dumps', 0)}"
        )
    if sampler:
        retention = sampler.get("retention") or {}
        lines.append(
            f"  sampler errors {_fmt(retention.get('error'), '{:.0%}')}  "
            f"slow {_fmt(retention.get('slow'), '{:.0%}')}  "
            f"healthy {_fmt(retention.get('healthy'), '{:.1%}')}  "
            f"tail>{_fmt(sampler.get('tail_threshold_seconds'), '{:.3f}s')}"
        )
    canary = status.get("canary")
    if canary:
        if not canary.get("sweeps"):
            state = "warming"
            state_color = _YELLOW
        elif canary.get("pass"):
            state = "PASS"
            state_color = _GREEN
        else:
            state = "DRIFT " + ",".join(canary.get("drifting") or [])
            state_color = _RED
        lines.append(
            f"  canary   {_paint(state, state_color, color)}  "
            f"{canary.get('task_count', 0)} tasks  "
            f"sweeps {canary.get('sweeps', 0)}  "
            f"last {_fmt(canary.get('last_sweep_seconds'), '{:.3f}s')}  "
            f"every {_fmt(canary.get('interval_seconds'), '{:.0f}s')}"
        )

    inflight = status.get("inflight_requests") or []
    admission = status.get("admission") or {}
    header = (f"In flight ({admission.get('inflight', len(inflight))})"
              if admission else f"In flight ({len(inflight)})")
    lines.append(_paint(header, _BOLD, color))
    if not inflight:
        lines.append("  (idle)")
    for row in inflight[:max_inflight_rows]:
        stamp = ("EXPIRED" if row.get("expired")
                 else "STUCK" if row.get("stuck") else "")
        if stamp:
            stamp = " " + _paint(stamp, _RED, color)
        lines.append(
            f"  {row.get('request_id', '?'):<12} "
            f"{(row.get('tenant') or '-'):<12} "
            f"{row.get('age_seconds', 0.0):6.2f}s  "
            f"{row.get('sentence', '')}{stamp}"
        )
    if len(inflight) > max_inflight_rows:
        lines.append(f"  … and {len(inflight) - max_inflight_rows} more")
    return "\n".join(lines) + "\n"


def _quit_pressed(timeout):
    """Wait up to ``timeout`` seconds for a 'q' keypress on a tty."""
    if not sys.stdin.isatty():
        time.sleep(timeout)
        return False
    try:
        ready, _, _ = select.select([sys.stdin], [], [], timeout)
    except (OSError, ValueError):
        time.sleep(timeout)
        return False
    if not ready:
        return False
    return sys.stdin.readline().strip().lower().startswith("q")


def run_top(config, out=None, clock=time.monotonic):
    """The ``repro top`` loop; returns a process exit code.

    ``--once`` prints a single frame (no screen clearing) and exits —
    0 when the server answered, 1 when it was unreachable.  The live
    loop refreshes every ``interval`` seconds until ``q`` or Ctrl-C.
    """
    if out is None:
        out = sys.stdout
    color = config.color
    if color is None:
        color = bool(getattr(out, "isatty", lambda: False)())
    client = ServeClient(config.url, timeout=max(2.0, config.interval * 2))
    previous = None
    while True:
        current = poll_server(client, clock=clock)
        frame = render_frame(
            current, previous=previous, color=color,
            max_inflight_rows=config.max_inflight_rows, url=client.url,
        )
        if config.once:
            out.write(frame)
            out.flush()
            return 1 if current.error else 0
        out.write(_CLEAR + frame + "\n(q to quit)\n")
        out.flush()
        previous = current
        try:
            if _quit_pressed(config.interval):
                return 0
        except KeyboardInterrupt:
            return 0
