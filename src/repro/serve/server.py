"""The ``repro serve`` HTTP service.

A stdlib-only (``http.server.ThreadingHTTPServer``) long-lived service
wrapping ``NaLIX.ask()``.  One connection thread per request, with the
actual query concurrency bounded by the
:class:`~repro.serve.admission.AdmissionController` — admission is the
worker-pool limit, the per-query
:class:`~repro.resilience.QueryBudget` bounds each admitted query's
work, and the qlint gate inside ``ask`` guarantees no malformed
translation reaches the evaluator.  The engine itself is read-only by
construction (Schema-Free XQuery here has no update expressions, and
the optional raw ``/xquery`` endpoint re-runs the static analyzer
before evaluating), so the service can never mutate the store.

Endpoints:

``POST /query`` (or ``GET /query?q=...``)
    Body ``{"sentence": ..., "timeout": seconds?, "explain": bool?,
    "limit": int?}``.  Returns the answer JSON; ``explain=1`` embeds
    the full provenance/lineage/plan report.  Tenant comes from the
    ``X-Repro-Tenant`` header.  HTTP status mirrors the result
    taxonomy: 200 ok/degraded, 422 rejected (user feedback), 504
    budget-exhausted, 500 internal, 429/503 turned away by admission.
``POST /xquery``
    Raw Schema-Free XQuery — only when the server was started with
    ``allow_xquery=True``, and only after the query passes the qlint
    gate with zero errors (the read-only guarantee for raw queries).
``GET /metrics``
    Prometheus text exposition: the process metrics registry plus the
    pipeline latency windows plus the server's own per-endpoint and
    per-tenant sliding windows.
``GET /healthz`` / ``GET /readyz``
    Liveness (always 200 while the process serves) and readiness (503
    while draining).
``GET /statusz``
    JSON ops summary: uptime, inflight, admission/tenant counters,
    window quantiles, drain state.

Every finished query lands one structured access-log record in the
server's rotating :class:`~repro.obs.audit.AuditLog` (the standard
audit entry plus tenant / endpoint / request id / HTTP status / remote
address), and the server's request handling observes into its own
:class:`~repro.obs.export.LatencyWindow` so ``/metrics`` exposes live
p50/p95/p99 per endpoint and per tenant.

Graceful shutdown (``drain`` → ``stop``): flip ``/readyz`` to 503 and
refuse new admissions, wait for in-flight queries to finish (bounded —
every query runs under a budget deadline), then stop the listener and
flush/close the audit log.  ``serve_until_signal`` wires SIGTERM and
SIGINT to exactly that sequence for the CLI.
"""

from __future__ import annotations

import itertools
import json
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.analysis import analyze_query
from repro.analysis import racecheck
from repro.core.interface import NaLIX
from repro.obs.audit import AuditLog
from repro.obs.explain import explain
from repro.obs.export import LATENCIES, LatencyWindow, prometheus_text
from repro.obs.metrics import METRICS
from repro.obs.recorder import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MIN_DUMP_INTERVAL,
    FlightRecorder,
)
from repro.obs.sampler import DEFAULT_HEAD_RATE, TailSampler
from repro.obs.slo import (
    DEFAULT_FAST_BURN_THRESHOLD,
    DEFAULT_FAST_SECONDS,
    DEFAULT_SLOW_SECONDS,
    SLOEngine,
    SLOSpec,
)
from repro.obs.tracecontext import new_trace_id, parse_traceparent
from repro.resilience.breaker import BreakerBoard
from repro.resilience.budget import QueryBudget, activate_budget
from repro.resilience.faults import FaultPlan, fault_scope
from repro.serve.admission import (
    DEFAULT_MAX_INFLIGHT,
    AdmissionController,
    AdmissionError,
)
from repro.serve.brownout import BrownoutController
from repro.serve.canary import DEFAULT_CANARY_INTERVAL, CanaryRunner
from repro.serve.watchdog import InflightRegistry, Watchdog
from repro.xmlstore.model import Node
from repro.xquery.parser import parse_xquery
from repro.xquery.values import string_value

#: Largest accepted request body.
MAX_BODY_BYTES = 64 * 1024

#: Tenant names are sanitized to this shape (metrics/file hygiene).
_TENANT_RE = re.compile(r"[^a-zA-Z0-9._-]")
_TENANT_MAX_LEN = 64
DEFAULT_TENANT = "anonymous"

_REQUESTS = METRICS.counter("serve.requests")
_QUERY_REQUESTS = METRICS.counter("serve.requests.query")
_RESPONSE_CLASSES = {
    klass: METRICS.counter(f"serve.responses.{klass}")
    for klass in ("2xx", "4xx", "5xx")
}
_DRAIN_SECONDS = METRICS.gauge("serve.drain.seconds")


class ServeConfig:
    """Everything ``repro serve`` can tune, with serving-grade defaults."""

    def __init__(self, host="127.0.0.1", port=8080,
                 max_inflight=DEFAULT_MAX_INFLIGHT,
                 tenant_rate=None, tenant_burst=None, tenant_inflight=None,
                 default_timeout=QueryBudget.DEFAULT_DEADLINE_SECONDS,
                 max_timeout=30.0, result_limit=200,
                 audit_path=None, audit_max_bytes=16 * 1024 * 1024,
                 window=4096, allow_xquery=False, drain_grace=None,
                 fault_plan=None,
                 breaker_window=64, breaker_threshold=0.5,
                 breaker_min_samples=8, breaker_open_seconds=5.0,
                 brownout=True, pressure_high=0.8, pressure_low=0.5,
                 brownout_step=2.0, brownout_cooldown=5.0,
                 watchdog=True, watchdog_interval=0.5,
                 watchdog_soft=None, watchdog_hard=None,
                 slos=None, slo_fast_seconds=DEFAULT_FAST_SECONDS,
                 slo_slow_seconds=DEFAULT_SLOW_SECONDS,
                 slo_fast_burn=DEFAULT_FAST_BURN_THRESHOLD,
                 recorder=True, recorder_max_bytes=DEFAULT_MAX_BYTES,
                 head_sample_rate=DEFAULT_HEAD_RATE,
                 dump_dir=None, dump_signal=None,
                 min_dump_interval=DEFAULT_MIN_DUMP_INTERVAL,
                 canary=False, canary_interval=DEFAULT_CANARY_INTERVAL,
                 canary_goldens=None, canary_tasks=None):
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.tenant_inflight = tenant_inflight
        self.default_timeout = default_timeout
        self.max_timeout = max_timeout
        self.result_limit = result_limit
        self.audit_path = audit_path
        self.audit_max_bytes = audit_max_bytes
        self.window = window
        self.allow_xquery = allow_xquery
        # Chaos: a FaultPlan (or --inject-fault string/list) applied to
        # the served pipeline.
        self.fault_plan = fault_plan
        # Circuit breakers over QueryResult.error_class.
        self.breaker_window = breaker_window
        self.breaker_threshold = breaker_threshold
        self.breaker_min_samples = breaker_min_samples
        self.breaker_open_seconds = breaker_open_seconds
        # Brownout ladder (budget tightening + pre-degradation).
        self.brownout = brownout
        self.pressure_high = pressure_high
        self.pressure_low = pressure_low
        self.brownout_step = brownout_step
        self.brownout_cooldown = brownout_cooldown
        # Stuck-query watchdog; soft/hard are absolute-seconds overrides
        # (default: 1.5x / 3x each request's budget deadline).
        self.watchdog = watchdog
        self.watchdog_interval = watchdog_interval
        self.watchdog_soft = watchdog_soft
        self.watchdog_hard = watchdog_hard
        # SLOs: None = the default serving objectives; an empty tuple
        # disables the engine; otherwise SLOSpec objects or spec
        # strings ("availability:0.99", "latency:0.99@0.5").
        self.slos = slos
        self.slo_fast_seconds = slo_fast_seconds
        self.slo_slow_seconds = slo_slow_seconds
        self.slo_fast_burn = slo_fast_burn
        # Tail sampling + flight recorder (the incident evidence loop).
        self.recorder = recorder
        self.recorder_max_bytes = recorder_max_bytes
        self.head_sample_rate = head_sample_rate
        self.dump_dir = dump_dir
        self.dump_signal = dump_signal
        self.min_dump_interval = min_dump_interval
        # The correctness canary: periodic in-process golden-query
        # sweeps under the reserved "_canary" tenant.  Off by default
        # (tests and benchmarks opt in); the CLI turns it on.
        self.canary = canary
        self.canary_interval = canary_interval
        self.canary_goldens = canary_goldens
        self.canary_tasks = canary_tasks
        # Drain must outlast the longest admissible query: its budget
        # deadline plus slack for serialization and logging.
        self.drain_grace = (
            drain_grace
            if drain_grace is not None
            else (max_timeout or default_timeout or 5.0) + 2.0
        )


class _HTTPError(Exception):
    """Internal: abort the request with a status + JSON error body."""

    def __init__(self, status, code, message, retry_after_seconds=None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after_seconds = retry_after_seconds


def _clean_tenant(raw):
    if not raw:
        return DEFAULT_TENANT
    cleaned = _TENANT_RE.sub("_", raw.strip())[:_TENANT_MAX_LEN]
    return cleaned or DEFAULT_TENANT


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Restarting a drained server on the same port must not wait out
    # TIME_WAIT.
    allow_reuse_address = True
    # The stdlib default backlog of 5 drops SYNs when N>5 clients
    # connect in one burst (urllib opens a fresh connection per
    # request), and a dropped SYN retransmits after ~1s — a phantom
    # 1000ms client-side p99 the server never saw.
    request_queue_size = 128


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ReproServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # the structured audit log is the access log, so keep stderr quiet.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def repro(self):
        return self.server.repro_server

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def _dispatch(self, method):
        _REQUESTS.inc()
        split = urlsplit(self.path)
        route = (method, split.path)
        try:
            if route == ("GET", "/healthz"):
                self._send_text(200, "ok\n")
            elif route == ("GET", "/readyz"):
                if self.repro.draining:
                    self._send_text(503, "draining\n")
                else:
                    self._send_text(200, "ready\n")
            elif route == ("GET", "/metrics"):
                self._send_text(
                    200, self.repro.metrics_text(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == ("GET", "/statusz"):
                self._send_json(200, self.repro.status_snapshot())
            elif route == ("GET", "/debugz/flightrecorder"):
                self._flight_recorder(split.query)
            elif split.path == "/query" and method in ("GET", "POST"):
                _QUERY_REQUESTS.inc()
                payload = (
                    self._read_json_body()
                    if method == "POST"
                    else self._query_params_payload(split.query)
                )
                self._run_query(payload)
            elif route == ("POST", "/xquery"):
                self._run_xquery(self._read_json_body())
            else:
                raise _HTTPError(404, "not-found",
                                 f"no such endpoint: {method} {split.path}")
        except _HTTPError as error:
            self._send_error_json(error)
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to answer
        except Exception as error:  # a handler bug must not kill the thread
            self._send_error_json(
                _HTTPError(500, "internal-error",
                           f"{type(error).__name__}: {error}")
            )

    # -- request parsing ---------------------------------------------------

    def _read_json_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, "body-too-large",
                             f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _HTTPError(400, "empty-body",
                             "expected a JSON request body")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPError(400, "bad-json",
                             f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise _HTTPError(400, "bad-json",
                             "request body must be a JSON object")
        return payload

    def _query_params_payload(self, query_string):
        params = parse_qs(query_string)
        payload = {}
        if "q" in params:
            payload["sentence"] = params["q"][0]
        elif "sentence" in params:
            payload["sentence"] = params["sentence"][0]
        if "timeout" in params:
            payload["timeout"] = params["timeout"][0]
        if "explain" in params:
            payload["explain"] = params["explain"][0] not in ("0", "false", "")
        if "limit" in params:
            payload["limit"] = params["limit"][0]
        return payload

    def _tenant(self):
        return _clean_tenant(self.headers.get("X-Repro-Tenant"))

    def _trace_id(self):
        """Adopt the client's W3C traceparent trace id, or mint one."""
        parsed = parse_traceparent(self.headers.get("traceparent"))
        if parsed is not None:
            return parsed[0]
        return new_trace_id()

    def _flight_recorder(self, query_string):
        """``GET /debugz/flightrecorder``: the on-demand dump surface.

        Default: the full JSON bundle (snapshot + every retained
        record).  ``?format=chrome`` returns a Chrome trace-event
        document, ``?format=jsonl`` the raw JSONL, and ``?dump=1``
        writes a bundle into the server's dump dir (rate-limited like
        every automatic dump) and reports the path.
        """
        recorder = self.repro.recorder
        if recorder is None:
            raise _HTTPError(404, "recorder-disabled",
                             "the flight recorder is disabled on this "
                             "server (started with recorder=False)")
        params = parse_qs(query_string)
        if params.get("dump", ["0"])[0] not in ("0", "false", ""):
            prefix = self.repro.trigger_dump("debugz")
            self._send_json(200, {
                "dumped": prefix is not None,
                "prefix": prefix,
                "snapshot": recorder.snapshot(),
            })
            return
        fmt = params.get("format", ["bundle"])[0]
        if fmt == "chrome":
            self._send_json(200, recorder.dump_chrome())
        elif fmt == "jsonl":
            self._send_text(200, recorder.dump_jsonl(),
                            content_type="application/x-ndjson")
        else:
            self._send_json(200, recorder.dump_bundle())

    # -- the query endpoints -----------------------------------------------

    def _run_query(self, payload):
        sentence = payload.get("sentence")
        if not sentence or not isinstance(sentence, str):
            raise _HTTPError(400, "missing-sentence",
                             'expected {"sentence": "..."} '
                             "(or /query?q=...)")
        tenant = self._tenant()
        server = self.repro
        timeout = server.clamp_timeout(payload.get("timeout"))
        trace_id = self._trace_id()
        started = time.perf_counter()
        try:
            ticket = server.admission.admit(tenant)
        except AdmissionError as error:
            raise _HTTPError(error.http_status, f"admission-{error.reason}",
                             str(error),
                             retry_after_seconds=error.retry_after_seconds)
        # The request id exists before the query runs so the watchdog
        # can name this request in stuck/expired audit events.
        request_id = server.next_request_id()
        probe = False
        entry = None
        try:
            meter, pre_degrade, probe = server.resilience_plan(timeout)
            entry = server.registry.register(
                request_id, tenant, sentence, meter
            )
            with fault_scope(tenant):
                result = server.nalix.ask(
                    sentence, meter=meter, pre_degrade=pre_degrade
                )
        finally:
            if entry is not None:
                server.registry.finish(entry)
            ticket.release()
        server.breakers.record(result.error_class, probe=probe)
        seconds = time.perf_counter() - started
        status, body = server.render_result(
            result, payload, tenant=tenant, seconds=seconds,
            request_id=request_id, trace_id=trace_id,
        )
        server.record_outcome(
            "/query", tenant, result, seconds, http_status=status,
            request_id=request_id, trace_id=trace_id, entry=entry,
        )
        server.access_log(result, tenant=tenant, endpoint="/query",
                          request_id=request_id, trace_id=trace_id,
                          http_status=status,
                          remote=self.client_address[0])
        self._send_json(status, body, extra_headers={
            "X-Repro-Seconds": f"{seconds:.6f}",
            "X-Repro-Request-Id": request_id,
            "X-Repro-Trace-Id": trace_id,
        })

    def _run_xquery(self, payload):
        server = self.repro
        if not server.config.allow_xquery:
            raise _HTTPError(403, "xquery-disabled",
                             "raw XQuery is disabled; start the server "
                             "with --allow-xquery to enable it")
        query_text = payload.get("query")
        if not query_text or not isinstance(query_text, str):
            raise _HTTPError(400, "missing-query",
                             'expected {"query": "..."}')
        tenant = self._tenant()
        started = time.perf_counter()
        try:
            ticket = server.admission.admit(tenant)
        except AdmissionError as error:
            raise _HTTPError(error.http_status, f"admission-{error.reason}",
                             str(error),
                             retry_after_seconds=error.retry_after_seconds)
        try:
            status, body = server.run_raw_xquery(query_text, tenant)
        finally:
            ticket.release()
        seconds = time.perf_counter() - started
        server.observe_request("/xquery", tenant, seconds)
        self._send_json(status, body, extra_headers={
            "X-Repro-Seconds": f"{seconds:.6f}",
        })

    # -- response plumbing -------------------------------------------------

    def _count_response(self, status):
        klass = f"{status // 100}xx"
        counter = _RESPONSE_CLASSES.get(klass)
        if counter is not None:
            counter.inc()

    def _send_bytes(self, status, payload, content_type,
                    extra_headers=None):
        self._count_response(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for key, value in (extra_headers or {}).items():
            if value is not None:
                self.send_header(key, str(value))
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status, text, content_type="text/plain; charset=utf-8"):
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_json(self, status, document, extra_headers=None):
        self._send_bytes(
            status,
            (json.dumps(document, sort_keys=True) + "\n").encode("utf-8"),
            "application/json",
            extra_headers=extra_headers,
        )

    def _send_error_json(self, error):
        headers = {}
        if error.retry_after_seconds is not None:
            headers["Retry-After"] = str(int(error.retry_after_seconds))
        self._send_json(
            error.status,
            {"error": error.code, "message": str(error)},
            extra_headers=headers,
        )


class ReproServer:
    """The long-lived query service around one :class:`NaLIX` pipeline.

    ``nalix`` may be passed preconstructed (tests inject slow or faulty
    pipelines); otherwise one is built over ``database``.  The server
    owns the audit log (the structured access log), the admission
    controller, and a per-endpoint/per-tenant latency window; the
    process-wide ``METRICS``/``LATENCIES`` keep aggregating exactly as
    they do for CLI queries, so ``/metrics`` is one coherent surface.
    """

    def __init__(self, database=None, config=None, nalix=None):
        self.config = config or ServeConfig()
        if nalix is None:
            if database is None:
                raise ValueError("ReproServer needs a database or a nalix")
            nalix = NaLIX(
                database,
                budget=QueryBudget.default(
                    deadline_seconds=self.config.default_timeout
                ),
            )
        self.nalix = nalix
        if self.config.fault_plan is not None:
            # The chaos harness: inject faults into the served pipeline.
            self.nalix.fault_plan = FaultPlan.coerce(self.config.fault_plan)
        self.audit = None
        if self.config.audit_path:
            self.audit = AuditLog(
                self.config.audit_path, actor="serve",
                max_bytes=self.config.audit_max_bytes,
            )
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
            tenant_inflight=self.config.tenant_inflight,
        )
        # The incident evidence loop: tail sampler + flight recorder +
        # SLO burn-rate engine.  Built before the breaker/watchdog
        # hooks below so the auto-dump triggers can reference them.
        self.recorder = (
            FlightRecorder(
                max_bytes=self.config.recorder_max_bytes,
                dump_dir=self.config.dump_dir,
                min_dump_interval=self.config.min_dump_interval,
            )
            if self.config.recorder
            else None
        )
        self.sampler = (
            TailSampler(head_rate=self.config.head_sample_rate)
            if self.config.recorder
            else None
        )
        self.slo = (
            SLOEngine(
                specs=self._slo_specs(self.config.slos),
                fast_seconds=self.config.slo_fast_seconds,
                slow_seconds=self.config.slo_slow_seconds,
                fast_burn_threshold=self.config.slo_fast_burn,
                on_fast_burn=lambda spec, snapshot: self.trigger_dump(
                    f"slo-fast-burn-{spec.name}"
                ),
            )
            if self.config.slos is None or self.config.slos
            else None
        )
        self.breakers = BreakerBoard(
            window=self.config.breaker_window,
            failure_threshold=self.config.breaker_threshold,
            min_samples=self.config.breaker_min_samples,
            open_seconds=self.config.breaker_open_seconds,
        )
        self.breakers.set_on_open(
            lambda breaker: self.trigger_dump(f"breaker-open-{breaker.name}")
        )
        self.brownout = (
            BrownoutController(
                pressure_high=self.config.pressure_high,
                pressure_low=self.config.pressure_low,
                step_seconds=self.config.brownout_step,
                cooldown_seconds=self.config.brownout_cooldown,
            )
            if self.config.brownout
            else None
        )
        self.registry = InflightRegistry(
            soft_seconds=self.config.watchdog_soft,
            hard_seconds=self.config.watchdog_hard,
        )
        self.watchdog = (
            Watchdog(
                self.registry, interval=self.config.watchdog_interval,
                audit=self.audit, on_event=self._watchdog_event,
            )
            if self.config.watchdog
            else None
        )
        self.canary = (
            CanaryRunner(
                self.nalix, interval=self.config.canary_interval,
                tasks=self.config.canary_tasks,
                goldens=self.config.canary_goldens,
                on_drift=self._canary_drift,
                audit=self.audit, recorder=self.recorder,
            )
            if self.config.canary
            else None
        )
        self.window = LatencyWindow(self.config.window)
        # Wall clock for the serialized timestamp, monotonic for the
        # uptime interval: NTP steps must not bend uptime_seconds.
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._request_ids = itertools.count(1)
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._httpd = None
        self._thread = None

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Bind and serve in a background thread; returns the port."""
        if self._httpd is not None:
            raise RuntimeError("server is already running")
        self._httpd = _ServeHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.repro_server = self
        self.config.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve", daemon=True,
        )
        self._thread.start()
        if self.watchdog is not None:
            self.watchdog.start()
        if self.canary is not None:
            self.canary.start()
        return self.config.port

    @property
    def url(self):
        return f"http://{self.config.host}:{self.config.port}"

    @property
    def draining(self):
        return self._draining.is_set()

    def drain(self, grace=None):
        """Stop admitting, wait for in-flight queries; True when empty.

        Bounded: every admitted query runs under a budget deadline, so
        the wait can never exceed ``grace`` (default: the configured
        ``drain_grace``, itself derived from the max query timeout).
        """
        grace = self.config.drain_grace if grace is None else grace
        started = time.perf_counter()
        self._draining.set()
        self.admission.start_draining()
        deadline = started + grace
        while self.admission.inflight > 0 and time.perf_counter() < deadline:
            time.sleep(0.02)
        _DRAIN_SECONDS.set(time.perf_counter() - started)
        return self.admission.inflight == 0

    def stop(self, grace=None):
        """Drain, stop the listener, flush and close the audit log."""
        if self._stopped.is_set():
            return
        self.drain(grace=grace)
        if self.canary is not None:
            self.canary.stop()
        if self.watchdog is not None:
            self.watchdog.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.audit is not None:
            self.audit.close()
        self._stopped.set()

    def serve_until_signal(self, signals=(signal.SIGTERM, signal.SIGINT)):
        """Run until SIGTERM/SIGINT, then drain and stop (CLI entry).

        Must be called from the main thread (signal handler rules).
        Returns the signal number that stopped the server.  When the
        config names a ``dump_signal`` (e.g. SIGUSR1) that signal
        triggers a flight-recorder dump *without* stopping the server.
        """
        if self._httpd is None:
            self.start()
        received = {}
        wake = threading.Event()

        def _on_signal(signum, frame):
            received["signum"] = signum
            wake.set()

        def _on_dump_signal(signum, frame):
            self.trigger_dump(f"signal-{signum}")

        previous = {
            signum: signal.signal(signum, _on_signal) for signum in signals
        }
        if self.config.dump_signal is not None:
            previous[self.config.dump_signal] = signal.signal(
                self.config.dump_signal, _on_dump_signal
            )
        try:
            wake.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        self.stop()
        return received.get("signum")

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False

    # -- per-request helpers (called from handler threads) -----------------

    def clamp_timeout(self, requested):
        """The effective per-query deadline for a client-requested one."""
        if requested is None:
            return self.config.default_timeout
        try:
            timeout = float(requested)
        except (TypeError, ValueError):
            raise _HTTPError(400, "bad-timeout",
                             f"timeout must be a number, got {requested!r}")
        if timeout <= 0:
            raise _HTTPError(400, "bad-timeout",
                             "timeout must be positive")
        if self.config.max_timeout is not None:
            timeout = min(timeout, self.config.max_timeout)
        return timeout

    def next_request_id(self):
        return f"r{next(self._request_ids):08d}"

    @staticmethod
    def _slo_specs(slos):
        """Coerce configured SLOs (strings or SLOSpec) into specs."""
        if slos is None:
            return None  # SLOEngine default
        return [
            spec if isinstance(spec, SLOSpec) else SLOSpec.parse(spec)
            for spec in slos
        ]

    def trigger_dump(self, reason):
        """Fire a flight-recorder auto-dump (breaker-open, watchdog-hard,
        SLO fast-burn, SIGUSR1).  Safe no-op without a recorder or a
        dump dir; the dump event also lands in the access log."""
        if self.recorder is None:
            return None
        prefix = self.recorder.trigger_dump(reason)
        if prefix is not None and self.audit is not None:
            self.audit.record_event(
                "flightrecorder-dump", reason=str(reason), prefix=prefix,
            )
        return prefix

    def _watchdog_event(self, kind, entry):
        """Watchdog hook: a hard expiry is incident-grade evidence."""
        if kind == "expired":
            self.trigger_dump(f"watchdog-hard-{entry.request_id}")

    def _canary_drift(self, failing):
        """Canary hook: answer drift is incident-grade evidence too."""
        self.trigger_dump("canary-drift-" + "-".join(failing))

    def resilience_plan(self, timeout):
        """(meter, pre_degrade, probe) for one admitted ``/query``.

        Half-open breaker probes run the full-fidelity path (the
        breaker must observe real recovery); everything else consults
        the brownout ladder, which may tighten the budget and/or
        pre-degrade the request down the evaluation ladder.  The meter
        is started here — before ``ask`` — so the stuck-query watchdog
        holds a live reference it can force-expire.
        """
        budget = QueryBudget.default(deadline_seconds=timeout)
        probe = self.breakers.acquire_probe()
        pre_degrade = None
        if self.brownout is not None:
            pressure = (
                self.admission.inflight / self.config.max_inflight
                if self.config.max_inflight
                else 0.0
            )
            self.brownout.observe(
                pressure, breaker_open=self.breakers.any_open()
            )
            if not probe:
                budget, pre_degrade = self.brownout.plan(budget)
        return budget.start(), pre_degrade, probe

    def render_result(self, result, payload, tenant, seconds,
                      request_id=None, trace_id=None):
        """(http_status, body) for one finished :class:`QueryResult`."""
        limit = payload.get("limit", self.config.result_limit)
        try:
            limit = max(0, int(limit))
        except (TypeError, ValueError):
            raise _HTTPError(400, "bad-limit",
                             f"limit must be an integer, got {limit!r}")
        values = result.values()
        body = {
            "request_id": request_id or self.next_request_id(),
            "trace_id": trace_id,
            "tenant": tenant,
            "sentence": result.sentence,
            "status": result.status,
            "error_class": result.error_class,
            "retryable": result.retryable,
            "degraded": result.degraded,
            "xquery": result.xquery_text,
            "answer_digest": getattr(result, "answer_digest", None),
            "result_count": len(values),
            "results": values[:limit],
            "truncated": len(values) > limit,
            "seconds": seconds,
            "feedback": [
                {
                    "severity": message.kind,
                    "code": message.code,
                    "text": message.text,
                    "suggestion": message.suggestion,
                }
                for message in result.feedback.messages
            ],
        }
        if payload.get("explain"):
            body["explain"] = explain(result).to_dict()
        if result.status in ("ok", "degraded"):
            status = 200
        elif result.status == "rejected":
            status = 422
        elif result.error_class == "exhausted":
            status = 504
        else:
            status = 500
        return status, body

    def run_raw_xquery(self, query_text, tenant):
        """The gated raw-XQuery path: lint first, then evaluate.

        The qlint gate is the read-only/validity guarantee for text
        that did not come out of our own translator: any analyzer
        *error* refuses execution outright (HTTP 400 with the
        findings).  Evaluation runs under the default budget.
        """
        try:
            expr = parse_xquery(query_text)
        except Exception as error:
            return 400, {"error": "xquery-parse",
                         "message": f"unparseable XQuery: {error}"}
        report = analyze_query(expr)
        findings = [
            {"rule": finding.rule_id, "severity": finding.severity,
             "message": finding.render()}
            for finding in report.findings
        ]
        if report.errors:
            METRICS.inc("serve.xquery.rejected")
            return 400, {"error": "xquery-rejected",
                         "message": "the query failed static analysis",
                         "findings": findings}
        budget = QueryBudget.default(
            deadline_seconds=self.config.default_timeout
        )
        try:
            with activate_budget(budget.start()):
                items = self.nalix.evaluator.run(expr)
        except Exception as error:
            return 500, {"error": "xquery-evaluation",
                         "message": f"{type(error).__name__}: {error}",
                         "findings": findings}
        values = [
            string_value(item) if isinstance(item, Node) else str(item)
            for item in items
        ]
        return 200, {
            "request_id": self.next_request_id(),
            "tenant": tenant,
            "result_count": len(values),
            "results": values[: self.config.result_limit],
            "truncated": len(values) > self.config.result_limit,
            "findings": findings,
        }

    def record_outcome(self, endpoint, tenant, result, seconds,
                       http_status, request_id=None, trace_id=None,
                       entry=None):
        """Post-request observability: feed the SLO engine, run the
        tail sampler, park retained traces in the flight recorder, and
        observe the latency windows (with an exemplar when retained).

        Returns True when the trace landed in the recorder — only then
        does the exemplar ride the metrics, so every exported exemplar
        resolves to a record the recorder actually holds.
        """
        if self.slo is not None:
            self.slo.record_request(endpoint, http_status < 500, seconds)
        retained = False
        if self.sampler is not None and self.recorder is not None:
            stuck = bool(entry is not None and entry.stuck)
            expired = bool(entry is not None and entry.expired)
            decision = self.sampler.decide(
                status=result.status, error_class=result.error_class,
                seconds=seconds, stuck=stuck, expired=expired,
            )
            if decision.retain and trace_id is not None:
                record = self.recorder.record(
                    trace_id, trace=result.trace, reason=decision.reason,
                    request_id=request_id, tenant=tenant, endpoint=endpoint,
                    sentence=result.sentence, status=result.status,
                    error_class=result.error_class,
                    answer_digest=getattr(result, "answer_digest", None),
                    seconds=seconds, stuck=stuck, expired=expired,
                )
                retained = record is not None
        self.observe_request(
            endpoint, tenant, seconds,
            exemplar=trace_id if retained else None,
        )
        return retained

    def observe_request(self, endpoint, tenant, seconds, exemplar=None):
        self.window.observe(f"endpoint:{endpoint}", seconds,
                            exemplar=exemplar)
        self.window.observe(f"tenant:{tenant}", seconds, exemplar=exemplar)

    def access_log(self, result, **fields):
        if self.audit is not None:
            self.audit.record(result, extra=fields)

    # -- the ops surface ---------------------------------------------------

    def metrics_text(self):
        """The full Prometheus exposition for ``/metrics``."""
        extra = LATENCIES.prometheus_lines() + self.window.prometheus_lines()
        if self.slo is not None:
            extra = extra + self.slo.prometheus_lines()
        if self.canary is not None:
            extra = extra + self.canary.prometheus_lines()
        return prometheus_text(METRICS.snapshot(), extra_lines=extra)

    def status_snapshot(self):
        """The ``/statusz`` JSON document."""
        return {
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "started_at_unix": self.started_at,
            "draining": self.draining,
            "admission": self.admission.snapshot(),
            "breakers": self.breakers.snapshot(),
            "brownout": (
                self.brownout.snapshot() if self.brownout is not None
                else None
            ),
            "watchdog": (
                self.watchdog.snapshot() if self.watchdog is not None
                else None
            ),
            "windows": self.window.snapshot(),
            "slo": self.slo.snapshot() if self.slo is not None else None,
            "recorder": (
                self.recorder.snapshot() if self.recorder is not None
                else None
            ),
            "sampler": (
                self.sampler.snapshot() if self.sampler is not None
                else None
            ),
            "canary": (
                self.canary.snapshot() if self.canary is not None
                else None
            ),
            "racecheck": (
                racecheck.report() if racecheck.enabled() else None
            ),
            "inflight_requests": (
                self.registry.snapshot_entries()
                if self.registry is not None else []
            ),
            "config": {
                "max_inflight": self.config.max_inflight,
                "tenant_rate": self.config.tenant_rate,
                "tenant_inflight": self.config.tenant_inflight,
                "default_timeout": self.config.default_timeout,
                "max_timeout": self.config.max_timeout,
                "allow_xquery": self.config.allow_xquery,
            },
        }

    def __repr__(self):
        return f"ReproServer({self.url}, inflight={self.admission.inflight})"
