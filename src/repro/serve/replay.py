"""``repro replay``: differential re-execution of an audit log.

The audit/access trail already records what every query answered —
since the answer-fingerprint work, each line carries the canonical
``answer_digest`` next to the status and stage timings.  Replay closes
the loop: read a JSONL audit log (rotated ``.1`` sibling included, via
the shared hardened :func:`repro.obs.audit.iter_records` parser),
re-execute every recorded sentence against the *current* build — an
in-process pipeline by default, or a live server with ``--url`` — and
diff what came back against what the log promised:

* **digest**: recorded vs replayed answer fingerprint.  A mismatch is
  the headline failure — the same question now yields a different
  answer — and fails the run (exit code 1), mirroring ``bench-check``.
* **status**: ``ok`` → ``degraded`` (or any transition) with an intact
  digest is a WARN — the answer survived but travelled a different
  path, which is how silent ladder regressions look.
* **latency**: recorded vs replayed p50/p95/p99 of end-to-end seconds,
  reported as deltas (informational; latency gating belongs to
  ``bench-check``'s MAD-guarded tolerance, not a log diff).

Records without a digest (logs from before the fingerprint era, or
event lines like ``watchdog-stuck``) are SKIPped, not failed, so
replay degrades gracefully over historical logs.  Verdict vocabulary
and exit-code semantics are shared with :mod:`repro.obs.regression`:
PASS/WARN in text or ``--github`` annotation form, exit 1 only on
FAIL.
"""

from __future__ import annotations

import json

from repro.obs.audit import ReadStats, iter_records
from repro.obs.quantiles import nearest_rank
from repro.obs.regression import FAIL, PASS, SKIP, WARN

#: Tenant replayed queries run under in ``--url`` mode, so a live
#: server's per-tenant surfaces show replay traffic under its own name.
REPLAY_TENANT = "replay"


class ReplayConfig:
    """Everything one replay run needs.

    ``url`` switches the executor from the in-process pipeline to a
    live server; ``limit`` caps the number of replayed records (0 or
    ``None`` replays everything); ``rotated`` chains the ``.1`` file.
    """

    def __init__(self, log_path, url=None, tenant=REPLAY_TENANT,
                 timeout=10.0, limit=None, rotated=True):
        self.log_path = log_path
        self.url = url
        self.tenant = tenant
        self.timeout = timeout
        self.limit = limit
        self.rotated = rotated

    def __repr__(self):
        target = self.url or "in-process"
        return f"ReplayConfig({self.log_path!r} -> {target})"


class ReplayRow:
    """One replayed query: the recorded promise vs the fresh answer."""

    __slots__ = ("sentence", "recorded_digest", "replayed_digest",
                 "recorded_status", "replayed_status", "recorded_seconds",
                 "replayed_seconds", "verdict", "note")

    def __init__(self, sentence, recorded_digest, replayed_digest,
                 recorded_status, replayed_status, recorded_seconds,
                 replayed_seconds, verdict, note=""):
        self.sentence = sentence
        self.recorded_digest = recorded_digest
        self.replayed_digest = replayed_digest
        self.recorded_status = recorded_status
        self.replayed_status = replayed_status
        self.recorded_seconds = recorded_seconds
        self.replayed_seconds = replayed_seconds
        self.verdict = verdict
        self.note = note

    def to_dict(self):
        return {
            "sentence": self.sentence,
            "recorded_digest": self.recorded_digest,
            "replayed_digest": self.replayed_digest,
            "recorded_status": self.recorded_status,
            "replayed_status": self.replayed_status,
            "recorded_seconds": self.recorded_seconds,
            "replayed_seconds": self.replayed_seconds,
            "verdict": self.verdict,
            "note": self.note,
        }

    def __repr__(self):
        return f"ReplayRow({self.verdict}, {self.sentence[:40]!r})"


def classify_row(recorded_digest, replayed_digest, recorded_status,
                 replayed_status, execution_error=None):
    """The replay verdict for one record; returns ``(verdict, note)``.

    The ladder, most severe first: an executor failure or a digest
    mismatch FAILs; a matching digest that travelled a different status
    path WARNs; a record with no recorded digest SKIPs (pre-fingerprint
    logs stay replayable); everything else PASSes.
    """
    if execution_error:
        return FAIL, f"replay execution failed: {execution_error}"
    if recorded_digest is None:
        return SKIP, "no recorded answer digest (pre-fingerprint record)"
    if replayed_digest != recorded_digest:
        return FAIL, (
            f"answer drift: recorded {recorded_digest} != "
            f"replayed {replayed_digest}"
        )
    if recorded_status != replayed_status:
        return WARN, (
            f"same answer via a different path: status "
            f"{recorded_status} -> {replayed_status}"
        )
    return PASS, ""


def _quantiles(samples):
    if not samples:
        return None
    ordered = sorted(samples)
    return {
        "p50": nearest_rank(ordered, 0.50),
        "p95": nearest_rank(ordered, 0.95),
        "p99": nearest_rank(ordered, 0.99),
    }


class ReplayReport:
    """The differential report: rows + verdict counts + latency deltas."""

    def __init__(self, rows, log_path, target, read_stats=None):
        self.rows = list(rows)
        self.log_path = log_path
        self.target = target
        self.read_stats = read_stats

    # -- verdict arithmetic ---------------------------------------------------

    def counts(self):
        counts = {PASS: 0, WARN: 0, FAIL: 0, SKIP: 0}
        for row in self.rows:
            counts[row.verdict] = counts.get(row.verdict, 0) + 1
        return counts

    @property
    def exit_code(self):
        """1 when any answer drifted (FAIL); warnings stay green."""
        return 1 if self.counts()[FAIL] else 0

    def latency(self):
        """Recorded vs replayed quantiles plus per-quantile deltas."""
        recorded = _quantiles(
            [row.recorded_seconds for row in self.rows
             if row.recorded_seconds is not None]
        )
        replayed = _quantiles(
            [row.replayed_seconds for row in self.rows
             if row.replayed_seconds is not None]
        )
        deltas = None
        if recorded and replayed:
            deltas = {
                name: replayed[name] - recorded[name]
                for name in ("p50", "p95", "p99")
            }
        return {
            "recorded": recorded,
            "replayed": replayed,
            "delta_seconds": deltas,
        }

    # -- renderers ------------------------------------------------------------

    def render_text(self):
        counts = self.counts()
        lines = [
            f"replay: {self.log_path} -> {self.target}",
            f"records: {len(self.rows)} replayed"
            + (
                f" ({self.read_stats.skipped} corrupt rows skipped, "
                f"{self.read_stats.files} files)"
                if self.read_stats is not None else ""
            ),
            "verdicts: "
            + ", ".join(
                f"{counts[name]} {name}"
                for name in (PASS, WARN, FAIL, SKIP)
            ),
        ]
        latency = self.latency()
        if latency["delta_seconds"] is not None:
            for name in ("p50", "p95", "p99"):
                lines.append(
                    f"latency {name}: recorded "
                    f"{latency['recorded'][name] * 1000:.2f} ms, replayed "
                    f"{latency['replayed'][name] * 1000:.2f} ms "
                    f"(delta {latency['delta_seconds'][name] * 1000:+.2f} ms)"
                )
        for row in self.rows:
            if row.verdict in (FAIL, WARN):
                lines.append(
                    f"  [{row.verdict.upper()}] {row.sentence!r}: {row.note}"
                )
        verdict = "FAIL" if self.exit_code else "PASS"
        lines.append(f"replay verdict: {verdict}")
        return "\n".join(lines)

    def to_json(self):
        return json.dumps(
            {
                "log_path": self.log_path,
                "target": self.target,
                "counts": self.counts(),
                "latency": self.latency(),
                "exit_code": self.exit_code,
                "rows": [row.to_dict() for row in self.rows],
            },
            indent=2, sort_keys=True,
        )

    def github_annotations(self):
        """``::warning``/``::error`` lines, same grammar as bench-check."""
        lines = []
        for row in self.rows:
            if row.verdict == FAIL:
                lines.append(
                    f"::error title=answer drift::{row.sentence}: {row.note}"
                )
            elif row.verdict == WARN:
                lines.append(
                    f"::warning title=replay status change::"
                    f"{row.sentence}: {row.note}"
                )
        return lines

    def __repr__(self):
        counts = self.counts()
        return (
            f"ReplayReport({len(self.rows)} rows, "
            f"fail={counts[FAIL]}, warn={counts[WARN]})"
        )


# -- executors -----------------------------------------------------------------


def _local_executor(nalix, timeout):
    def run(sentence):
        result = nalix.ask(sentence, timeout=timeout)
        return (
            getattr(result, "answer_digest", None),
            result.status,
            result.total_seconds,
            None,
        )

    return run


def _url_executor(client, tenant, timeout):
    def run(sentence):
        outcome = client.query(sentence, timeout=timeout, tenant=tenant)
        if outcome.transport_error is not None:
            return None, None, None, outcome.transport_error
        body = outcome.body if isinstance(outcome.body, dict) else {}
        seconds = (
            outcome.server_seconds
            if outcome.server_seconds is not None
            else outcome.client_seconds
        )
        return (
            body.get("answer_digest"),
            body.get("status"),
            seconds,
            None if outcome.ok or body.get("status") else
            f"HTTP {outcome.status}",
        )

    return run


def load_replay_records(config, stats=None):
    """The query records of the log, in write order, capped by ``limit``.

    Event lines (``watchdog-stuck``, ``canary-drift``, ...) share the
    JSONL trail but replay nothing, so they are filtered out here.
    """
    records = []
    for record in iter_records(
        config.log_path, rotated=config.rotated, stats=stats
    ):
        if "sentence" not in record or "event" in record:
            continue
        records.append(record)
        if config.limit and len(records) >= config.limit:
            break
    return records


def run_replay(config, nalix=None, client=None):
    """Replay one audit log; returns the :class:`ReplayReport`.

    In-process mode needs ``nalix`` (the CLI builds it from the same
    ``--data/--books/--seed`` spec that served the log); ``--url`` mode
    builds a :class:`~repro.serve.client.ServeClient` unless one is
    injected (tests pass a scripted transport through ``client``).
    """
    if config.url:
        if client is None:
            from repro.serve.client import ServeClient

            client = ServeClient(config.url, timeout=config.timeout)
        execute = _url_executor(client, config.tenant, config.timeout)
        target = config.url
    else:
        if nalix is None:
            raise ValueError("in-process replay needs a nalix pipeline")
        execute = _local_executor(nalix, config.timeout)
        target = "in-process"

    stats = ReadStats()
    rows = []
    for record in load_replay_records(config, stats=stats):
        sentence = record["sentence"]
        digest, status, seconds, error = execute(sentence)
        verdict, note = classify_row(
            record.get("answer_digest"), digest,
            record.get("status"), status, execution_error=error,
        )
        rows.append(
            ReplayRow(
                sentence,
                recorded_digest=record.get("answer_digest"),
                replayed_digest=digest,
                recorded_status=record.get("status"),
                replayed_status=status,
                recorded_seconds=record.get("total_seconds"),
                replayed_seconds=seconds,
                verdict=verdict,
                note=note,
            )
        )
    return ReplayReport(rows, config.log_path, target, read_stats=stats)
