"""``repro.serve.client``: the retrying, hedging HTTP query client.

Every HTTP consumer in the repo (``repro loadgen``, ``repro stats
--url``, scripts) talks to a ``repro serve`` instance through
:class:`ServeClient`, so retry semantics live in exactly one place —
the shared :class:`~repro.resilience.retry.RetryPolicy`:

* retries only *retryable* outcomes (transport errors, 429/500/503/504,
  and a body-level ``retryable: true``), with exponential backoff +
  seeded full jitter;
* honours the server's ``Retry-After`` header (the admission
  controller's token-bucket refill hint beats any client guess);
* optionally **hedges**: when an attempt has been in flight longer than
  the client's own observed p95, a second identical request races it
  and the first response wins.  Hedging only pays on the latency tail,
  so it stays off until the client has seen enough samples to know its
  p95.

The transport is injectable (``transport(url, body, headers, timeout)``
→ ``(status, headers, body_bytes)``) so unit tests script exact
status/latency sequences with zero sockets and zero sleeps; the default
transport is stdlib ``urllib``.

Counters: ``serve.client.requests`` / ``.retries`` / ``.hedges`` /
``.hedge_wins`` — surfaced by ``repro stats`` so the ops view shows
client-side self-healing next to the server-side breaker/brownout
state.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.error
import urllib.request

from repro.obs.metrics import METRICS
from repro.obs.quantiles import nearest_rank
from repro.obs.tracecontext import format_traceparent, new_trace_id
from repro.resilience.retry import RetryPolicy, parse_retry_after
from repro.analysis.racecheck import named_lock

_REQUESTS = METRICS.counter("serve.client.requests")
_RETRIES = METRICS.counter("serve.client.retries")
_HEDGES = METRICS.counter("serve.client.hedges")
_HEDGE_WINS = METRICS.counter("serve.client.hedge_wins")

#: Attempts observed before hedging trusts its p95.
MIN_HEDGE_SAMPLES = 10


class TransportError(Exception):
    """The request never produced an HTTP response."""


def urllib_transport(url, body, headers, timeout):
    """The default transport: one blocking urllib POST (or GET)."""
    request = urllib.request.Request(
        url, data=body, headers=headers,
        method="POST" if body is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as error:
        payload = error.read()
        return error.code, dict(error.headers), payload
    except (urllib.error.URLError, OSError) as error:
        raise TransportError(str(error)) from error


class QueryOutcome:
    """Everything one (possibly retried, possibly hedged) query produced."""

    __slots__ = ("status", "headers", "body", "client_seconds",
                 "server_seconds", "attempts", "hedged", "hedge_won",
                 "transport_error", "trace_id")

    def __init__(self, status=None, headers=None, body=None,
                 client_seconds=0.0, server_seconds=None, attempts=1,
                 hedged=False, hedge_won=False, transport_error=None,
                 trace_id=None):
        self.status = status
        self.headers = headers or {}
        self.body = body
        self.client_seconds = client_seconds
        self.server_seconds = server_seconds
        self.attempts = attempts
        self.hedged = hedged
        self.hedge_won = hedge_won
        self.transport_error = transport_error
        self.trace_id = trace_id

    @property
    def ok(self):
        return self.status is not None and 200 <= self.status < 300

    @property
    def retryable(self):
        """The response body's ``retryable`` field, if it parsed."""
        if isinstance(self.body, dict):
            value = self.body.get("retryable")
            if isinstance(value, bool):
                return value
        return None

    def __repr__(self):
        tag = self.status if self.status is not None else "transport-error"
        return (
            f"QueryOutcome({tag}, attempts={self.attempts}"
            f"{', hedged' if self.hedged else ''})"
        )


class ServeClient:
    """One server endpoint + one retry policy, shared by callers."""

    def __init__(self, url, tenant=None, retry_policy=None, timeout=30.0,
                 transport=urllib_transport, sleep=time.sleep,
                 clock=time.perf_counter):
        self.url = url.rstrip("/")
        self.tenant = tenant
        self.policy = retry_policy or RetryPolicy.none()
        self.timeout = timeout
        self._transport = transport
        self._sleep = sleep
        self._clock = clock
        self._lock = named_lock("serve.client")
        self._latencies = []  # recent attempt latencies, for the hedge p95
        self.retries_total = 0
        self.hedges_total = 0
        self.hedge_wins_total = 0

    # -- the public surface ---------------------------------------------------

    def query(self, sentence, timeout=None, explain=False, tenant=None):
        """POST one query, retrying/hedging per the policy; never raises.

        Returns a :class:`QueryOutcome`; a run that exhausts every
        attempt on transport errors comes back with ``status=None`` and
        the last error message in ``transport_error``.
        """
        payload = {"sentence": sentence}
        if timeout is not None:
            payload["timeout"] = timeout
        if explain:
            payload["explain"] = True
        return self.request("/query", payload, tenant=tenant)

    def request(self, path, payload, tenant=None, trace_id=None):
        """The generic retry loop around one JSON POST endpoint.

        One W3C ``traceparent`` is minted per *logical* request and
        reused across every retry and hedge, so all attempts of one
        query share one trace id end to end (client → server →
        audit log → flight recorder).
        """
        body = json.dumps(payload).encode("utf-8")
        trace_id = trace_id or new_trace_id()
        headers = {
            "Content-Type": "application/json",
            "traceparent": format_traceparent(trace_id),
        }
        tenant = tenant if tenant is not None else self.tenant
        if tenant:
            headers["X-Repro-Tenant"] = tenant
        url = self.url + path
        started = self._clock()
        attempt = 0
        outcome = None
        while True:
            attempt += 1
            _REQUESTS.inc()
            outcome = self._one_attempt(url, body, headers)
            outcome.attempts = attempt
            if outcome.transport_error is None and (
                    outcome.status < 400
                    or not self.policy.should_retry(
                        attempt, status=outcome.status,
                        retryable=outcome.retryable)):
                break
            if outcome.transport_error is not None and not (
                    self.policy.should_retry(attempt, transport_error=True)):
                break
            _RETRIES.inc()
            with self._lock:
                self.retries_total += 1
            retry_after = parse_retry_after(
                _header(outcome.headers, "Retry-After")
            )
            self._sleep(self.policy.backoff_seconds(attempt, retry_after))
        outcome.client_seconds = self._clock() - started
        outcome.trace_id = trace_id
        return outcome

    def get_json(self, path, timeout=None):
        """One unretried GET returning parsed JSON (ops surfaces).

        ``repro top`` and ``repro stats --url`` poll ``/statusz`` and
        ``/metrics`` through this; transport errors raise
        :class:`TransportError` so the caller can render "server gone".
        """
        status, headers, raw = self._transport(
            self.url + path, None, {}, timeout or self.timeout
        )
        if status >= 400:
            raise TransportError(f"GET {path} -> HTTP {status}")
        text = raw.decode("utf-8", "replace")
        content_type = _header(headers, "Content-Type") or ""
        if "json" in content_type:
            return json.loads(text)
        return text

    # -- attempt machinery ----------------------------------------------------

    def _one_attempt(self, url, body, headers):
        """One logical attempt: a single request, or a hedged pair."""
        hedge_after = self._hedge_threshold()
        if hedge_after is None:
            return self._single(url, body, headers)
        return self._hedged(url, body, headers, hedge_after)

    def _single(self, url, body, headers):
        started = self._clock()
        try:
            status, resp_headers, raw = self._transport(
                url, body, headers, self.timeout
            )
        except TransportError as error:
            return QueryOutcome(transport_error=str(error))
        self._observe(self._clock() - started)
        return self._outcome(status, resp_headers, raw)

    def _hedged(self, url, body, headers, hedge_after):
        """Race a second identical request once ``hedge_after`` elapses."""
        results = queue.Queue()

        def _fire(tag):
            started = self._clock()
            try:
                reply = self._transport(url, body, headers, self.timeout)
            except TransportError as error:
                results.put((tag, None, str(error)))
                return
            self._observe(self._clock() - started)
            results.put((tag, reply, None))

        threading.Thread(
            target=_fire, args=("primary",), daemon=True
        ).start()
        try:
            tag, reply, error = results.get(timeout=hedge_after)
        except queue.Empty:
            _HEDGES.inc()
            with self._lock:
                self.hedges_total += 1
            threading.Thread(
                target=_fire, args=("hedge",), daemon=True
            ).start()
            tag, reply, error = results.get()
            if tag == "hedge" and error is None:
                _HEDGE_WINS.inc()
                with self._lock:
                    self.hedge_wins_total += 1
            outcome = (
                QueryOutcome(transport_error=error) if reply is None
                else self._outcome(*reply)
            )
            outcome.hedged = True
            outcome.hedge_won = tag == "hedge" and error is None
            return outcome
        if reply is None:
            return QueryOutcome(transport_error=error)
        return self._outcome(*reply)

    def _outcome(self, status, headers, raw):
        body = None
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                body = raw.decode("utf-8", "replace")
        header = _header(headers, "X-Repro-Seconds")
        server_seconds = None
        if header:
            try:
                server_seconds = float(header)
            except ValueError:
                pass
        return QueryOutcome(
            status=status, headers=headers, body=body,
            server_seconds=server_seconds,
        )

    # -- the hedge threshold --------------------------------------------------

    def _observe(self, seconds):
        with self._lock:
            self._latencies.append(seconds)
            if len(self._latencies) > 512:
                del self._latencies[:256]

    def _hedge_threshold(self):
        """Seconds after which to hedge, or None (hedging off/not ready)."""
        if not self.policy.hedge_after_p95:
            return None
        with self._lock:
            if len(self._latencies) < MIN_HEDGE_SAMPLES:
                return None
            return max(0.001, nearest_rank(sorted(self._latencies), 0.95))

    def snapshot(self):
        with self._lock:
            return {
                "retries": self.retries_total,
                "hedges": self.hedges_total,
                "hedge_wins": self.hedge_wins_total,
                "latency_samples": len(self._latencies),
            }

    def __repr__(self):
        return f"ServeClient({self.url!r}, {self.policy!r})"


def _header(headers, name):
    """Case-insensitive header lookup over a plain dict."""
    if not headers:
        return None
    for key, value in headers.items():
        if key.lower() == name.lower():
            return value
    return None
