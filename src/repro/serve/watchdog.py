"""The stuck-query watchdog: find wedged requests and cut them loose.

Budgets are *cooperative* — the engine checks them at loop boundaries —
so a request can still wedge inside one long uncooperative step (a
pathological regex, an injected latency fault, a kernel-slow I/O).  The
watchdog is the backstop:

* every in-flight ``/query`` request registers in the
  :class:`InflightRegistry` (request id, tenant, worker thread id, and
  its live :class:`~repro.resilience.BudgetMeter`);
* a daemon thread scans the registry every ``interval`` seconds;
* past the **soft deadline** a request is stamped *stuck*: the
  ``serve.watchdog.stuck`` counter increments and a sampled stack of
  the offending worker thread (via ``sys._current_frames()``) lands in
  the audit log as a ``watchdog-stuck`` event — the flight recorder
  for "what was it doing?";
* past the **hard deadline** the watchdog force-expires the request's
  meter (:meth:`~repro.resilience.BudgetMeter.expire`): the engine's
  next cooperative check raises ``BudgetExceeded`` and the wedged
  evaluation unwinds into a *classified* ``exhausted`` response (HTTP
  504) with a complete trace and audit entry — never a hung socket,
  never an unclassified 500;
* a request that was stamped stuck but finished on its own increments
  ``serve.watchdog.recovered`` — the number chaos tests assert on.

Deadlines derive from each request's own budget deadline
(``soft_factor`` / ``hard_factor`` × the deadline) so a client asking
for a long timeout is not murdered early; absolute overrides
(``soft_seconds`` / ``hard_seconds``) exist for servers that want flat
limits.  ``scan_once(now)`` is public and clock-driven, so unit tests
exercise every transition deterministically with zero sleeps.
"""

from __future__ import annotations

import sys
import threading
import time
import traceback

from repro.obs.metrics import METRICS
from repro.analysis.racecheck import named_lock

_STUCK = METRICS.counter("serve.watchdog.stuck")
_EXPIRED = METRICS.counter("serve.watchdog.expired")
_RECOVERED = METRICS.counter("serve.watchdog.recovered")
_SCANS = METRICS.counter("serve.watchdog.scans")
_INFLIGHT_OLDEST = METRICS.gauge("serve.watchdog.oldest_seconds")

#: Default multiples of a request's budget deadline.
DEFAULT_SOFT_FACTOR = 1.5
DEFAULT_HARD_FACTOR = 3.0
#: Fallback deadline basis for requests with no budget deadline.
DEFAULT_DEADLINE_BASIS = 5.0


def sample_thread_stack(thread_id, limit=40):
    """The current stack of ``thread_id`` as a list of frame strings.

    Best-effort: the thread may finish between the frames snapshot and
    the format call, in which case an empty list comes back.
    """
    frame = sys._current_frames().get(thread_id)
    if frame is None:
        return []
    return [
        line.rstrip("\n")
        for line in traceback.format_stack(frame, limit=limit)
    ]


class _Entry:
    """One in-flight request, as the watchdog sees it."""

    __slots__ = ("request_id", "tenant", "sentence", "thread_id", "meter",
                 "started_at", "soft_at", "hard_at", "stuck", "expired")

    def __init__(self, request_id, tenant, sentence, thread_id, meter,
                 started_at, soft_at, hard_at):
        self.request_id = request_id
        self.tenant = tenant
        self.sentence = sentence
        self.thread_id = thread_id
        self.meter = meter
        self.started_at = started_at
        self.soft_at = soft_at
        self.hard_at = hard_at
        self.stuck = False
        self.expired = False


class InflightRegistry:
    """Thread-safe registry of in-flight requests for the watchdog."""

    def __init__(self, soft_factor=DEFAULT_SOFT_FACTOR,
                 hard_factor=DEFAULT_HARD_FACTOR,
                 soft_seconds=None, hard_seconds=None,
                 clock=time.monotonic):
        self.soft_factor = soft_factor
        self.hard_factor = hard_factor
        self.soft_seconds = soft_seconds
        self.hard_seconds = hard_seconds
        self._clock = clock
        self._lock = named_lock("serve.registry")
        self._entries = {}
        self.recovered_total = 0

    def _deadlines(self, deadline_seconds):
        basis = deadline_seconds or DEFAULT_DEADLINE_BASIS
        soft = (self.soft_seconds if self.soft_seconds is not None
                else basis * self.soft_factor)
        hard = (self.hard_seconds if self.hard_seconds is not None
                else basis * self.hard_factor)
        return soft, max(soft, hard)

    def register(self, request_id, tenant, sentence, meter,
                 thread_id=None, deadline_seconds=None):
        """Track one request; returns the entry to pass to :meth:`finish`."""
        now = self._clock()
        if deadline_seconds is None and meter is not None:
            deadline_seconds = meter.budget.deadline_seconds
        soft, hard = self._deadlines(deadline_seconds)
        entry = _Entry(
            request_id=request_id,
            tenant=tenant,
            sentence=sentence,
            thread_id=(thread_id if thread_id is not None
                       else threading.get_ident()),
            meter=meter,
            started_at=now,
            soft_at=now + soft,
            hard_at=now + hard,
        )
        with self._lock:
            self._entries[request_id] = entry
        return entry

    def finish(self, entry):
        """Drop a finished request; count it recovered if it was stuck."""
        with self._lock:
            self._entries.pop(entry.request_id, None)
            if entry.stuck and not entry.expired:
                self.recovered_total += 1
                _RECOVERED.inc()

    def entries(self):
        with self._lock:
            return list(self._entries.values())

    def snapshot_entries(self, now=None):
        """The in-flight request table for ``/statusz`` / ``repro top``.

        One dict per live request: id, tenant, a truncated sentence,
        age in seconds, and the stuck/expired stamps — the operator's
        "what is it chewing on right now" view.
        """
        if now is None:
            now = self._clock()
        return [
            {
                "request_id": entry.request_id,
                "tenant": entry.tenant,
                "sentence": (entry.sentence or "")[:80],
                "age_seconds": max(0.0, now - entry.started_at),
                "stuck": entry.stuck,
                "expired": entry.expired,
            }
            for entry in sorted(
                self.entries(), key=lambda entry: entry.started_at
            )
        ]

    def __len__(self):
        with self._lock:
            return len(self._entries)


class Watchdog:
    """Daemon thread scanning the registry for stuck requests."""

    def __init__(self, registry, interval=0.5, audit=None,
                 clock=time.monotonic, stack_limit=40, on_event=None):
        self.registry = registry
        self.interval = interval
        self.audit = audit
        # Event hook: called as on_event(kind, entry) for every
        # stuck/expired transition (the server wires hard expiries to a
        # flight-recorder dump).  Hook errors are counted, not raised.
        self.on_event = on_event
        self._clock = clock
        self.stack_limit = stack_limit
        self.stuck_total = 0
        self.expired_total = 0
        self._stop = threading.Event()
        self._thread = None

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self):
        while not self._stop.wait(self.interval):
            try:
                self.scan_once()
            except Exception:  # the watchdog must never die mid-flight
                METRICS.inc("serve.watchdog.scan_errors")

    # -- the scan (public: tests drive it with a fake clock) ------------------

    def scan_once(self, now=None):
        """One pass over in-flight requests; returns actions taken.

        Each action is ``(kind, entry)`` with kind ``"stuck"`` or
        ``"expired"``.  Safe against requests finishing concurrently —
        acting on an already-finished entry is a harmless no-op (its
        meter is done being read).
        """
        if now is None:
            now = self._clock()
        _SCANS.inc()
        actions = []
        oldest = 0.0
        for entry in self.registry.entries():
            oldest = max(oldest, now - entry.started_at)
            if not entry.stuck and now >= entry.soft_at:
                entry.stuck = True
                self.stuck_total += 1
                _STUCK.inc()
                self._report(entry, now, "watchdog-stuck")
                actions.append(("stuck", entry))
            if (entry.stuck and not entry.expired
                    and now >= entry.hard_at):
                entry.expired = True
                self.expired_total += 1
                _EXPIRED.inc()
                if entry.meter is not None:
                    entry.meter.expire("watchdog")
                self._report(entry, now, "watchdog-expired")
                actions.append(("expired", entry))
        _INFLIGHT_OLDEST.set(oldest)
        if self.on_event is not None:
            for kind, entry in actions:
                try:
                    self.on_event(kind, entry)
                except Exception:
                    METRICS.inc("serve.watchdog.hook_errors")
        return actions

    def _report(self, entry, now, event):
        """One audit event with the offending thread's sampled stack."""
        if self.audit is None:
            return
        try:
            self.audit.record_event(
                event,
                request_id=entry.request_id,
                tenant=entry.tenant,
                sentence=entry.sentence,
                elapsed_seconds=now - entry.started_at,
                thread_id=entry.thread_id,
                stack=sample_thread_stack(
                    entry.thread_id, limit=self.stack_limit
                ),
            )
        except Exception:  # audit I/O failure must not kill the scan
            METRICS.inc("serve.watchdog.report_errors")

    def snapshot(self):
        return {
            "inflight": len(self.registry),
            "stuck_total": self.stuck_total,
            "expired_total": self.expired_total,
            "recovered_total": self.registry.recovered_total,
            "interval": self.interval,
        }

    def __repr__(self):
        return (
            f"Watchdog(inflight={len(self.registry)}, "
            f"stuck={self.stuck_total}, expired={self.expired_total})"
        )
