"""``repro loadgen``: a stdlib load generator for the query service.

Drives N concurrent clients (plain threads + ``urllib``) against a
running ``repro serve`` instance with a configurable task mix, then
reports throughput and latency three ways:

* **client-side**: wall-clock per request as the client saw it
  (includes connection + serialization overhead);
* **server-side**: the ``X-Repro-Seconds`` header every ``/query``
  response carries — the server's own handling time for that request;
* **scraped**: after the run, one ``/metrics`` scrape parsed with
  :func:`repro.obs.export.parse_prometheus_text`, reading the server's
  sliding-window p99 for the ``/query`` endpoint.

The server-side and scraped numbers are computed from the same
observations (the server observes exactly the duration it reports in
the header), so when the run fits in the server's window the two p99s
agree — the cross-check that the live ops surface tells the truth.
The sustained-throughput benchmark asserts they agree within 5%.

Requests are spread round-robin over the task mix with a per-worker
offset, so every phrasing is exercised by every concurrency level
without any randomness (runs are reproducible).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import Counter

from repro.obs.export import (
    parse_prometheus_text,
    prometheus_metric_name,
    prometheus_sample_value,
)
from repro.obs.quantiles import nearest_rank

#: Transport failures (refused, reset, timeout) before a worker gives up.
MAX_TRANSPORT_FAILURES = 20


def default_task_mix():
    """The nine study-task reference phrasings (the bench workload)."""
    from repro.evaluation.tasks import TASKS

    return [task.good_phrasings()[0].text for task in TASKS]


class LoadgenConfig:
    """One load-generation run: who to hit, how hard, with what."""

    def __init__(self, url, concurrency=8, requests=90, duration=None,
                 task_mix=None, tenant="loadgen", tenants=None,
                 explain_every=0, timeout=30.0):
        self.url = url.rstrip("/")
        self.concurrency = max(1, int(concurrency))
        self.requests = requests
        self.duration = duration
        self.task_mix = list(task_mix) if task_mix else default_task_mix()
        self.tenant = tenant
        # Round-robin tenant assignment per worker when several are given.
        self.tenants = list(tenants) if tenants else [tenant]
        self.explain_every = explain_every
        self.timeout = timeout
        if requests is None and duration is None:
            raise ValueError("need a request count or a duration")


class LoadgenReport:
    """The outcome of one run, with the /metrics cross-check baked in."""

    def __init__(self, config, records, transport_errors, elapsed,
                 scraped_p99=None, scrape_error=None):
        self.config = config
        self.records = records            # [(http_status, client_s, server_s)]
        self.transport_errors = transport_errors
        self.elapsed = elapsed
        self.scraped_p99_seconds = scraped_p99
        self.scrape_error = scrape_error
        self.statuses = Counter(status for status, _, _ in records)

    # -- aggregate views ----------------------------------------------------

    @property
    def requests(self):
        return len(self.records)

    @property
    def internal_errors(self):
        """HTTP 5xx answers plus transport failures — must be zero."""
        return (
            sum(count for status, count in self.statuses.items()
                if status >= 500)
            + self.transport_errors
        )

    @property
    def qps(self):
        if self.elapsed <= 0:
            return 0.0
        return self.requests / self.elapsed

    def _percentiles(self, samples):
        if not samples:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0}
        ordered = sorted(samples)
        return {
            "count": len(ordered),
            "mean": sum(ordered) / len(ordered),
            "p50": nearest_rank(ordered, 0.50),
            "p95": nearest_rank(ordered, 0.95),
            "p99": nearest_rank(ordered, 0.99),
        }

    @property
    def client_latency(self):
        return self._percentiles([client for _, client, _ in self.records])

    @property
    def server_latency(self):
        return self._percentiles(
            [server for _, _, server in self.records if server is not None]
        )

    @property
    def p99_delta_fraction(self):
        """|scraped p99 − header p99| / header p99, or None if unknowable."""
        measured = self.server_latency["p99"]
        if self.scraped_p99_seconds is None or not measured:
            return None
        return abs(self.scraped_p99_seconds - measured) / measured

    def to_dict(self):
        return {
            "url": self.config.url,
            "concurrency": self.config.concurrency,
            "requests": self.requests,
            "elapsed_seconds": self.elapsed,
            "qps": self.qps,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "internal_errors": self.internal_errors,
            "transport_errors": self.transport_errors,
            "client_latency_seconds": self.client_latency,
            "server_latency_seconds": self.server_latency,
            "scraped_p99_seconds": self.scraped_p99_seconds,
            "p99_delta_fraction": self.p99_delta_fraction,
        }

    def render_text(self):
        client = self.client_latency
        server = self.server_latency
        lines = [
            f"loadgen: {self.requests} requests, "
            f"{self.config.concurrency} clients, "
            f"{self.elapsed:.2f}s elapsed",
            f"  throughput     {self.qps:8.1f} qps",
            f"  statuses       "
            + " ".join(f"{k}:{v}" for k, v in sorted(self.statuses.items())),
            f"  internal errs  {self.internal_errors:8d} "
            f"(transport {self.transport_errors})",
            f"  client latency p50 {client['p50'] * 1000:7.1f}ms  "
            f"p95 {client['p95'] * 1000:7.1f}ms  "
            f"p99 {client['p99'] * 1000:7.1f}ms",
            f"  server latency p50 {server['p50'] * 1000:7.1f}ms  "
            f"p95 {server['p95'] * 1000:7.1f}ms  "
            f"p99 {server['p99'] * 1000:7.1f}ms",
        ]
        if self.scraped_p99_seconds is not None:
            delta = self.p99_delta_fraction
            lines.append(
                f"  /metrics p99   {self.scraped_p99_seconds * 1000:7.1f}ms"
                + (f"  (delta {delta * 100:.1f}%)" if delta is not None
                   else "")
            )
        elif self.scrape_error:
            lines.append(f"  /metrics scrape failed: {self.scrape_error}")
        return "\n".join(lines)


def _post_query(config, sentence, tenant, explain):
    """One request; returns ``(http_status, client_s, server_s|None)``."""
    payload = {"sentence": sentence}
    if explain:
        payload["explain"] = True
    request = urllib.request.Request(
        config.url + "/query",
        data=json.dumps(payload).encode("utf-8"),
        headers={
            "Content-Type": "application/json",
            "X-Repro-Tenant": tenant,
        },
        method="POST",
    )
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=config.timeout) as resp:
            resp.read()
            status = resp.status
            header = resp.headers.get("X-Repro-Seconds")
    except urllib.error.HTTPError as error:
        error.read()
        status = error.code
        header = error.headers.get("X-Repro-Seconds")
    client_seconds = time.perf_counter() - started
    server_seconds = float(header) if header else None
    return status, client_seconds, server_seconds


def scrape_query_p99(url, timeout=10.0):
    """The server's sliding-window ``/query`` p99 from ``/metrics``."""
    with urllib.request.urlopen(url.rstrip("/") + "/metrics",
                                timeout=timeout) as resp:
        text = resp.read().decode("utf-8")
    metrics = parse_prometheus_text(text)
    name = prometheus_metric_name("window.endpoint:/query.seconds")
    return prometheus_sample_value(metrics, name, {"quantile": "0.99"})


def run_loadgen(config, on_progress=None):
    """Run the configured load and return a :class:`LoadgenReport`.

    Workers pull from a shared request counter (count mode), or loop
    until the deadline (duration mode); either way each worker walks
    the task mix round-robin from its own offset.  A worker stops after
    :data:`MAX_TRANSPORT_FAILURES` consecutive transport errors so a
    dead server fails the run quickly instead of hanging it.
    """
    records = []
    lock = threading.Lock()
    counter = {"issued": 0, "transport": 0}
    deadline = (
        time.perf_counter() + config.duration
        if config.duration is not None
        else None
    )

    def _next_request_index():
        with lock:
            if config.requests is not None and (
                    counter["issued"] >= config.requests):
                return None
            index = counter["issued"]
            counter["issued"] += 1
            return index

    def _worker(worker_index):
        tenant = config.tenants[worker_index % len(config.tenants)]
        step = 0
        failures = 0
        while True:
            if deadline is not None and time.perf_counter() >= deadline:
                return
            index = _next_request_index()
            if index is None:
                return
            sentence = config.task_mix[
                (worker_index + step) % len(config.task_mix)
            ]
            step += 1
            explain = (
                config.explain_every > 0
                and index % config.explain_every == 0
            )
            try:
                record = _post_query(config, sentence, tenant, explain)
            except (urllib.error.URLError, OSError):
                failures += 1
                with lock:
                    counter["transport"] += 1
                if failures >= MAX_TRANSPORT_FAILURES:
                    return
                time.sleep(0.05)
                continue
            failures = 0
            with lock:
                records.append(record)
                done = len(records)
            if on_progress is not None:
                on_progress(done)

    started = time.perf_counter()
    workers = [
        threading.Thread(target=_worker, args=(index,),
                         name=f"loadgen-{index}", daemon=True)
        for index in range(config.concurrency)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started

    scraped_p99 = None
    scrape_error = None
    try:
        scraped_p99 = scrape_query_p99(config.url, timeout=config.timeout)
    except (urllib.error.URLError, OSError, ValueError) as error:
        scrape_error = str(error)

    return LoadgenReport(
        config, records, counter["transport"], elapsed,
        scraped_p99=scraped_p99, scrape_error=scrape_error,
    )
