"""``repro loadgen``: a stdlib load generator for the query service.

Drives N concurrent clients (plain threads over
:class:`repro.serve.client.ServeClient`) against a running ``repro
serve`` instance with a configurable task mix, then reports throughput
and latency three ways:

* **client-side**: wall-clock per request as the client saw it
  (includes connection + serialization overhead, and — when retries
  are on — the full retry/backoff sequence);
* **server-side**: the ``X-Repro-Seconds`` header every ``/query``
  response carries — the server's own handling time for that request;
* **scraped**: after the run, one ``/metrics`` scrape parsed with
  :func:`repro.obs.export.parse_prometheus_text`, reading the server's
  sliding-window p99 for the ``/query`` endpoint.

Outcome accounting follows the serving failure taxonomy instead of
lumping everything non-200 together:

* **sheds** — 429/503 answers whose body carries an ``admission-*``
  error code: the server *chose* to turn the request away (rate limit,
  capacity, draining).  Sheds are not internal errors; with retries on
  the client honours their ``Retry-After`` and usually converts them
  into successes.
* **internal errors** — 5xx answers that are not sheds, plus transport
  failures.  The subset whose body lacks an ``error_class`` is counted
  separately as ``unclassified_5xx`` — the number that must be zero:
  every failure the server emits must be classified.
* **availability** — the fraction of logical requests whose *final*
  outcome was usable: a 2xx answer (exact or degraded) or a 422
  rejection (actionable user feedback).  Budget exhaustion (504),
  sheds that never got through, and transport failures all count
  against it.

Retries/hedging (``LoadgenConfig(retries=..., hedge=...)``) use the
shared :class:`repro.resilience.retry.RetryPolicy` with a per-worker
seed, so runs stay reproducible.  Requests are spread round-robin over
the task mix with a per-worker offset, so every phrasing is exercised
by every concurrency level without any randomness.
"""

from __future__ import annotations

import threading
import time
import urllib.request
from collections import Counter

from repro.obs.export import (
    parse_prometheus_text,
    prometheus_metric_name,
    prometheus_sample_value,
)
from repro.obs.quantiles import nearest_rank
from repro.resilience.retry import RetryPolicy
from repro.serve.client import ServeClient
from repro.analysis.racecheck import named_lock

#: Transport failures (refused, reset, timeout) before a worker gives up.
MAX_TRANSPORT_FAILURES = 20

#: Final statuses that count as "available" (a usable answer or
#: actionable feedback reached the client).
_AVAILABLE = frozenset({200, 422})


def default_task_mix():
    """The nine study-task reference phrasings (the bench workload)."""
    from repro.evaluation.tasks import TASKS

    return [task.good_phrasings()[0].text for task in TASKS]


class LoadgenConfig:
    """One load-generation run: who to hit, how hard, with what."""

    def __init__(self, url, concurrency=8, requests=90, duration=None,
                 task_mix=None, tenant="loadgen", tenants=None,
                 explain_every=0, timeout=30.0, retries=0, hedge=False,
                 retry_seed=0):
        self.url = url.rstrip("/")
        self.concurrency = max(1, int(concurrency))
        self.requests = requests
        self.duration = duration
        self.task_mix = list(task_mix) if task_mix else default_task_mix()
        self.tenant = tenant
        # Round-robin tenant assignment per worker when several are given.
        self.tenants = list(tenants) if tenants else [tenant]
        self.explain_every = explain_every
        self.timeout = timeout
        # 0 = one attempt, no retries (the ratchet-benchmark default);
        # N = up to N retries of retryable outcomes with backoff.
        self.retries = max(0, int(retries))
        self.hedge = bool(hedge)
        self.retry_seed = retry_seed
        if requests is None and duration is None:
            raise ValueError("need a request count or a duration")

    def retry_policy(self, worker_index):
        """The per-worker retry policy (seeded for reproducibility)."""
        if not self.retries and not self.hedge:
            return RetryPolicy.none()
        return RetryPolicy(
            max_attempts=self.retries + 1,
            seed=self.retry_seed + worker_index,
            hedge_after_p95=self.hedge,
        )


class LoadgenReport:
    """The outcome of one run, with the /metrics cross-check baked in."""

    def __init__(self, config, records, transport_errors, elapsed,
                 scraped_p99=None, scrape_error=None, sheds=0,
                 unclassified_5xx=0, retries=0, hedges=0, hedge_wins=0,
                 shed_statuses=None):
        self.config = config
        self.records = records            # [(http_status, client_s, server_s)]
        self.transport_errors = transport_errors
        self.elapsed = elapsed
        self.scraped_p99_seconds = scraped_p99
        self.scrape_error = scrape_error
        self.sheds = sheds                # admission-classified 429/503s
        self.unclassified_5xx = unclassified_5xx
        self.retries = retries
        self.hedges = hedges
        self.hedge_wins = hedge_wins
        self.shed_statuses = Counter(shed_statuses or ())
        self.statuses = Counter(status for status, _, _ in records)

    # -- aggregate views ----------------------------------------------------

    @property
    def requests(self):
        return len(self.records)

    @property
    def internal_errors(self):
        """Non-shed 5xx answers plus transport failures — must be zero.

        Admission sheds (429/503 with an ``admission-*`` body) are the
        server protecting itself, not failing; they are counted in
        :attr:`sheds` instead.
        """
        non_shed_5xx = (
            sum(count for status, count in self.statuses.items()
                if status >= 500)
            - sum(count for status, count in self.shed_statuses.items()
                  if status >= 500)
        )
        return non_shed_5xx + self.transport_errors

    @property
    def availability(self):
        """Final-outcome availability in [0, 1] (see module docstring)."""
        total = self.requests + self.transport_errors
        if total == 0:
            return 1.0
        usable = sum(
            count for status, count in self.statuses.items()
            if status in _AVAILABLE
        )
        return usable / total

    @property
    def qps(self):
        if self.elapsed <= 0:
            return 0.0
        return self.requests / self.elapsed

    def _percentiles(self, samples):
        if not samples:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0}
        ordered = sorted(samples)
        return {
            "count": len(ordered),
            "mean": sum(ordered) / len(ordered),
            "p50": nearest_rank(ordered, 0.50),
            "p95": nearest_rank(ordered, 0.95),
            "p99": nearest_rank(ordered, 0.99),
        }

    @property
    def client_latency(self):
        return self._percentiles([client for _, client, _ in self.records])

    @property
    def server_latency(self):
        return self._percentiles(
            [server for _, _, server in self.records if server is not None]
        )

    @property
    def p99_delta_fraction(self):
        """|scraped p99 − header p99| / header p99, or None if unknowable."""
        measured = self.server_latency["p99"]
        if self.scraped_p99_seconds is None or not measured:
            return None
        return abs(self.scraped_p99_seconds - measured) / measured

    def to_dict(self):
        return {
            "url": self.config.url,
            "concurrency": self.config.concurrency,
            "requests": self.requests,
            "elapsed_seconds": self.elapsed,
            "qps": self.qps,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "availability": self.availability,
            "sheds": self.sheds,
            "internal_errors": self.internal_errors,
            "unclassified_5xx": self.unclassified_5xx,
            "transport_errors": self.transport_errors,
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "client_latency_seconds": self.client_latency,
            "server_latency_seconds": self.server_latency,
            "scraped_p99_seconds": self.scraped_p99_seconds,
            "p99_delta_fraction": self.p99_delta_fraction,
        }

    def render_text(self):
        client = self.client_latency
        server = self.server_latency
        lines = [
            f"loadgen: {self.requests} requests, "
            f"{self.config.concurrency} clients, "
            f"{self.elapsed:.2f}s elapsed",
            f"  throughput     {self.qps:8.1f} qps",
            f"  availability   {self.availability * 100:8.2f} %",
            f"  statuses       "
            + " ".join(f"{k}:{v}" for k, v in sorted(self.statuses.items())),
            f"  sheds          {self.sheds:8d}",
            f"  internal errs  {self.internal_errors:8d} "
            f"(transport {self.transport_errors}, "
            f"unclassified 5xx {self.unclassified_5xx})",
            f"  retries        {self.retries:8d}"
            + (f"  hedges {self.hedges} (won {self.hedge_wins})"
               if self.hedges else ""),
            f"  client latency p50 {client['p50'] * 1000:7.1f}ms  "
            f"p95 {client['p95'] * 1000:7.1f}ms  "
            f"p99 {client['p99'] * 1000:7.1f}ms",
            f"  server latency p50 {server['p50'] * 1000:7.1f}ms  "
            f"p95 {server['p95'] * 1000:7.1f}ms  "
            f"p99 {server['p99'] * 1000:7.1f}ms",
        ]
        if self.scraped_p99_seconds is not None:
            delta = self.p99_delta_fraction
            lines.append(
                f"  /metrics p99   {self.scraped_p99_seconds * 1000:7.1f}ms"
                + (f"  (delta {delta * 100:.1f}%)" if delta is not None
                   else "")
            )
        elif self.scrape_error:
            lines.append(f"  /metrics scrape failed: {self.scrape_error}")
        return "\n".join(lines)


def _is_shed(outcome):
    """An admission-classified turn-away (429/503 + ``admission-*``)."""
    if outcome.status not in (429, 503):
        return False
    body = outcome.body
    return (
        isinstance(body, dict)
        and str(body.get("error", "")).startswith("admission-")
    )


def _is_unclassified_5xx(outcome):
    """A 5xx whose body does not carry the failure taxonomy."""
    if outcome.status is None or outcome.status < 500:
        return False
    if _is_shed(outcome):
        return False
    body = outcome.body
    return not (isinstance(body, dict) and body.get("error_class"))


def scrape_query_p99(url, timeout=10.0):
    """The server's sliding-window ``/query`` p99 from ``/metrics``."""
    with urllib.request.urlopen(url.rstrip("/") + "/metrics",
                                timeout=timeout) as resp:
        text = resp.read().decode("utf-8")
    metrics = parse_prometheus_text(text)
    name = prometheus_metric_name("window.endpoint:/query.seconds")
    return prometheus_sample_value(metrics, name, {"quantile": "0.99"})


def run_loadgen(config, on_progress=None):
    """Run the configured load and return a :class:`LoadgenReport`.

    Workers pull from a shared request counter (count mode), or loop
    until the deadline (duration mode); either way each worker walks
    the task mix round-robin from its own offset.  A worker stops after
    :data:`MAX_TRANSPORT_FAILURES` consecutive fully-failed requests so
    a dead server fails the run quickly instead of hanging it.
    """
    records = []
    shed_counter = Counter()
    lock = named_lock("serve.loadgen")
    counter = {"issued": 0, "transport": 0, "sheds": 0, "unclassified": 0}
    clients = []
    deadline = (
        time.perf_counter() + config.duration
        if config.duration is not None
        else None
    )

    def _next_request_index():
        with lock:
            if config.requests is not None and (
                    counter["issued"] >= config.requests):
                return None
            index = counter["issued"]
            counter["issued"] += 1
            return index

    def _worker(worker_index):
        tenant = config.tenants[worker_index % len(config.tenants)]
        client = ServeClient(
            config.url, tenant=tenant,
            retry_policy=config.retry_policy(worker_index),
            timeout=config.timeout,
        )
        with lock:
            clients.append(client)
        step = 0
        failures = 0
        while True:
            if deadline is not None and time.perf_counter() >= deadline:
                return
            index = _next_request_index()
            if index is None:
                return
            sentence = config.task_mix[
                (worker_index + step) % len(config.task_mix)
            ]
            step += 1
            explain = (
                config.explain_every > 0
                and index % config.explain_every == 0
            )
            outcome = client.query(sentence, explain=explain)
            if outcome.status is None:
                # Every attempt died in transport.
                failures += 1
                with lock:
                    counter["transport"] += 1
                if failures >= MAX_TRANSPORT_FAILURES:
                    return
                time.sleep(0.05)
                continue
            failures = 0
            with lock:
                records.append((
                    outcome.status, outcome.client_seconds,
                    outcome.server_seconds,
                ))
                if _is_shed(outcome):
                    counter["sheds"] += 1
                    shed_counter[outcome.status] += 1
                if _is_unclassified_5xx(outcome):
                    counter["unclassified"] += 1
                done = len(records)
            if on_progress is not None:
                on_progress(done)

    started = time.perf_counter()
    workers = [
        threading.Thread(target=_worker, args=(index,),
                         name=f"loadgen-{index}", daemon=True)
        for index in range(config.concurrency)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started

    scraped_p99 = None
    scrape_error = None
    try:
        scraped_p99 = scrape_query_p99(config.url, timeout=config.timeout)
    except (OSError, ValueError) as error:
        scrape_error = str(error)

    return LoadgenReport(
        config, records, counter["transport"], elapsed,
        scraped_p99=scraped_p99, scrape_error=scrape_error,
        sheds=counter["sheds"], unclassified_5xx=counter["unclassified"],
        retries=sum(client.retries_total for client in clients),
        hedges=sum(client.hedges_total for client in clients),
        hedge_wins=sum(client.hedge_wins_total for client in clients),
        shed_statuses=shed_counter,
    )
