"""Admission control for the query service.

Two gates stand between an HTTP request and ``NaLIX.ask``:

* a **server-wide inflight cap** (``max_inflight``) bounding how many
  queries execute concurrently — the worker-pool limit.  A request
  over the cap is turned away with HTTP 503 rather than queued, so an
  overloaded server sheds load instead of building an unbounded
  backlog (each ThreadingHTTPServer connection thread would otherwise
  pile up behind the evaluator);
* **per-tenant limits**: a token-bucket rate limit
  (``tenant_rate``/``tenant_burst`` requests per second) and an
  optional per-tenant inflight cap, keyed by the ``X-Repro-Tenant``
  header.  Over-rate requests get HTTP 429 with a ``Retry-After``
  hint computed from the bucket's refill rate.

Admission composes with the existing per-query
:class:`repro.resilience.QueryBudget`: admission decides *whether* a
query may start, the budget bounds *how much work* it may do once
running — together they bound the service's total concurrent work at
``max_inflight × budget``.

Everything here is thread-safe: one :class:`AdmissionController` is
shared by all of the server's request threads, and every decision
increments a ``serve.admission.*`` metric.
"""

from __future__ import annotations

import time

from repro.obs.metrics import METRICS
from repro.analysis.racecheck import named_lock

#: Default server-wide concurrent-query cap.
DEFAULT_MAX_INFLIGHT = 16

#: Default cap on distinct tenant states kept in memory.  Tenant names
#: are client-supplied, so an uncapped map is a cardinality bomb.
DEFAULT_MAX_TENANTS = 1024

_ADMITTED = METRICS.counter("serve.admission.admitted")
_TENANTS_EVICTED = METRICS.counter("serve.admission.tenants_evicted")
_REJECTED = {
    reason: METRICS.counter(f"serve.admission.rejected.{reason}")
    for reason in ("capacity", "rate", "tenant_capacity", "draining")
}
_INFLIGHT_GAUGE = METRICS.gauge("serve.inflight")


class AdmissionError(Exception):
    """A request turned away before reaching the pipeline.

    ``reason`` is one of ``capacity`` / ``rate`` / ``tenant_capacity``
    / ``draining``; ``http_status`` is the status the server should
    answer with, and ``retry_after_seconds`` (optional) becomes a
    ``Retry-After`` header.
    """

    def __init__(self, reason, message, http_status, retry_after_seconds=None):
        super().__init__(message)
        self.reason = reason
        self.http_status = http_status
        self.retry_after_seconds = retry_after_seconds


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``clock`` is injectable for deterministic tests.  Not itself
    locked — the :class:`AdmissionController` serializes access.
    """

    __slots__ = ("rate", "burst", "tokens", "_clock", "_last")

    def __init__(self, rate, burst=None, clock=time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self.tokens = self.burst
        self._clock = clock
        self._last = clock()

    def try_acquire(self, amount=1.0):
        """Take ``amount`` tokens; False (and no debit) when short."""
        now = self._clock()
        self.tokens = min(
            self.burst, self.tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self.tokens < amount:
            return False
        self.tokens -= amount
        return True

    def seconds_until(self, amount=1.0):
        """Seconds until ``amount`` tokens will be available."""
        missing = amount - self.tokens
        if missing <= 0:
            return 0.0
        return missing / self.rate


class _Ticket:
    """One admitted query; releasing is idempotent and exception-safe."""

    __slots__ = ("_controller", "tenant", "_released")

    def __init__(self, controller, tenant):
        self._controller = controller
        self.tenant = tenant
        self._released = False

    def release(self):
        if not self._released:
            self._released = True
            self._controller._release(self.tenant)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.release()
        return False


class AdmissionController:
    """Thread-safe admission decisions for the query endpoints.

    ``tenant_rate`` (requests/second, None = unlimited) and
    ``tenant_burst`` configure a token bucket *per tenant name*;
    ``tenant_inflight`` (None = unlimited) caps one tenant's
    concurrent queries; ``max_inflight`` caps the whole server's.
    """

    def __init__(self, max_inflight=DEFAULT_MAX_INFLIGHT, tenant_rate=None,
                 tenant_burst=None, tenant_inflight=None,
                 clock=time.monotonic, max_tenants=DEFAULT_MAX_TENANTS):
        self.max_inflight = max_inflight
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.tenant_inflight = tenant_inflight
        self.max_tenants = max_tenants
        self._clock = clock
        self._lock = named_lock("serve.admission")
        self._inflight = 0
        self._draining = False
        # name -> {"bucket", "inflight", "admitted", "rejected",
        # "last_seen"}.  Tenant names arrive on the wire, so this map
        # is client-controlled cardinality: capped at ``max_tenants``,
        # evicting the longest-idle zero-inflight states.
        self._tenants = {}

    # -- lifecycle ---------------------------------------------------------

    def start_draining(self):
        """Refuse all new admissions from now on (graceful shutdown)."""
        with self._lock:
            self._draining = True

    @property
    def draining(self):
        return self._draining

    @property
    def inflight(self):
        return self._inflight

    # -- the decision ------------------------------------------------------

    def admit(self, tenant):
        """Admit one query for ``tenant`` or raise :class:`AdmissionError`.

        Returns a ticket (also a context manager) whose ``release()``
        must run when the query finishes, on every path.
        """
        with self._lock:
            state = self._tenant_state(tenant)
            if self._draining:
                self._reject(state, "draining")
                raise AdmissionError(
                    "draining", "the server is draining for shutdown", 503
                )
            if (self.max_inflight is not None
                    and self._inflight >= self.max_inflight):
                self._reject(state, "capacity")
                raise AdmissionError(
                    "capacity",
                    f"server at capacity ({self.max_inflight} queries "
                    f"in flight)",
                    503,
                    retry_after_seconds=1,
                )
            if (self.tenant_inflight is not None
                    and state["inflight"] >= self.tenant_inflight):
                self._reject(state, "tenant_capacity")
                raise AdmissionError(
                    "tenant_capacity",
                    f"tenant {tenant!r} at capacity "
                    f"({self.tenant_inflight} queries in flight)",
                    429,
                    retry_after_seconds=1,
                )
            bucket = state["bucket"]
            if bucket is not None and not bucket.try_acquire():
                self._reject(state, "rate")
                raise AdmissionError(
                    "rate",
                    f"tenant {tenant!r} over its rate limit "
                    f"({self.tenant_rate:g}/s)",
                    429,
                    retry_after_seconds=max(1, int(bucket.seconds_until())),
                )
            self._inflight += 1
            state["inflight"] += 1
            state["admitted"] += 1
            _ADMITTED.inc()
            _INFLIGHT_GAUGE.set(self._inflight)
            return _Ticket(self, tenant)

    def _release(self, tenant):
        with self._lock:
            self._inflight -= 1
            state = self._tenants.get(tenant)
            if state is not None:
                state["inflight"] -= 1
            _INFLIGHT_GAUGE.set(self._inflight)

    def _tenant_state(self, tenant):
        state = self._tenants.get(tenant)
        if state is None:
            if (self.max_tenants is not None
                    and len(self._tenants) >= self.max_tenants):
                self._evict_idle_tenant()
            bucket = None
            if self.tenant_rate is not None:
                bucket = TokenBucket(
                    self.tenant_rate, self.tenant_burst, clock=self._clock
                )
            state = self._tenants[tenant] = {
                "bucket": bucket, "inflight": 0,
                "admitted": 0, "rejected": 0, "last_seen": self._clock(),
            }
        else:
            state["last_seen"] = self._clock()
        return state

    def _evict_idle_tenant(self):
        """Drop the longest-idle tenant with nothing in flight.

        Caller holds the lock.  Eviction only forgets rate-limiter
        state and counters for a tenant that is not currently using
        the server — a returning tenant simply starts a fresh bucket.
        When every tenant has queries in flight nothing is evicted;
        the map is then bounded by ``max_inflight`` anyway.
        """
        idle = [
            (state["last_seen"], name)
            for name, state in self._tenants.items()
            if state["inflight"] == 0
        ]
        if idle:
            _, victim = min(idle)
            self._tenants.pop(victim, None)
            _TENANTS_EVICTED.inc()

    def _reject(self, state, reason):
        state["rejected"] += 1
        _REJECTED[reason].inc()

    # -- introspection -----------------------------------------------------

    def snapshot(self):
        """Plain-dict view for ``/statusz``."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "draining": self._draining,
                "tenants": {
                    name: {
                        "inflight": state["inflight"],
                        "admitted": state["admitted"],
                        "rejected": state["rejected"],
                    }
                    for name, state in sorted(self._tenants.items())
                },
            }

    def __repr__(self):
        return (
            f"AdmissionController(inflight={self._inflight}/"
            f"{self.max_inflight}, tenants={len(self._tenants)})"
        )
