"""The serving brownout ladder: shed *work*, not requests.

Under sustained pressure the classic reaction is load-shedding — 429s
and 503s.  The admission controller already does that at the hard
capacity edge; the :class:`BrownoutController` sits *before* it and
degrades gracefully instead: as pressure rises it tightens every
admitted request's :class:`~repro.resilience.QueryBudget` and then
pre-degrades requests down the existing planned → naive → keyword
evaluation ladder (``ask(pre_degrade=...)``), so clients keep getting
answers — visibly lower-fidelity, classified ``degraded`` — rather
than errors.

Ladder levels (``LEVELS``):

====== ============= ==================== =============================
level  budget scale  pre-degrade          meaning
====== ============= ==================== =============================
0      1.0           —                    normal full-fidelity serving
1      0.5           —                    tighter budgets, same ladder
2      0.25          ``naive-flwor``      skip the planned evaluator
3      0.25          ``keyword-search``   serve only the keyword rung
====== ============= ==================== =============================

Inputs, evaluated by :meth:`BrownoutController.observe`:

* **pressure** — the admission controller's in-flight fraction
  (``inflight / max_inflight``); above ``pressure_high`` the ladder
  wants to ascend, below ``pressure_low`` to descend;
* **breakers** — any open :class:`~repro.resilience.breaker.\
  CircuitBreaker` also counts as pressure (a systemic failure class is
  burning budget; serving cheaper answers both relieves it and keeps
  availability up).

Transitions carry hysteresis: the ladder ascends at most one level per
``step_seconds`` of *sustained* pressure and descends one level per
``cooldown_seconds`` of sustained calm, so a single spike never flaps
it.  The clock is injectable; unit tests drive every step with a fake
clock and zero sleeps.

Half-open breaker probes bypass the ladder (the breaker must observe
the full-fidelity path to decide recovery), which is why
:class:`ReproServer` consults ``acquire_probe()`` before asking the
brownout controller for a plan.
"""

from __future__ import annotations

import time

from repro.obs.metrics import METRICS
from repro.analysis.racecheck import named_lock

#: (budget_scale, pre_degrade) per ladder level, mildest first.
LEVELS = (
    (1.0, None),
    (0.5, None),
    (0.25, "naive-flwor"),
    (0.25, "keyword-search"),
)

MAX_LEVEL = len(LEVELS) - 1

_LEVEL_GAUGE = METRICS.gauge("serve.brownout.level")
_ASCENDS = METRICS.counter("serve.brownout.ascends")
_DESCENDS = METRICS.counter("serve.brownout.descends")
_PRE_DEGRADED = METRICS.counter("serve.brownout.pre_degraded")
_SCALED = METRICS.counter("serve.brownout.budget_scaled")


class BrownoutController:
    """Adaptive budget-tightening + pre-degradation under pressure."""

    def __init__(self, pressure_high=0.8, pressure_low=0.5,
                 step_seconds=2.0, cooldown_seconds=5.0,
                 clock=time.monotonic):
        if not 0.0 <= pressure_low <= pressure_high:
            raise ValueError(
                "need 0 <= pressure_low <= pressure_high, got "
                f"low={pressure_low!r} high={pressure_high!r}"
            )
        self.pressure_high = pressure_high
        self.pressure_low = pressure_low
        self.step_seconds = step_seconds
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = named_lock("serve.brownout")
        self._level = 0
        # When the current pressure/calm streak started; None = no streak.
        self._hot_since = None
        self._calm_since = None
        _LEVEL_GAUGE.set(0)

    @property
    def level(self):
        with self._lock:
            return self._level

    def observe(self, pressure, breaker_open=False):
        """Feed one pressure sample; returns the (possibly new) level.

        Called once per admitted request (and by tests with a fake
        clock).  ``pressure`` is the in-flight fraction; an open
        breaker forces the sample hot regardless of pressure.
        """
        now = self._clock()
        hot = breaker_open or pressure >= self.pressure_high
        calm = not breaker_open and pressure <= self.pressure_low
        with self._lock:
            if hot:
                self._calm_since = None
                if self._hot_since is None:
                    self._hot_since = now
                elif (now - self._hot_since >= self.step_seconds
                        and self._level < MAX_LEVEL):
                    self._level += 1
                    self._hot_since = now
                    _ASCENDS.inc()
                    _LEVEL_GAUGE.set(self._level)
            elif calm:
                self._hot_since = None
                if self._calm_since is None:
                    self._calm_since = now
                elif (now - self._calm_since >= self.cooldown_seconds
                        and self._level > 0):
                    self._level -= 1
                    self._calm_since = now
                    _DESCENDS.inc()
                    _LEVEL_GAUGE.set(self._level)
            else:
                # The hysteresis band: neither streak accumulates.
                self._hot_since = None
                self._calm_since = None
            return self._level

    def plan(self, budget):
        """(budget, pre_degrade) for one request at the current level.

        ``budget`` may be None (no budget configured), in which case
        only the pre-degradation half of the level applies.
        """
        with self._lock:
            scale, pre_degrade = LEVELS[self._level]
        if budget is not None and scale != 1.0:
            budget = budget.scaled(scale)
            _SCALED.inc()
        if pre_degrade is not None:
            _PRE_DEGRADED.inc()
        return budget, pre_degrade

    def snapshot(self):
        with self._lock:
            scale, pre_degrade = LEVELS[self._level]
            return {
                "level": self._level,
                "budget_scale": scale,
                "pre_degrade": pre_degrade,
                "pressure_high": self.pressure_high,
                "pressure_low": self.pressure_low,
            }

    def __repr__(self):
        return f"BrownoutController(level={self.level})"
