"""The rule registry: every qlint diagnostic, its id and default severity.

Rule id prefixes partition the namespace:

* ``QS``  — scope/binding analysis over the emitted FLWOR AST;
* ``QT``  — type/operator compatibility;
* ``QM``  — ``mqf()`` sanity (Defs. 4–6 of the paper);
* ``QD``  — dead-code detection (tautologies, contradictions,
  unreachable clauses);
* ``QP``  — pipeline self-consistency (lexicon / Table 6 grammar /
  translator pattern tables, checked once per process).

Severity policy: **error** means the query is malformed — it would
crash the evaluator or is provably meaningless (unbound variable,
degenerate ``mqf``, bad arity) — and the post-translation gate rejects
it as ``invalid-query``.  **warning** means the query executes but is
suspicious (shadowing, unused bindings, contradictory predicates); the
gate lets it through and attaches the finding to
``QueryResult.warnings``.

Suppression: every analyzer entry point takes ``suppress`` — an
iterable of rule ids to silence (``analyze_query(expr,
suppress={"QS003"})``, ``NaLIX(analysis_suppress=...)``, ``repro lint
--suppress QS003``).  Extension: pass extra pass callables to
:class:`~repro.analysis.analyzer.QueryAnalyzer` via ``extra_passes``;
each receives ``(expr, report)`` after the built-in passes run.
"""

from __future__ import annotations

from repro.analysis.findings import ERROR, WARNING


class Rule:
    """One registered diagnostic."""

    __slots__ = ("rule_id", "severity", "title", "description")

    def __init__(self, rule_id, severity, title, description):
        self.rule_id = rule_id
        self.severity = severity
        self.title = title
        self.description = description

    def __repr__(self):
        return f"Rule({self.rule_id}, {self.severity}, {self.title!r})"


def _table(*rows):
    return {rule_id: Rule(rule_id, severity, title, description)
            for rule_id, severity, title, description in rows}


#: Every known rule, id -> Rule.
RULES = _table(
    # -- scope / binding ----------------------------------------------------
    ("QS001", ERROR, "unbound variable",
     "a variable referenced in a where/return/order-by clause is not "
     "bound by any in-scope for/let/quantifier"),
    ("QS002", WARNING, "variable shadowing",
     "a for/let/quantifier binding reuses a name that is already bound "
     "in an enclosing scope"),
    ("QS003", WARNING, "unused binding",
     "a for/let/quantifier binding is never referenced"),
    ("QS004", ERROR, "duplicate binding",
     "one for clause binds the same variable name twice"),
    # -- type / operator compatibility -------------------------------------
    ("QT001", WARNING, "non-numeric ordering comparison",
     "an ordering comparison (< <= > >=) has a string literal operand "
     "that does not look numeric"),
    ("QT002", ERROR, "aggregate over non-sequence",
     "an aggregate function (count/sum/avg/min/max) is applied to a "
     "literal instead of a sequence-typed argument"),
    ("QT003", ERROR, "wrong arity",
     "a built-in function is called with the wrong number of arguments"),
    ("QT004", ERROR, "unknown function",
     "a function call names no known built-in"),
    ("QT005", WARNING, "double negation",
     "not(not(...)) — the nesting almost certainly does not match the "
     "intended Figs. 6-7 scope"),
    # -- mqf sanity ---------------------------------------------------------
    ("QM001", ERROR, "mqf with fewer than two arguments",
     "mqf() relates variables; fewer than two arguments is degenerate"),
    ("QM002", ERROR, "mqf argument is not a variable",
     "every mqf() argument must be a variable reference"),
    ("QM003", ERROR, "degenerate mqf self-join",
     "mqf() needs at least two *distinct* variables; repeating one is "
     "a self-join that always holds"),
    # -- dead code ----------------------------------------------------------
    ("QD001", WARNING, "tautological predicate",
     "a predicate over literal values is always true and can be dropped"),
    ("QD002", WARNING, "contradictory predicate",
     "a predicate over literal values is always false; the query "
     "returns nothing"),
    ("QD003", WARNING, "unsatisfiable conjunction",
     "one conjunction equates a single-item variable with two "
     "different literal values"),
    ("QD004", WARNING, "unreachable clause",
     "the where condition is statically false, so the clauses after it "
     "can never produce output"),
    # -- pipeline self-consistency ------------------------------------------
    ("QP001", ERROR, "lexicon conflict",
     "one lemma phrase is claimed by two classification tables with "
     "conflicting token types (Tables 1-2)"),
    ("QP002", ERROR, "grammar table incomplete",
     "a token type is missing from the Table 6 attachment/production/"
     "name tables"),
    ("QP003", ERROR, "unproducible grammar symbol",
     "the grammar licenses an attachment to a token type no classifier "
     "rule can produce"),
    ("QP004", ERROR, "untranslatable lexicon payload",
     "a lexicon entry maps to an operator or aggregate the XQuery "
     "layer cannot execute"),
    ("QP005", ERROR, "classifier rule gap",
     "a token type has no Tables 1-2 provenance rule (or cites one "
     "that does not exist)"),
)


def rule(rule_id):
    """Look up a rule; raises KeyError for unknown ids."""
    return RULES[rule_id]


def severity_of(rule_id):
    return RULES[rule_id].severity


def render_rule_table():
    """The docs table: one line per rule (id, severity, title)."""
    lines = []
    for rule_id in sorted(RULES):
        entry = RULES[rule_id]
        lines.append(f"{rule_id}  {entry.severity:<8} {entry.title}")
    return "\n".join(lines)
