"""Loader for the declared lock hierarchy (``lockorder.toml``).

Shared by both halves of srclint: the static pass maps
``named_lock("x")`` sites to ranks, the runtime
:class:`~repro.analysis.racecheck.CheckedLock` maps live acquisitions
to the same ranks.  Python 3.11+ parses the file with :mod:`tomllib`;
on 3.10 a minimal hand parser covers the subset the file actually
uses (sections, string arrays, comments) — the repo takes no
third-party dependencies, so no ``tomli`` fallback.
"""

from __future__ import annotations

import os

DEFAULT_PATH = os.path.join(os.path.dirname(__file__), "lockorder.toml")


class LockOrder:
    """The declared hierarchy: lock names outermost-first."""

    __slots__ = ("order", "blocking_calls", "path", "_ranks")

    def __init__(self, order, blocking_calls=(), path=None):
        self.order = list(order)
        self.blocking_calls = list(blocking_calls)
        self.path = path
        self._ranks = {name: index for index, name in enumerate(self.order)}
        if len(self._ranks) != len(self.order):
            dupes = sorted(
                name for name in self._ranks
                if self.order.count(name) > 1
            )
            raise ValueError(
                f"duplicate lock names in hierarchy: {', '.join(dupes)}"
            )

    def rank(self, name):
        """0-based rank (0 = outermost), or None for undeclared names."""
        return self._ranks.get(name)

    def declared(self, name):
        return name in self._ranks

    def allows(self, held_name, acquired_name):
        """True when acquiring ``acquired_name`` under ``held_name`` is
        hierarchy-legal; undeclared names are not judged here (SC003
        reports them separately)."""
        held = self.rank(held_name)
        acquired = self.rank(acquired_name)
        if held is None or acquired is None:
            return True
        return acquired > held


def load_lock_order(path=None):
    """Parse ``lockorder.toml`` (or ``path``) into a :class:`LockOrder`."""
    path = path or DEFAULT_PATH
    with open(path, "rb") as handle:
        raw = handle.read()
    data = _parse_toml(raw)
    hierarchy = data.get("hierarchy", {})
    blocking = data.get("blocking", {})
    order = hierarchy.get("order", [])
    if not order:
        raise ValueError(f"{path}: [hierarchy] order is missing or empty")
    return LockOrder(order, blocking.get("calls", []), path=path)


def _parse_toml(raw):
    try:
        import tomllib
    except ImportError:
        return _parse_minimal(raw.decode("utf-8"))
    return tomllib.loads(raw.decode("utf-8"))


def _parse_minimal(text):
    """Parse the TOML subset lockorder.toml uses (Python 3.10 path).

    Supports ``[section]`` headers and ``key = [...]`` string arrays
    (single- or multi-line) plus ``key = "value"`` scalars; ``#``
    comments anywhere.  Anything fancier is a loud error rather than a
    silent misparse.
    """
    data = {}
    section = data
    pending_key = None
    pending_items = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(line).strip()
        if not stripped:
            continue
        if pending_key is not None:
            closed = stripped.endswith("]")
            body = stripped[:-1] if closed else stripped
            pending_items.extend(_parse_string_items(body, lineno))
            if closed:
                section[pending_key] = pending_items
                pending_key = pending_items = None
            continue
        if stripped.startswith("[") and stripped.endswith("]"):
            name = stripped[1:-1].strip()
            section = data.setdefault(name, {})
            continue
        if "=" not in stripped:
            raise ValueError(f"lockorder.toml:{lineno}: cannot parse {line!r}")
        key, _, value = stripped.partition("=")
        key, value = key.strip(), value.strip()
        if value.startswith("["):
            value = value[1:].strip()
            if value.endswith("]"):
                section[key] = _parse_string_items(value[:-1], lineno)
            else:
                pending_key = key
                pending_items = _parse_string_items(value, lineno)
        elif value.startswith('"') and value.endswith('"') and len(value) >= 2:
            section[key] = value[1:-1]
        else:
            raise ValueError(
                f"lockorder.toml:{lineno}: unsupported value {value!r}"
            )
    if pending_key is not None:
        raise ValueError(f"lockorder.toml: unterminated array {pending_key!r}")
    return data


def _strip_comment(line):
    out = []
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out)


def _parse_string_items(body, lineno):
    items = []
    for chunk in body.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if not (chunk.startswith('"') and chunk.endswith('"')):
            raise ValueError(
                f"lockorder.toml:{lineno}: expected quoted string, "
                f"got {chunk!r}"
            )
        items.append(chunk[1:-1])
    return items
