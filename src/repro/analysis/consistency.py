"""The pipeline consistency linter: do the tables agree with each other?

NaLIX is table-driven — the Tables 1-2 classification lexicon
(:mod:`repro.core.enums`), the Table 6 attachment grammar
(:mod:`repro.core.grammar`), and the translator's pattern payloads all
have to agree for the correctness story to hold.  This module
cross-checks them (rule ids ``QP001``-``QP005``):

* **QP001** — no lemma phrase is claimed by two classification tables
  with conflicting token types (``parser_vocabulary()`` would silently
  let the last table win);
* **QP002** — every token type appears in *all three* grammar tables
  (allowed parents, Table 6 production, human name);
* **QP003** — every parent the grammar licenses is a token type some
  classifier rule can actually produce;
* **QP004** — every lexicon payload is executable: operator phrases map
  onto the AST's comparison operators (or ``contains``), function
  phrases onto real XQuery aggregates, order phrases onto booleans;
* **QP005** — the classifier's provenance-rule table covers exactly the
  known token types.

``check_pipeline_consistency()`` runs all checks and caches the report
for the process (the tables are module-level constants, so one check
per interpreter suffices); ``ensure_pipeline_consistent()`` raises
:class:`PipelineInconsistency` on errors and is called when
``repro.core.interface`` is imported — a broken table fails fast at
import time instead of mis-translating queries at runtime.
"""

from __future__ import annotations

from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.rules import RULES


class PipelineInconsistency(Exception):
    """The lexicon/grammar/translator tables contradict each other."""

    def __init__(self, report):
        self.report = report
        rendered = "; ".join(
            finding.message for finding in report.errors[:5]
        )
        super().__init__(
            f"{len(report.errors)} pipeline consistency error(s): {rendered}"
        )


def _emit(report, rule_id, message, path):
    rule = RULES[rule_id]
    report.add(Finding(rule_id, rule.severity, message, path=path))


# -- individual checks (parameterized for tests) ------------------------------


def check_lexicon(report, tables=None):
    """QP001: no phrase claimed by two tables with different token types."""
    if tables is None:
        from repro.core import enums

        tables = {
            "COMMAND_PHRASES (CMT)": enums.COMMAND_PHRASES,
            "ORDER_PHRASES (OBT)": enums.ORDER_PHRASES,
            "FUNCTION_PHRASES (FT)": enums.FUNCTION_PHRASES,
            "OPERATOR_PHRASES (OT)": enums.OPERATOR_PHRASES,
            "CONNECTION_PREPOSITIONS (CM)": enums.CONNECTION_PREPOSITIONS,
            "QUANTIFIER_WORDS (QT)": enums.QUANTIFIER_WORDS,
            "NEGATION_WORDS (NEG)": enums.NEGATION_WORDS,
        }
    claimed = {}
    for table_name, phrases in tables.items():
        for phrase in phrases:
            owner = claimed.setdefault(phrase, table_name)
            if owner != table_name:
                _emit(
                    report, "QP001",
                    f"the phrase {phrase!r} is claimed by both {owner} "
                    f"and {table_name}; classification is ambiguous",
                    f"lexicon/{phrase}",
                )
    return report


def check_grammar_tables(report, allowed_parents=None, productions=None,
                         human_names=None):
    """QP002/QP003: the Table 6 tables cover the same producible symbols."""
    from repro.core.classifier import CLASSIFICATION_RULES
    from repro.core.grammar import ALLOWED_PARENTS, HUMAN_NAMES, PRODUCTIONS

    if allowed_parents is None:
        allowed_parents = ALLOWED_PARENTS
    if productions is None:
        productions = PRODUCTIONS
    if human_names is None:
        human_names = HUMAN_NAMES
    tables = {
        "allowed-parents": set(allowed_parents),
        "productions": set(productions),
        "human-names": set(human_names),
    }
    universe = set().union(*tables.values())
    for symbol in sorted(universe):
        missing = [name for name, table in tables.items()
                   if symbol not in table]
        if missing:
            _emit(
                report, "QP002",
                f"token type {symbol} is missing from the grammar "
                f"table(s): {', '.join(missing)}",
                f"grammar/{symbol}",
            )
    producible = set(CLASSIFICATION_RULES)
    for child, parents in allowed_parents.items():
        for parent in parents:
            if parent is None:
                continue
            if parent not in producible:
                _emit(
                    report, "QP003",
                    f"the grammar licenses {child} under {parent}, but "
                    "no classifier rule produces that token type",
                    f"grammar/{child}",
                )
    return report


def check_lexicon_payloads(report, operator_phrases=None,
                           function_phrases=None, order_phrases=None):
    """QP004: every lexicon payload is executable downstream."""
    from repro.core import enums
    from repro.xquery.ast import Comparison
    from repro.xquery.functions import builtin_arity, is_aggregate

    if operator_phrases is None:
        operator_phrases = enums.OPERATOR_PHRASES
    if function_phrases is None:
        function_phrases = enums.FUNCTION_PHRASES
    if order_phrases is None:
        order_phrases = enums.ORDER_PHRASES
    executable_ops = set(Comparison.OPS) | {"contains"}
    for phrase, symbol in operator_phrases.items():
        if symbol not in executable_ops:
            _emit(
                report, "QP004",
                f"operator phrase {phrase!r} maps to {symbol!r}, which "
                "the XQuery layer cannot execute",
                f"lexicon/{phrase}",
            )
    for phrase, function in function_phrases.items():
        if not is_aggregate(function) or builtin_arity(function) is None:
            _emit(
                report, "QP004",
                f"function phrase {phrase!r} maps to {function!r}, which "
                "is not an executable XQuery aggregate",
                f"lexicon/{phrase}",
            )
    for phrase, descending in order_phrases.items():
        if not isinstance(descending, bool):
            _emit(
                report, "QP004",
                f"order phrase {phrase!r} carries the sort direction "
                f"{descending!r} (expected a boolean)",
                f"lexicon/{phrase}",
            )
    return report


def check_classifier_rules(report, rules=None):
    """QP005: provenance rules cover exactly the known token types."""
    from repro.core.classifier import CLASSIFICATION_RULES
    from repro.core.token_types import TokenType

    if rules is None:
        rules = CLASSIFICATION_RULES
    known = set(TokenType.TOKENS) | set(TokenType.MARKERS) | {
        TokenType.UNKNOWN
    }
    for symbol in sorted(known - set(rules)):
        _emit(
            report, "QP005",
            f"token type {symbol} has no Tables 1-2 classification rule",
            f"classifier/{symbol}",
        )
    for symbol in sorted(set(rules) - known):
        _emit(
            report, "QP005",
            f"the classifier cites a rule for {symbol}, which is not a "
            "known token type",
            f"classifier/{symbol}",
        )
    return report


# -- entry points -------------------------------------------------------------

_CACHED_REPORT = None


def check_pipeline_consistency(refresh=False):
    """Run all QP checks; the report is cached per process."""
    global _CACHED_REPORT
    if _CACHED_REPORT is not None and not refresh:
        return _CACHED_REPORT
    report = AnalysisReport(subject="pipeline tables")
    check_lexicon(report)
    check_grammar_tables(report)
    check_lexicon_payloads(report)
    check_classifier_rules(report)
    _CACHED_REPORT = report
    return report


def ensure_pipeline_consistent():
    """Raise :class:`PipelineInconsistency` when any QP error exists."""
    report = check_pipeline_consistency()
    if report.errors:
        raise PipelineInconsistency(report)
    return report
