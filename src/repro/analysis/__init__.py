"""``repro.analysis`` — the qlint static analyzer and pipeline linter.

Two halves:

* :func:`analyze_query` walks an XQuery AST (or text) and reports typed
  findings — scope/binding, type/operator compatibility, ``mqf``
  sanity, dead code — before the query reaches the evaluator.  Wired
  always-on as a post-translation gate in
  :mod:`repro.core.interface` and exposed as ``repro lint``.
* :func:`check_pipeline_consistency` cross-checks the classification
  lexicon, Table 6 grammar, and translator payload tables against each
  other; :func:`ensure_pipeline_consistent` raises at import time of
  the interface when they disagree.

See DESIGN.md §8 for rule ids, the severity policy, and how to
suppress or extend rules.
"""

from repro.analysis.analyzer import QueryAnalyzer, analyze_query
from repro.analysis.consistency import (
    PipelineInconsistency,
    check_pipeline_consistency,
    ensure_pipeline_consistent,
)
from repro.analysis.corpus import PAPER_EXAMPLES, iter_corpus
from repro.analysis.findings import (
    AnalysisReport,
    Finding,
    attach_clause_provenance,
)
from repro.analysis.rules import RULES, render_rule_table, severity_of

__all__ = [
    "AnalysisReport",
    "Finding",
    "PAPER_EXAMPLES",
    "PipelineInconsistency",
    "QueryAnalyzer",
    "RULES",
    "analyze_query",
    "attach_clause_provenance",
    "check_pipeline_consistency",
    "ensure_pipeline_consistent",
    "iter_corpus",
    "render_rule_table",
    "severity_of",
]
