"""``repro.analysis`` — static analyzers: qlint, pipeline lint, srclint.

Three halves:

* :func:`analyze_query` walks an XQuery AST (or text) and reports typed
  findings — scope/binding, type/operator compatibility, ``mqf``
  sanity, dead code — before the query reaches the evaluator.  Wired
  always-on as a post-translation gate in
  :mod:`repro.core.interface` and exposed as ``repro lint``.
* :func:`check_pipeline_consistency` cross-checks the classification
  lexicon, Table 6 grammar, and translator payload tables against each
  other; :func:`ensure_pipeline_consistent` raises at import time of
  the interface when they disagree.
* :mod:`repro.analysis.srclint` turns the same philosophy on the
  repo's own Python source: lock-order, ContextVar hygiene, clock
  discipline, and thread/resource lifecycle checks (``repro
  lint-src``), with a runtime half in
  :mod:`repro.analysis.racecheck`.

See DESIGN.md §8 for qlint rule ids and DESIGN.md §13 for the srclint
rule catalog and the declared lock hierarchy.

This package ``__init__`` is deliberately lazy (PEP 562): low-level
runtime modules (:mod:`repro.obs.metrics`) import
:mod:`repro.analysis.racecheck` for :func:`named_lock`, and an eager
``__init__`` would drag the whole analyzer/core import graph into
every metrics import — a circular-import trap.  Submodules stay
stdlib-light at the top level; the heavyweight re-exports below are
resolved on first attribute access.
"""

_LAZY_EXPORTS = {
    "QueryAnalyzer": "repro.analysis.analyzer",
    "analyze_query": "repro.analysis.analyzer",
    "PipelineInconsistency": "repro.analysis.consistency",
    "check_pipeline_consistency": "repro.analysis.consistency",
    "ensure_pipeline_consistent": "repro.analysis.consistency",
    "PAPER_EXAMPLES": "repro.analysis.corpus",
    "iter_corpus": "repro.analysis.corpus",
    "AnalysisReport": "repro.analysis.findings",
    "Finding": "repro.analysis.findings",
    "attach_clause_provenance": "repro.analysis.findings",
    "RULES": "repro.analysis.rules",
    "render_rule_table": "repro.analysis.rules",
    "severity_of": "repro.analysis.rules",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: __getattr__ fires once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
