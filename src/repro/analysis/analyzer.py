"""The XQuery static analyzer: scope, types, mqf sanity, dead code.

Walks the FLWOR AST the translator emits (:mod:`repro.xquery.ast`) and
reports typed findings *before* the query reaches the evaluator, so
translator bugs surface as precise diagnostics instead of confusing
runtime errors or silently wrong answers (paper Sec. 3.2's
well-formedness claim, made checkable).

Passes (rule ids in :mod:`repro.analysis.rules`):

* **scope/binding** (QS...) — every variable reference resolves to an
  in-scope ``for``/``let``/quantifier binding; no shadowing; no unused
  or duplicate bindings.  Scoping follows XQuery: later bindings in one
  ``for`` see earlier ones, a ``let``'s initializer sees everything
  bound before it, quantifier variables are visible only in their
  ``satisfies`` condition.
* **type/operator compatibility** (QT...) — ordering comparisons do not
  mix in non-numeric literals, aggregates receive sequence-typed
  arguments, built-ins exist and are called with the right arity,
  negation nesting is sane.
* **mqf sanity** (QM...) — every ``mqf(...)`` names at least two
  distinct bound variables (Defs. 4-6), no degenerate self-joins.
* **dead code** (QD...) — predicates over literals that are statically
  true/false, conjunctions that equate one single-item variable with
  two different values, where-clauses that make the return unreachable.

The analyzer never raises on malformed input: anything surprising
becomes a finding.  ``analyze_query`` also accepts raw XQuery text.
"""

from __future__ import annotations

from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.rules import RULES
from repro.xquery import ast
from repro.xquery.functions import builtin_arity, builtin_names, is_aggregate

#: Comparison operators with ordering semantics (numeric intent in NaLIX).
_ORDERING_OPS = frozenset({"<", "<=", ">", ">="})

#: Expression kinds that denote sequences (legal aggregate arguments).
_SEQUENCE_KINDS = (ast.VarRef, ast.PathExpr, ast.FLWOR, ast.Sequence,
                   ast.FunctionCall)


class _Binding:
    """One in-scope variable: where it was bound and whether it's used."""

    __slots__ = ("name", "kind", "path", "used")

    def __init__(self, name, kind, path):
        self.name = name
        self.kind = kind        # "for" | "let" | "quantifier"
        self.path = path
        self.used = False

    @property
    def single_item(self):
        """for/quantifier variables bind one item at a time."""
        return self.kind in ("for", "quantifier")


class _Scope:
    """A lexical scope: a chain map of name -> _Binding."""

    def __init__(self, parent=None):
        self.parent = parent
        self.bindings = {}

    def lookup(self, name):
        scope = self
        while scope is not None:
            binding = scope.bindings.get(name)
            if binding is not None:
                return binding
            scope = scope.parent
        return None

    def bind(self, name, kind, path):
        binding = _Binding(name, kind, path)
        self.bindings[name] = binding
        return binding


class QueryAnalyzer:
    """One analyzer configuration (suppressed rules, extra passes)."""

    def __init__(self, suppress=(), extra_passes=()):
        unknown = sorted(set(suppress) - set(RULES))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
        self.suppress = frozenset(suppress)
        self.extra_passes = list(extra_passes)

    # -- entry point ---------------------------------------------------------

    def analyze(self, expr):
        """Analyze one AST (or XQuery text); returns an AnalysisReport."""
        if isinstance(expr, str):
            from repro.xquery.parser import parse_xquery

            expr = parse_xquery(expr)
        report = AnalysisReport(subject=expr.to_text())
        self._report = report
        self._expr(expr, _Scope(), "query")
        for extra in self.extra_passes:
            extra(expr, report)
        return report

    # -- finding emission ----------------------------------------------------

    def _emit(self, rule_id, message, path, fragment=None):
        if rule_id in self.suppress:
            return
        rule = RULES[rule_id]
        self._report.add(
            Finding(rule_id, rule.severity, message, path=path,
                    fragment=fragment)
        )

    @staticmethod
    def _fragment(expr):
        text = expr.to_text()
        return text if len(text) <= 120 else text[:117] + "..."

    # -- generic expression walk ---------------------------------------------

    def _expr(self, expr, scope, path):
        if isinstance(expr, ast.FLWOR):
            self._flwor(expr, scope, path)
        elif isinstance(expr, ast.VarRef):
            binding = scope.lookup(expr.name)
            if binding is None:
                self._emit(
                    "QS001",
                    f"variable ${expr.name} is referenced but never bound "
                    "by an in-scope for/let",
                    path, fragment=f"${expr.name}",
                )
            else:
                binding.used = True
        elif isinstance(expr, ast.PathExpr):
            self._expr(expr.start, scope, path)
        elif isinstance(expr, ast.Comparison):
            self._expr(expr.left, scope, path)
            self._expr(expr.right, scope, path)
            self._check_comparison(expr, path)
        elif isinstance(expr, ast.And):
            for item in expr.items:
                self._expr(item, scope, path)
            self._check_conjunction(expr, scope, path)
        elif isinstance(expr, ast.Or):
            for item in expr.items:
                self._expr(item, scope, path)
        elif isinstance(expr, ast.Not):
            self._check_negation(expr.operand, path)
            self._expr(expr.operand, scope, path)
        elif isinstance(expr, ast.FunctionCall):
            self._function_call(expr, scope, path)
        elif isinstance(expr, ast.Quantified):
            self._quantified(expr, scope, path)
        elif isinstance(expr, ast.Sequence):
            for item in expr.items:
                self._expr(item, scope, path)
        elif isinstance(expr, ast.ElementConstructor):
            for item in expr.content_items:
                self._expr(item, scope, path)
        # Literal / DocSource: nothing to check.

    # -- FLWOR scope analysis -------------------------------------------------

    def _flwor(self, flwor, scope, path):
        inner = _Scope(scope)
        declared = []
        where_dead = False
        for clause in flwor.clauses:
            if isinstance(clause, ast.ForClause):
                cpath = f"{path}/for"
                seen_here = set()
                for name, source in clause.bindings:
                    self._expr(source, inner, cpath)
                    if name in seen_here:
                        self._emit(
                            "QS004",
                            f"the for clause binds ${name} twice",
                            cpath, fragment=f"${name}",
                        )
                        continue
                    seen_here.add(name)
                    declared.append(
                        self._bind(inner, name, "for", cpath)
                    )
            elif isinstance(clause, ast.LetClause):
                cpath = f"{path}/let"
                self._expr(clause.expr, inner, cpath)
                declared.append(
                    self._bind(inner, clause.var, "let", cpath)
                )
            elif isinstance(clause, ast.WhereClause):
                cpath = f"{path}/where"
                self._expr(clause.condition, inner, cpath)
                if self._static_truth(clause.condition) is False:
                    where_dead = True
            elif isinstance(clause, ast.OrderByClause):
                cpath = f"{path}/order-by"
                for key, _descending in clause.keys:
                    self._expr(key, inner, cpath)
            elif isinstance(clause, ast.ReturnClause):
                cpath = f"{path}/return"
                self._expr(clause.expr, inner, cpath)
        if where_dead:
            self._emit(
                "QD004",
                "the where condition is statically false; the return "
                "clause is unreachable",
                f"{path}/where", fragment=self._fragment(flwor),
            )
        for binding in declared:
            if not binding.used:
                self._emit(
                    "QS003",
                    f"${binding.name} is bound but never referenced",
                    binding.path, fragment=f"${binding.name}",
                )

    def _bind(self, scope, name, kind, path):
        shadowed = scope.lookup(name)
        if shadowed is not None:
            self._emit(
                "QS002",
                f"${name} shadows the {shadowed.kind} binding at "
                f"{shadowed.path}",
                path, fragment=f"${name}",
            )
        return scope.bind(name, kind, path)

    # -- quantifiers ----------------------------------------------------------

    def _quantified(self, expr, scope, path):
        qpath = f"{path}/{expr.kind}"
        self._expr(expr.source, scope, qpath)
        inner = _Scope(scope)
        binding = self._bind(inner, expr.var, "quantifier", qpath)
        self._expr(expr.condition, inner, qpath)
        if not binding.used:
            self._emit(
                "QS003",
                f"quantifier variable ${binding.name} is never used in "
                "its satisfies condition",
                qpath, fragment=f"${binding.name}",
            )

    # -- function calls (builtins, aggregates, mqf) ---------------------------

    def _function_call(self, call, scope, path):
        name = call.name
        cpath = f"{path}/{name}()"
        if name == "mqf":
            self._check_mqf(call, cpath)
        elif name == "not" and len(call.args) == 1:
            self._check_negation(call.args[0], cpath)
        arity = builtin_arity(name)
        if arity is None:
            self._emit(
                "QT004",
                f"unknown function {name}()",
                cpath, fragment=self._fragment(call),
            )
        else:
            low, high = arity
            count = len(call.args)
            if count < low or (high is not None and count > high):
                expected = (
                    f"exactly {low}" if high == low
                    else f"at least {low}" if high is None
                    else f"{low}-{high}"
                )
                self._emit(
                    "QT003",
                    f"{name}() takes {expected} argument(s), got {count}",
                    cpath, fragment=self._fragment(call),
                )
        if is_aggregate(name):
            for arg in call.args:
                if isinstance(arg, ast.Literal):
                    self._emit(
                        "QT002",
                        f"{name}() aggregates a sequence, but its argument "
                        f"is the literal {arg.to_text()}",
                        cpath, fragment=self._fragment(call),
                    )
                elif not isinstance(arg, _SEQUENCE_KINDS):
                    self._emit(
                        "QT002",
                        f"{name}() aggregates a sequence, but its argument "
                        f"is {type(arg).__name__}",
                        cpath, fragment=self._fragment(call),
                    )
        for arg in call.args:
            self._expr(arg, scope, cpath)

    def _check_mqf(self, call, path):
        if len(call.args) < 2:
            self._emit(
                "QM001",
                f"mqf() relates variables and needs at least two "
                f"arguments, got {len(call.args)}",
                path, fragment=self._fragment(call),
            )
        names = []
        for arg in call.args:
            if isinstance(arg, ast.VarRef):
                names.append(arg.name)
            else:
                self._emit(
                    "QM002",
                    f"mqf() argument {arg.to_text()} is not a variable "
                    "reference",
                    path, fragment=self._fragment(call),
                )
        if len(call.args) >= 2 and names:
            if len(set(names)) < 2 or len(set(names)) < len(names):
                repeated = sorted(
                    {name for name in names if names.count(name) > 1}
                )
                detail = (
                    f"${', $'.join(repeated)} repeated" if repeated
                    else "fewer than two distinct variables"
                )
                self._emit(
                    "QM003",
                    f"mqf() is a degenerate self-join: {detail}",
                    path, fragment=self._fragment(call),
                )

    # -- type/operator checks -------------------------------------------------

    def _check_comparison(self, comparison, path):
        truth = self._static_truth(comparison)
        if truth is True:
            self._emit(
                "QD001",
                f"{comparison.to_text()} is always true",
                path, fragment=self._fragment(comparison),
            )
            return
        if truth is False:
            self._emit(
                "QD002",
                f"{comparison.to_text()} is always false",
                path, fragment=self._fragment(comparison),
            )
            return
        if comparison.op in _ORDERING_OPS:
            for side in (comparison.left, comparison.right):
                if (
                    isinstance(side, ast.Literal)
                    and isinstance(side.value, str)
                    and _as_number(side.value) is None
                ):
                    self._emit(
                        "QT001",
                        f"ordering comparison {comparison.op} against the "
                        f"non-numeric string {side.to_text()}",
                        path, fragment=self._fragment(comparison),
                    )

    def _check_negation(self, operand, path):
        if isinstance(operand, ast.Not) or (
            isinstance(operand, ast.FunctionCall) and operand.name == "not"
        ):
            self._emit(
                "QT005",
                "double negation: not(not(...))",
                path, fragment=self._fragment(operand),
            )

    # -- dead-code checks -----------------------------------------------------

    def _check_conjunction(self, conjunction, scope, path):
        """QD003: one And equates a single-item variable with two values.

        Only fires for for/quantifier bindings: those are one item per
        iteration, so ``$v = a and $v = b`` (a != b) cannot hold.  A
        ``let`` variable is a sequence with existential comparison
        semantics, where both conjuncts can be true at once.
        """
        equated = {}
        for item in conjunction.items:
            if not isinstance(item, ast.Comparison) or item.op != "=":
                continue
            pair = _var_literal_pair(item)
            if pair is None:
                continue
            name, value = pair
            binding = scope.lookup(name)
            if binding is None or not binding.single_item:
                continue
            equated.setdefault(name, []).append(value)
        for name, values in equated.items():
            distinct = {_comparable(value) for value in values}
            if len(distinct) > 1:
                rendered = ", ".join(repr(value) for value in values)
                self._emit(
                    "QD003",
                    f"${name} is equated with {len(distinct)} different "
                    f"values in one conjunction ({rendered}); the "
                    "predicate is unsatisfiable",
                    path, fragment=self._fragment(conjunction),
                )

    def _static_truth(self, expr):
        """True/False when the condition's value is decidable, else None."""
        if isinstance(expr, ast.Comparison):
            if not isinstance(expr.left, ast.Literal) or not isinstance(
                expr.right, ast.Literal
            ):
                return None
            return _compare_literals(expr.op, expr.left.value,
                                     expr.right.value)
        if isinstance(expr, ast.Not):
            truth = self._static_truth(expr.operand)
            return None if truth is None else not truth
        if isinstance(expr, ast.And):
            truths = [self._static_truth(item) for item in expr.items]
            if any(truth is False for truth in truths):
                return False
            if all(truth is True for truth in truths):
                return True
            return None
        if isinstance(expr, ast.Or):
            truths = [self._static_truth(item) for item in expr.items]
            if any(truth is True for truth in truths):
                return True
            if all(truth is False for truth in truths):
                return False
            return None
        return None


# -- literal helpers ----------------------------------------------------------


def _as_number(value):
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    return None


def _comparable(value):
    """Normalize a literal for cross-representation equality ("7" == 7)."""
    number = _as_number(value)
    if number is not None:
        return number
    return str(value).casefold()


def _compare_literals(op, left, right):
    """Decide a literal-vs-literal comparison; None when incomparable."""
    left_num, right_num = _as_number(left), _as_number(right)
    if left_num is not None and right_num is not None:
        left, right = left_num, right_num
    elif isinstance(left, str) and isinstance(right, str):
        left, right = left.casefold(), right.casefold()
    else:
        # Mixed string/number: equality is decidable (False), ordering
        # depends on the evaluator's coercion — stay silent.
        if op == "=":
            return False
        if op == "!=":
            return True
        return None
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return None
    return None


def _var_literal_pair(comparison):
    """``($name, literal_value)`` for var-vs-literal comparisons, or None."""
    left, right = comparison.left, comparison.right
    if isinstance(left, ast.VarRef) and isinstance(right, ast.Literal):
        return (left.name, right.value)
    if isinstance(right, ast.VarRef) and isinstance(left, ast.Literal):
        return (right.name, left.value)
    return None


def analyze_query(expr, suppress=(), extra_passes=()):
    """Analyze one AST or XQuery string; returns an AnalysisReport."""
    return QueryAnalyzer(
        suppress=suppress, extra_passes=extra_passes
    ).analyze(expr)


__all__ = ["QueryAnalyzer", "analyze_query", "builtin_names"]
