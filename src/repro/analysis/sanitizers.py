"""Thread and file-descriptor leak sanitizers for test sessions.

The serve/chaos suites start real servers, watchdogs, canaries, and
profilers; a missing ``stop()`` or an unclosed socket survives the
test that caused it and fails some *later* test mysteriously.  These
helpers snapshot the process at session start and diff at session end
— the pytest fixtures in ``tests/serve/conftest.py`` wire them in.

Stdlib-only, like everything under ``repro.analysis``.
"""

from __future__ import annotations

import os
import threading
import time


class LeakSnapshot:
    """What the process looked like when the snapshot was taken."""

    __slots__ = ("thread_idents", "thread_names", "fd_count")

    def __init__(self):
        threads = threading.enumerate()
        self.thread_idents = {t.ident for t in threads}
        self.thread_names = sorted(t.name for t in threads)
        self.fd_count = count_open_fds()


def count_open_fds():
    """Open descriptor count via /proc, or None off Linux."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def snapshot():
    return LeakSnapshot()


def check_thread_leaks(baseline, grace_seconds=5.0):
    """Names of threads born since ``baseline`` that refuse to die.

    New threads get ``grace_seconds`` (total) to finish: daemonized
    HTTP connection handlers and executor workers wind down shortly
    after their server stops, and joining them here keeps slow
    teardown from reading as a leak.
    """
    deadline = time.monotonic() + grace_seconds
    leaked = _new_threads(baseline)
    for thread in leaked:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        thread.join(timeout=remaining)
    return sorted(
        f"{t.name} (daemon={t.daemon})"
        for t in _new_threads(baseline)
    )


def _new_threads(baseline):
    return [
        t for t in threading.enumerate()
        if t.ident not in baseline.thread_idents and t.is_alive()
        and t is not threading.current_thread()
    ]


def check_fd_leaks(baseline, tolerance=8):
    """A human-readable complaint when fd count grew past tolerance.

    Returns None when clean or unmeasurable.  ``tolerance`` absorbs
    interpreter-internal descriptors (import machinery, random
    devices) that come and go legitimately.
    """
    if baseline.fd_count is None:
        return None
    now = count_open_fds()
    if now is None:
        return None
    grown = now - baseline.fd_count
    if grown > tolerance:
        return (
            f"file descriptors grew {baseline.fd_count} -> {now} "
            f"(+{grown}, tolerance {tolerance})"
        )
    return None
