"""srclint — concurrency & resource-safety static analysis.

qlint (DESIGN §8) lints the XQuery the pipeline *produces*; srclint
lints the Python source the pipeline *is*.  The serving stack (PRs
6–9) holds ~19 locks across 16 modules, runs five daemon threads, and
threads per-request state through six ContextVars — the hazard
surface here is deadlock, leaked context, and clock misuse, not
unbound variables.  Four static passes over stdlib ``ast``:

``SC`` — lock safety
    SC001  lock-order inversion against the declared hierarchy
           (``lockorder.toml``), from ``with`` nesting and resolved
           call edges
    SC002  blocking call (``ask()``, file/socket I/O, ``sleep``,
           thread ``join``, event ``wait``) reached under a held lock
    SC003  ``named_lock()`` name not declared in the hierarchy
    SC004  raw ``threading.Lock()``/``RLock()`` instead of
           ``named_lock()`` (unranked, invisible to racecheck)

``SV`` — ContextVar hygiene
    SV001  ``ContextVar.set()`` whose token is discarded
    SV002  ``ContextVar.set()`` with no ``reset()`` anywhere in the
           module
    SV003  set and reset in the same function but the reset is not on
           all exit paths (not in a ``finally``)

``SK`` — clock discipline
    SK001  ``time.time()`` (or a value derived from it) used in
           arithmetic/comparison — deadlines and intervals must use
           the monotonic clock
    SK002  wall-clock and monotonic values mixed in one expression

``SR`` — thread/resource lifecycle
    SR001  daemon thread with no ``join()`` path in scope
    SR002  container that only ever grows in a lock-owning class

Resolution is deliberately conservative: a call edge is only followed
when the receiver is ``self``, a known metric handle, a
receiver-name hint (``self.audit`` → ``AuditLog``), or a method name
unique among lock-owning classes.  Ambiguous names (``record``) are
skipped rather than guessed — srclint is a ratchet, and a ratchet
must not slip backwards into false positives.

Suppressions: a line in ``srclint-suppress.txt`` (rule, path suffix,
symbol, reason) or an inline ``# srclint: ignore[SC002]`` comment on
the flagged line.  See DESIGN.md §13.
"""

from __future__ import annotations

import ast
import json
import os

from repro.analysis.lockorder import load_lock_order

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: rule id -> (severity, short title)
SRC_RULES = {
    "SC001": (SEVERITY_ERROR, "lock-order inversion"),
    "SC002": (SEVERITY_ERROR, "blocking call under lock"),
    "SC003": (SEVERITY_ERROR, "undeclared lock name"),
    "SC004": (SEVERITY_WARNING, "raw lock bypasses named_lock()"),
    "SV001": (SEVERITY_ERROR, "ContextVar token discarded"),
    "SV002": (SEVERITY_ERROR, "ContextVar set without reset"),
    "SV003": (SEVERITY_WARNING, "ContextVar reset not on all exit paths"),
    "SK001": (SEVERITY_ERROR, "wall clock in interval arithmetic"),
    "SK002": (SEVERITY_ERROR, "wall and monotonic clocks mixed"),
    "SR001": (SEVERITY_ERROR, "daemon thread without join path"),
    "SR002": (SEVERITY_WARNING, "unbounded growth in lock-owning class"),
}

#: Files allowed to construct raw locks (the lock factory itself).
_RAW_LOCK_ALLOWED = ("analysis/racecheck.py",)

#: receiver attribute name -> class that usually sits behind it.
_RECEIVER_HINTS = {
    "audit": "AuditLog",
    "recorder": "FlightRecorder",
    "registry": "InflightRegistry",
    "admission": "AdmissionController",
    "breaker": "CircuitBreaker",
    "breakers": "BreakerBoard",
    "brownout": "BrownoutController",
    "sampler": "TailSampler",
    "slo": "SLOEngine",
    "window": "LatencyWindow",
    "canary": "CanaryRunner",
}

_METRIC_LOCK = "obs.metrics.metric"
_REGISTRY_LOCK = "obs.metrics.registry"
_METRIC_METHODS = ("inc", "observe", "set", "add")
_GROW_METHODS = ("append", "extend", "insert", "add", "setdefault",
                 "appendleft")
_SHRINK_METHODS = ("pop", "popleft", "popitem", "clear", "remove",
                   "discard")

#: Method names too generic for unique-owner call resolution: they
#: collide with builtin container/module operations, and resolving
#: ``self._samples.get(key)`` to ``FlightRecorder.get`` would invent
#: lock edges that do not exist.  Receiver hints still resolve these.
_GENERIC_METHODS = frozenset({
    "get", "set", "items", "keys", "values", "update", "copy",
    "setdefault", "pop", "popitem", "clear", "append", "appendleft",
    "extend", "insert", "remove", "discard", "add", "count", "index",
    "sort", "reverse", "split", "strip", "format", "encode", "decode",
    "popleft", "put", "start", "stop", "run", "close", "open",
    "flush", "write", "read", "send", "record", "reset", "snapshot",
})

DEFAULT_SUPPRESS_PATH = os.path.join(
    os.path.dirname(__file__), "srclint-suppress.txt"
)
#: Default scan root: the installed ``repro`` package directory.
DEFAULT_TARGET = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class SourceFinding:
    """One srclint diagnostic, anchored to file:line."""

    __slots__ = ("rule_id", "severity", "message", "path", "line", "col",
                 "symbol")

    def __init__(self, rule_id, message, path, line, col=0, symbol=""):
        self.rule_id = rule_id
        self.severity = SRC_RULES[rule_id][0]
        self.message = message
        self.path = path
        self.line = line
        self.col = col
        self.symbol = symbol

    def to_dict(self):
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
        }

    def render(self):
        where = f"{self.path}:{self.line}"
        tag = self.severity.upper()
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {tag} {self.rule_id}{sym}: {self.message}"

    def __repr__(self):
        return f"SourceFinding({self.rule_id}, {self.path}:{self.line})"


class Suppression:
    __slots__ = ("rule_id", "path_suffix", "symbol", "reason", "used")

    def __init__(self, rule_id, path_suffix, symbol, reason=""):
        self.rule_id = rule_id
        self.path_suffix = path_suffix
        self.symbol = symbol
        self.reason = reason
        self.used = False

    def matches(self, finding):
        if self.rule_id != finding.rule_id:
            return False
        norm = finding.path.replace(os.sep, "/")
        if not norm.endswith(self.path_suffix):
            return False
        if self.symbol.endswith("*"):
            return finding.symbol.startswith(self.symbol[:-1])
        return finding.symbol == self.symbol


def load_suppressions(path):
    """Parse a suppression file: ``RULE path-suffix symbol  reason``."""
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split(None, 3)
            if len(parts) < 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 'RULE path symbol [reason]'"
                )
            rule_id, suffix, symbol = parts[:3]
            if rule_id not in SRC_RULES:
                raise ValueError(f"{path}:{lineno}: unknown rule {rule_id}")
            reason = parts[3] if len(parts) == 4 else ""
            entries.append(Suppression(rule_id, suffix, symbol, reason))
    return entries


class SourceReport:
    """Aggregated findings for one lint run."""

    def __init__(self, findings, suppressed, files_scanned):
        self.findings = sorted(
            findings, key=lambda f: (f.path, f.line, f.rule_id)
        )
        self.suppressed = suppressed
        self.files_scanned = files_scanned

    @property
    def errors(self):
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self):
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    def ok(self, strict=False):
        if self.errors:
            return False
        return not (strict and self.warnings)

    def to_json(self):
        return json.dumps({
            "version": 1,
            "files": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": len(self.suppressed),
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
            },
            "ok": self.ok(),
        }, indent=2, sort_keys=True)

    def render_text(self):
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        lines.append(
            f"srclint: {self.files_scanned} files, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def github_lines(self):
        out = []
        for finding in self.findings:
            level = ("error" if finding.severity == SEVERITY_ERROR
                     else "warning")
            out.append(
                f"::{level} file={finding.path},line={finding.line}"
                f"::{finding.rule_id}: {finding.message}"
            )
        return out


# -- source model -----------------------------------------------------------


class _ClassModel:
    def __init__(self, name, node, path):
        self.name = name
        self.node = node
        self.path = path
        self.locks = {}        # attr -> lock name (named_lock literal)
        self.raw_locks = {}    # attr -> line (threading.Lock()/RLock())
        self.metric_attrs = set()
        self.thread_attrs = set()
        self.event_attrs = set()
        self.containers = {}   # attr -> (kind, line)
        self.grown = {}        # attr -> [lines]
        self.guarded_growth = set()
        self.shrunk = set()
        self.methods = {}      # name -> ast.FunctionDef

    @property
    def has_lock(self):
        return bool(self.locks or self.raw_locks)


class _ModuleModel:
    def __init__(self, path, tree, source_lines):
        self.path = path
        self.tree = tree
        self.source_lines = source_lines
        self.module_locks = {}      # name -> lock name
        self.module_metrics = set()  # names bound to metric handles/dicts
        self.contextvars = set()
        self.classes = {}
        self.functions = {}         # module-level def name -> node


def _attach_parents(tree):
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node


def _call_name(node):
    """Dotted name of a call's func, e.g. ``time.sleep`` — best effort."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_named_lock_call(node):
    if not isinstance(node, ast.Call):
        return False
    name = _call_name(node.func)
    return name in ("named_lock", "racecheck.named_lock") or (
        name is not None and name.endswith(".named_lock")
    )


def _named_lock_literal(node):
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


def _is_raw_lock_call(node):
    if not isinstance(node, ast.Call):
        return False
    return _call_name(node.func) in (
        "threading.Lock", "threading.RLock", "Lock", "RLock"
    )


def _is_metric_factory(node):
    if not isinstance(node, ast.Call):
        return False
    name = _call_name(node.func)
    return name in ("METRICS.counter", "METRICS.gauge", "METRICS.histogram")


def _contains_metric_factory(node):
    return any(
        _is_metric_factory(child) for child in ast.walk(node)
        if isinstance(child, ast.Call)
    )


def _is_thread_ctor(node):
    if not isinstance(node, ast.Call):
        return False
    return _call_name(node.func) in ("threading.Thread", "Thread")


def _is_daemon_thread_ctor(node):
    if not _is_thread_ctor(node):
        return False
    for keyword in node.keywords:
        if keyword.arg == "daemon" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is True
    return False


def _is_event_ctor(node):
    if not isinstance(node, ast.Call):
        return False
    return _call_name(node.func) in ("threading.Event", "Event")


def _empty_container_kind(node):
    """'list' / 'dict' / 'set' / 'deque' for growable-from-empty inits."""
    if isinstance(node, ast.List) and not node.elts:
        return "list"
    if isinstance(node, ast.Dict) and not node.keys:
        return "dict"
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        if name in ("set", "dict", "list") and not node.args:
            return name if name != "dict" else "dict"
        if name in ("deque", "collections.deque"):
            has_maxlen = any(k.arg == "maxlen" for k in node.keywords)
            if not has_maxlen and not node.args:
                return "deque"
    return None


def _self_attr(node):
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _collect_module(path, source):
    tree = ast.parse(source, filename=path)
    _attach_parents(tree)
    model = _ModuleModel(path, tree, source.splitlines())
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            model.classes[node.name] = _collect_class(node, path)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.functions[node.name] = node
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            _collect_module_assign(model, node)
    return model


def _collect_module_assign(model, node):
    value = node.value
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    names = [t.id for t in targets if isinstance(t, ast.Name)]
    if value is None or not names:
        return
    if _is_named_lock_call(value):
        literal = _named_lock_literal(value)
        if literal:
            for name in names:
                model.module_locks[name] = literal
    elif isinstance(value, ast.Call) and \
            _call_name(value.func) == "ContextVar":
        model.contextvars.update(names)
    elif _is_metric_factory(value) or (
            isinstance(value, (ast.Dict, ast.DictComp))
            and _contains_metric_factory(value)):
        model.module_metrics.update(names)


def _collect_class(node, path):
    model = _ClassModel(node.name, node, path)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods[item.name] = item
    for method_name, method in model.methods.items():
        in_init = method_name == "__init__"
        for child in ast.walk(method):
            _collect_class_stmt(model, child, in_init)
    return model


def _collect_class_stmt(model, node, in_init):
    if isinstance(node, ast.Assign):
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                if isinstance(target, ast.Subscript):
                    base = _self_attr(target.value)
                    if base is not None:
                        model.grown.setdefault(base, []).append(node.lineno)
                        if _len_guarded(node, base):
                            model.guarded_growth.add(base)
                continue
            value = node.value
            if _is_named_lock_call(value):
                literal = _named_lock_literal(value)
                if literal:
                    model.locks[attr] = literal
            elif _is_raw_lock_call(value):
                model.raw_locks[attr] = node.lineno
            elif _is_metric_factory(value):
                model.metric_attrs.add(attr)
            elif _is_thread_ctor(value):
                model.thread_attrs.add(attr)
            elif _is_event_ctor(value):
                model.event_attrs.add(attr)
            elif in_init and _empty_container_kind(value) is not None:
                model.containers[attr] = (
                    _empty_container_kind(value), node.lineno
                )
            elif not in_init:
                # Reassignment outside __init__ (trim/rebuild) bounds it.
                model.shrunk.add(attr)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                base = _self_attr(target.value)
                if base is not None:
                    model.shrunk.add(base)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        base = _self_attr(node.func.value)
        if base is None:
            return
        if node.func.attr in _GROW_METHODS:
            model.grown.setdefault(base, []).append(node.lineno)
            if _len_guarded(node, base):
                model.guarded_growth.add(base)
        elif node.func.attr in _SHRINK_METHODS:
            model.shrunk.add(base)


def _len_guarded(node, attr):
    """True when a growth site sits under ``if len(self.attr) <ok> ...``."""
    current = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, (ast.If, ast.While)):
            for child in ast.walk(current.test):
                if isinstance(child, ast.Call) and \
                        _call_name(child.func) == "len" and child.args and \
                        _self_attr(child.args[0]) == attr:
                    return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        current = getattr(current, "parent", None)
    return None


# -- the analyzer -----------------------------------------------------------


class SourceLinter:
    """Run all srclint passes over a set of parsed modules."""

    def __init__(self, lock_order=None):
        self.lock_order = lock_order or load_lock_order()
        self.modules = []
        self.findings = []
        self._dedup = set()
        # Global method resolution tables, built in load().
        self._method_locks = {}     # (class, method) -> set of lock names
        self._method_blocking = {}  # (class, method) -> [(what, ...)]
        self._method_owner = {}     # method name -> set of class names
        self._classes = {}          # class name -> _ClassModel

    # -- loading ------------------------------------------------------------

    def load(self, files):
        for path in files:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            self.modules.append(_collect_module(path, source))
        for module in self.modules:
            for cls in module.classes.values():
                self._classes[cls.name] = cls
                for method_name in cls.methods:
                    self._method_owner.setdefault(
                        method_name, set()
                    ).add(cls.name)
        for module in self.modules:
            for cls in module.classes.values():
                for method_name in cls.methods:
                    self._close_method(module, cls, method_name, ())

    def _close_method(self, module, cls, method_name, stack):
        """Transitive (self-call) closure of locks acquired / blocking
        calls made by ``cls.method_name``."""
        key = (cls.name, method_name)
        if key in self._method_locks:
            return self._method_locks[key], self._method_blocking[key]
        if key in stack:
            return set(), []
        method = cls.methods.get(method_name)
        if method is None:
            return set(), []
        locks = set()
        blocking = []
        for node in ast.walk(method):
            if isinstance(node, ast.With):
                for item in node.items:
                    name = self._resolve_lock_expr(
                        module, cls, item.context_expr
                    )
                    if name:
                        locks.add(name)
            elif isinstance(node, ast.Call):
                what = self._blocking_call(module, cls, method, node)
                if what:
                    blocking.append(what)
                if isinstance(node.func, ast.Attribute) and \
                        _self_attr(node.func.value) is not None and \
                        node.func.attr in cls.methods and \
                        node.func.attr != method_name:
                    sub_locks, sub_blocking = self._close_method(
                        module, cls, node.func.attr, stack + (key,)
                    )
                    locks.update(sub_locks)
                    blocking.extend(sub_blocking)
                metric = self._metric_acquisition(module, cls, node)
                if metric:
                    locks.add(metric)
        self._method_locks[key] = locks
        self._method_blocking[key] = blocking
        return locks, blocking

    # -- resolution helpers --------------------------------------------------

    def _resolve_lock_expr(self, module, cls, expr):
        attr = _self_attr(expr)
        if attr is not None and cls is not None:
            return cls.locks.get(attr)
        if isinstance(expr, ast.Name):
            return module.module_locks.get(expr.id)
        return None

    def _metric_acquisition(self, module, cls, call):
        """Lock implied by a metric-handle method call, if any."""
        if not isinstance(call.func, ast.Attribute):
            return None
        receiver = call.func.value
        method = call.func.attr
        if isinstance(receiver, ast.Name) and receiver.id == "METRICS":
            return _REGISTRY_LOCK
        if method not in _METRIC_METHODS:
            return None
        attr = _self_attr(receiver)
        if attr is not None and cls is not None and \
                attr in cls.metric_attrs:
            return _METRIC_LOCK
        if isinstance(receiver, ast.Name) and \
                receiver.id in module.module_metrics:
            return _METRIC_LOCK
        if isinstance(receiver, ast.Subscript) and \
                isinstance(receiver.value, ast.Name) and \
                receiver.value.id in module.module_metrics:
            return _METRIC_LOCK
        if _is_metric_factory(receiver):
            # METRICS.histogram("x").observe(v): registry then metric.
            return _METRIC_LOCK
        return None

    def _blocking_call(self, module, cls, func, call):
        """Describe the blocking nature of ``call``, or None."""
        name = _call_name(call.func)
        if name in self.lock_order.blocking_calls or name in (
                "sleep", "open"):
            return name
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        receiver = call.func.value
        if method == "ask":
            return "ask()"
        if method == "join":
            attr = _self_attr(receiver)
            if attr is not None and cls is not None and \
                    attr in cls.thread_attrs:
                return f"self.{attr}.join()"
            if isinstance(receiver, ast.Name) and (
                    "thread" in receiver.id.lower()
                    or "worker" in receiver.id.lower()
                    or self._is_local_thread(func, receiver.id)):
                return f"{receiver.id}.join()"
            return None
        if method == "wait":
            attr = _self_attr(receiver)
            if attr is not None and cls is not None and \
                    attr in cls.event_attrs:
                return f"self.{attr}.wait()"
        return None

    def _is_local_thread(self, func, name):
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and _is_thread_ctor(node.value):
                if any(isinstance(t, ast.Name) and t.id == name
                       for t in node.targets):
                    return True
        return False

    def _resolve_call_closure(self, module, cls, call):
        """(locks, blocking) for a call's callee, or empty sets."""
        if not isinstance(call.func, ast.Attribute):
            if isinstance(call.func, ast.Name) and \
                    call.func.id in module.functions:
                return self._close_function(module, call.func.id)
            return set(), []
        method = call.func.attr
        receiver = call.func.value
        attr = _self_attr(receiver)
        if attr is not None and cls is not None and method in cls.methods:
            return (self._method_locks.get((cls.name, method), set()),
                    self._method_blocking.get((cls.name, method), []))
        hint = None
        if isinstance(receiver, ast.Attribute):
            hint = receiver.attr
        elif isinstance(receiver, ast.Name):
            hint = receiver.id
        if hint in _RECEIVER_HINTS:
            target = self._classes.get(_RECEIVER_HINTS[hint])
            if target is not None and method in target.methods:
                return (self._method_locks.get((target.name, method), set()),
                        self._method_blocking.get((target.name, method), []))
        if method in _GENERIC_METHODS:
            return set(), []
        owners = {
            owner for owner in self._method_owner.get(method, ())
            if self._classes[owner].has_lock
        }
        if len(owners) == 1:
            owner = owners.pop()
            return (self._method_locks.get((owner, method), set()),
                    self._method_blocking.get((owner, method), []))
        return set(), []

    def _close_function(self, module, name):
        """Direct lock/blocking closure for a module-level function."""
        func = module.functions.get(name)
        if func is None:
            return set(), []
        locks = set()
        blocking = []
        for node in ast.walk(func):
            if isinstance(node, ast.With):
                for item in node.items:
                    lock = self._resolve_lock_expr(module, None, item.context_expr)
                    if lock:
                        locks.add(lock)
            elif isinstance(node, ast.Call):
                what = self._blocking_call(module, None, func, node)
                if what:
                    blocking.append(what)
        return locks, blocking

    # -- findings -----------------------------------------------------------

    def _emit(self, rule_id, message, module, line, symbol):
        key = (rule_id, module.path, line, message)
        if key in self._dedup:
            return
        if self._inline_suppressed(module, line, rule_id):
            return
        self._dedup.add(key)
        self.findings.append(
            SourceFinding(rule_id, message, module.path, line, symbol=symbol)
        )

    def _inline_suppressed(self, module, line, rule_id):
        if 1 <= line <= len(module.source_lines):
            text = module.source_lines[line - 1]
            marker = "# srclint: ignore["
            index = text.find(marker)
            if index >= 0:
                ids = text[index + len(marker):].split("]")[0]
                return rule_id in [x.strip() for x in ids.split(",")]
        return False

    # -- pass: locks (SC) ----------------------------------------------------

    def run(self):
        for module in self.modules:
            self._pass_lock_declarations(module)
            self._pass_lock_flow(module)
            self._pass_contextvars(module)
            self._pass_clock(module)
            self._pass_threads(module)
            self._pass_containers(module)
        return self.findings

    def _pass_lock_declarations(self, module):
        allowed_raw = any(
            module.path.replace(os.sep, "/").endswith(suffix)
            for suffix in _RAW_LOCK_ALLOWED
        )
        for node in ast.walk(module.tree):
            if _is_named_lock_call(node):
                literal = _named_lock_literal(node)
                if literal and not self.lock_order.declared(literal):
                    self._emit(
                        "SC003",
                        f"named_lock({literal!r}) is not declared in "
                        f"{os.path.basename(self.lock_order.path or 'lockorder.toml')}",
                        module, node.lineno, self._symbol_at(module, node),
                    )
            elif not allowed_raw and isinstance(node, ast.Assign) and \
                    _is_raw_lock_call(node.value):
                self._emit(
                    "SC004",
                    "raw threading lock; use named_lock(...) so the "
                    "hierarchy and racecheck can see it",
                    module, node.lineno, self._symbol_at(module, node),
                )

    def _symbol_at(self, module, node):
        current = getattr(node, "parent", None)
        parts = []
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                parts.append(current.name)
            current = getattr(current, "parent", None)
        return ".".join(reversed(parts)) or "<module>"

    def _pass_lock_flow(self, module):
        for cls in module.classes.values():
            for method_name, method in cls.methods.items():
                symbol = f"{cls.name}.{method_name}"
                self._walk_held(module, cls, method, method.body, [], symbol)
        for name, func in module.functions.items():
            self._walk_held(module, None, func, func.body, [], name)

    def _walk_held(self, module, cls, func, body, held, symbol):
        for stmt in body:
            self._walk_stmt(module, cls, func, stmt, held, symbol)

    def _walk_stmt(self, module, cls, func, stmt, held, symbol):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, possibly on another thread; its
            # body starts with nothing held.
            self._walk_held(module, cls, stmt, stmt.body, [], symbol)
            return
        if isinstance(stmt, ast.With):
            acquired = []
            for item in stmt.items:
                lock = self._resolve_lock_expr(module, cls, item.context_expr)
                if lock:
                    self._check_acquisition(
                        module, held, lock, stmt.lineno, symbol
                    )
                    acquired.append(lock)
                self._scan_expr(module, cls, func, item.context_expr,
                                held, symbol)
            self._walk_held(module, cls, func, stmt.body,
                            held + acquired, symbol)
            return
        for field in ast.iter_child_nodes(stmt):
            if isinstance(field, ast.stmt):
                self._walk_stmt(module, cls, func, field, held, symbol)
            elif isinstance(field, ast.expr):
                self._scan_expr(module, cls, func, field, held, symbol)
            elif isinstance(field, ast.excepthandler):
                self._walk_held(module, cls, func, field.body, held, symbol)

    def _scan_expr(self, module, cls, func, expr, held, symbol):
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda,)):
                continue
            if not isinstance(node, ast.Call):
                continue
            if not held:
                continue
            what = self._blocking_call(module, cls, func, node)
            if what:
                self._emit(
                    "SC002",
                    f"blocking call {what} while holding "
                    f"{', '.join(repr(h) for h in held)}",
                    module, node.lineno, symbol,
                )
            callee_locks, callee_blocking = self._resolve_call_closure(
                module, cls, node
            )
            for lock in callee_locks:
                self._check_acquisition(
                    module, held, lock, node.lineno, symbol
                )
            for what in callee_blocking:
                self._emit(
                    "SC002",
                    f"call reaches blocking {what} while holding "
                    f"{', '.join(repr(h) for h in held)}",
                    module, node.lineno, symbol,
                )
            metric = self._metric_acquisition(module, cls, node)
            if metric:
                self._check_acquisition(
                    module, held, metric, node.lineno, symbol
                )

    def _check_acquisition(self, module, held, lock, line, symbol):
        for holding in held:
            if holding == lock:
                continue  # re-entrant with on the same named lock
            if not self.lock_order.allows(holding, lock):
                self._emit(
                    "SC001",
                    f"acquires {lock!r} (rank "
                    f"{self.lock_order.rank(lock)}) while holding "
                    f"{holding!r} (rank {self.lock_order.rank(holding)}); "
                    "declared hierarchy requires the reverse nesting",
                    module, line, symbol,
                )

    # -- pass: ContextVars (SV) ---------------------------------------------

    def _pass_contextvars(self, module):
        if not module.contextvars:
            return
        resets = {}  # var name -> [reset call nodes]
        sets = []    # (var name, call node)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            if not isinstance(node.func.value, ast.Name):
                continue
            var = node.func.value.id
            if var not in module.contextvars:
                continue
            if node.func.attr == "set":
                sets.append((var, node))
            elif node.func.attr == "reset":
                resets.setdefault(var, []).append(node)
        for var, call in sets:
            symbol = self._symbol_at(module, call)
            parent = getattr(call, "parent", None)
            captured = isinstance(parent, (ast.Assign, ast.AnnAssign)) or (
                isinstance(parent, ast.Call)  # e.g. tokens.append(set())
            ) or isinstance(parent, ast.withitem)
            if not captured:
                self._emit(
                    "SV001",
                    f"{var}.set() token is discarded; capture it and "
                    f"reset in a finally block",
                    module, call.lineno, symbol,
                )
                continue
            if not resets.get(var):
                self._emit(
                    "SV002",
                    f"{var}.set() has no matching {var}.reset() anywhere "
                    f"in this module; the context leaks",
                    module, call.lineno, symbol,
                )
                continue
            func = self._enclosing_function(call)
            if func is None or func.name == "__enter__":
                continue  # reset lives in the paired __exit__
            local_resets = [
                r for r in resets[var]
                if self._enclosing_function(r) is func
            ]
            if not local_resets:
                continue  # reset in another method (activation object)
            if not all(self._in_finally(r, func) for r in local_resets):
                self._emit(
                    "SV003",
                    f"{var}.reset() in {func.name} is not in a finally "
                    f"block; an exception between set and reset leaks "
                    f"the context",
                    module, call.lineno, symbol,
                )

    def _enclosing_function(self, node):
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = getattr(current, "parent", None)
        return None

    def _in_finally(self, node, func):
        current = getattr(node, "parent", None)
        child = node
        while current is not None and current is not func:
            if isinstance(current, ast.Try):
                if any(child is stmt or self._contains(stmt, child)
                       for stmt in current.finalbody):
                    return True
            child = current
            current = getattr(current, "parent", None)
        return False

    @staticmethod
    def _contains(tree, target):
        return any(node is target for node in ast.walk(tree))

    # -- pass: clocks (SK) ---------------------------------------------------

    def _pass_clock(self, module):
        wall = set()
        mono = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            name = _call_name(value.func)
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            keys = [self._taint_key(t) for t in targets]
            keys = [k for k in keys if k]
            if name == "time.time":
                wall.update(keys)
            elif name in ("time.monotonic", "time.perf_counter",
                          "monotonic", "perf_counter"):
                mono.update(keys)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.BinOp, ast.Compare)):
                continue
            parent = getattr(node, "parent", None)
            if isinstance(parent, (ast.BinOp, ast.Compare)):
                continue  # report on the outermost arithmetic node only
            has_wall, has_mono = self._expr_taints(node, wall, mono)
            if not has_wall:
                continue
            symbol = self._symbol_at(module, node)
            if has_mono:
                self._emit(
                    "SK002",
                    "expression mixes wall-clock time.time() with "
                    "monotonic clock values",
                    module, node.lineno, symbol,
                )
            else:
                self._emit(
                    "SK001",
                    "wall-clock time.time() used in interval/deadline "
                    "arithmetic; use time.monotonic() (wall clock is for "
                    "serialized timestamps only)",
                    module, node.lineno, symbol,
                )

    @staticmethod
    def _taint_key(target):
        if isinstance(target, ast.Name):
            return target.id
        attr = _self_attr(target)
        if attr is not None:
            return f"self.{attr}"
        return None

    def _expr_taints(self, expr, wall, mono):
        has_wall = has_mono = False
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name == "time.time":
                    has_wall = True
                elif name in ("time.monotonic", "time.perf_counter"):
                    has_mono = True
            key = self._taint_key(node) if isinstance(
                node, (ast.Name, ast.Attribute)) else None
            if key in wall:
                has_wall = True
            elif key in mono:
                has_mono = True
        return has_wall, has_mono

    # -- pass: threads (SR001) ----------------------------------------------

    def _pass_threads(self, module):
        for node in ast.walk(module.tree):
            if not _is_daemon_thread_ctor(node):
                continue
            symbol = self._symbol_at(module, node)
            parent = getattr(node, "parent", None)
            enclosing_class = self._enclosing_class(module, node)
            if isinstance(parent, ast.Assign) and any(
                    _self_attr(t) is not None for t in parent.targets):
                if enclosing_class is not None and \
                        self._class_has_join(enclosing_class):
                    continue
            else:
                func = self._enclosing_function(node)
                if func is not None and self._function_has_join(func):
                    continue
            self._emit(
                "SR001",
                "daemon thread has no join() path; provide a stop "
                "event and a bounded join so shutdown is clean",
                module, node.lineno, symbol,
            )

    def _enclosing_class(self, module, node):
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return module.classes.get(current.name)
            current = getattr(current, "parent", None)
        return None

    @staticmethod
    def _class_has_join(cls):
        for method in cls.methods.values():
            for node in ast.walk(method):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "join" and \
                        not isinstance(node.func.value, ast.Constant):
                    return True
        return False

    @staticmethod
    def _function_has_join(func):
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "join" and \
                    not isinstance(node.func.value, ast.Constant):
                return True
        return False

    # -- pass: containers (SR002) -------------------------------------------

    def _pass_containers(self, module):
        for cls in module.classes.values():
            if not cls.has_lock:
                continue
            for attr, (kind, _line) in cls.containers.items():
                grow_lines = cls.grown.get(attr)
                if not grow_lines:
                    continue
                if attr in cls.shrunk or attr in cls.guarded_growth:
                    continue
                self._emit(
                    "SR002",
                    f"{kind} self.{attr} only ever grows in lock-owning "
                    f"class {cls.name}; bound it (eviction, maxlen, or a "
                    f"len() guard)",
                    module, grow_lines[0], f"{cls.name}.{attr}",
                )


# -- entry points -----------------------------------------------------------


def iter_python_files(paths):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    files.append(os.path.join(dirpath, filename))
    return sorted(set(files))


def lint_paths(paths=None, lockorder_path=None, suppress_path=None,
               use_default_suppressions=True):
    """Lint ``paths`` (default: the repro package) into a SourceReport."""
    targets = list(paths) if paths else [DEFAULT_TARGET]
    files = iter_python_files(targets)
    lock_order = load_lock_order(lockorder_path)
    linter = SourceLinter(lock_order)
    linter.load(files)
    findings = linter.run()
    suppressions = []
    if use_default_suppressions:
        suppressions.extend(load_suppressions(DEFAULT_SUPPRESS_PATH))
    if suppress_path:
        suppressions.extend(load_suppressions(suppress_path))
    kept, suppressed = [], []
    for finding in findings:
        entry = next((s for s in suppressions if s.matches(finding)), None)
        if entry is not None:
            entry.used = True
            suppressed.append(finding)
        else:
            kept.append(finding)
    return SourceReport(kept, suppressed, len(files))


def render_src_rule_table():
    lines = ["rule   severity  title", "-" * 44]
    for rule_id in sorted(SRC_RULES):
        severity, title = SRC_RULES[rule_id]
        lines.append(f"{rule_id}  {severity:<8}  {title}")
    return "\n".join(lines)
