"""Runtime lock-order and leak checking for the serving stack.

The static half of srclint (:mod:`repro.analysis.srclint`) reasons
about lock acquisition *sites*; this module checks the acquisitions
that actually happen.  Every lock in the repo is created through
:func:`named_lock`, which normally returns a plain
:class:`threading.Lock` — zero overhead.  With ``REPRO_RACECHECK=1``
in the environment (or after :func:`enable`), newly created locks are
:class:`CheckedLock` instances that:

* validate every acquisition against the declared hierarchy in
  ``lockorder.toml`` (acquiring an outer lock while holding an inner
  one is an **order** violation);
* maintain a wait-for graph and detect **cycles** (a real deadlock in
  the making) *before* blocking, raising :class:`DeadlockError` so the
  test or chaos run fails loudly instead of hanging;
* record per-lock hold-time statistics, publishing histograms into
  METRICS (``racecheck.hold_seconds.<name>``) and flagging holds
  longer than ``REPRO_RACECHECK_MAX_HOLD`` seconds (default 1.0) as
  **hold** violations;
* via :func:`note_blocking`, flag blocking entry points (``ask()``)
  reached while any checked lock is held.

Import discipline: this module is imported by
:mod:`repro.obs.metrics` at the very bottom of the runtime stack, so
it must not import anything from ``repro`` at module level.  METRICS
and the lock hierarchy are imported lazily, with a thread-local
reentrancy guard so instrumenting the metrics registry's own locks
cannot recurse.
"""

from __future__ import annotations

import os
import threading
from collections import deque

RACECHECK_ENV = "REPRO_RACECHECK"
MAX_HOLD_ENV = "REPRO_RACECHECK_MAX_HOLD"

#: Violation events kept for ``report()``; bounded so a pathological
#: run cannot grow memory without limit.
_EVENT_LIMIT = 256


def _env_enabled():
    return os.environ.get(RACECHECK_ENV, "").strip() in ("1", "true", "yes")


_ENABLED = _env_enabled()


class DeadlockError(RuntimeError):
    """Raised when an acquisition would close a wait-for cycle."""


class LockOrderError(RuntimeError):
    """Raised (in raise-mode) when an acquisition inverts the hierarchy."""


class _RaceState:
    """Process-global instrumentation state shared by all CheckedLocks."""

    def __init__(self):
        # A plain lock on purpose: this is the instrumentation itself.
        self._mu = threading.Lock()
        self._local = threading.local()
        self.held = {}        # thread id -> [(CheckedLock, t_acquired)]
        self.wants = {}       # thread id -> CheckedLock (pre-block)
        self.counts = {
            "acquisitions": 0,
            "order": 0,
            "cycle": 0,
            "hold": 0,
            "blocking": 0,
        }
        self.events = deque(maxlen=_EVENT_LIMIT)
        self.holds = {}       # lock name -> [count, total_s, max_s]
        self.raise_on_order = False
        self._hierarchy = None

    # -- declared hierarchy -------------------------------------------------

    def rank(self, name):
        """Declared rank of ``name`` (0 = outermost), or None if unknown."""
        if self._hierarchy is None:
            from repro.analysis.lockorder import load_lock_order

            order = load_lock_order().order
            self._hierarchy = {n: i for i, n in enumerate(order)}
        return self._hierarchy.get(name)

    # -- reentrancy guard ---------------------------------------------------

    def entered(self):
        """True if this thread is already inside an instrumentation hook."""
        if getattr(self._local, "in_hook", False):
            return True
        self._local.in_hook = True
        return False

    def leave(self):
        self._local.in_hook = False

    def record(self, kind, **detail):
        with self._mu:
            self.counts[kind] += 1
            self.events.append({"kind": kind, **detail})


_STATE = _RaceState()


def enabled():
    """True when racecheck instrumentation is active for new locks."""
    return _ENABLED


def enable(raise_on_order=False):
    """Turn instrumentation on for locks created from now on (tests)."""
    global _ENABLED
    _ENABLED = True
    _STATE.raise_on_order = raise_on_order


def disable():
    global _ENABLED
    _ENABLED = False
    _STATE.raise_on_order = False


def reset():
    """Clear accumulated violations and hold stats (between test cases)."""
    with _STATE._mu:
        for key in _STATE.counts:
            _STATE.counts[key] = 0
        _STATE.events.clear()
        _STATE.holds.clear()


def named_lock(name, *, rlock=False):
    """A lock registered under ``name`` in the declared hierarchy.

    The single factory every repo lock goes through: with racecheck off
    (the default) it returns a plain ``threading.Lock``/``RLock``;
    with racecheck on it returns an instrumented :class:`CheckedLock`.
    The name ties the runtime object to its rank in ``lockorder.toml``
    and to the static srclint pass, which resolves ``named_lock("x")``
    call sites to the same hierarchy.
    """
    if not _ENABLED:
        return threading.RLock() if rlock else threading.Lock()
    return CheckedLock(name, rlock=rlock)


class CheckedLock:
    """Drop-in lock with order checking, deadlock and hold-time detection.

    ``_before_block`` is a test-only hook invoked after the wait-for
    edge is registered but before the underlying acquire can block —
    it lets the deadlock unit tests force an exact interleaving with
    events instead of sleeps.
    """

    __slots__ = ("name", "_inner", "_rlock", "_owner", "_depth",
                 "_before_block")

    def __init__(self, name, *, rlock=False, _before_block=None):
        self.name = name
        self._rlock = rlock
        self._inner = threading.RLock() if rlock else threading.Lock()
        self._owner = None
        self._depth = 0
        self._before_block = _before_block

    # -- acquisition --------------------------------------------------------

    def acquire(self, blocking=True, timeout=-1):
        tid = threading.get_ident()
        if self._rlock and self._owner == tid:
            acquired = self._inner.acquire(blocking, timeout)
            if acquired:
                self._depth += 1
            return acquired
        skip = _STATE.entered()
        if not skip:
            try:
                self._check_order(tid)
                self._check_cycle(tid)
            finally:
                _STATE.leave()
        if self._before_block is not None:
            self._before_block()
        acquired = self._inner.acquire(blocking, timeout)
        if not skip:
            with _STATE._mu:
                _STATE.wants.pop(tid, None)
                if acquired:
                    _STATE.counts["acquisitions"] += 1
                    _STATE.held.setdefault(tid, []).append(
                        (self, _monotonic())
                    )
        if acquired:
            self._owner = tid
            self._depth += 1
        return acquired

    def release(self):
        tid = threading.get_ident()
        self._depth -= 1
        if self._depth == 0:
            self._owner = None
        self._inner.release()
        if self._rlock and self._depth > 0:
            return  # inner RLock release; the hold continues
        if getattr(_STATE._local, "in_hook", False):
            return
        held_for = None
        with _STATE._mu:
            stack = _STATE.held.get(tid, [])
            for index in range(len(stack) - 1, -1, -1):
                if stack[index][0] is self:
                    held_for = _monotonic() - stack[index][1]
                    del stack[index]
                    break
        if held_for is not None:
            self._account_hold(held_for)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.release()
        return False

    def locked(self):
        return self._inner.locked() if not self._rlock else self._depth > 0

    def __repr__(self):
        return f"CheckedLock({self.name!r})"

    # -- checks -------------------------------------------------------------

    def _check_order(self, tid):
        my_rank = _STATE.rank(self.name)
        if my_rank is None:
            return
        with _STATE._mu:
            held = list(_STATE.held.get(tid, []))
        for lock, _t0 in held:
            held_rank = _STATE.rank(lock.name)
            if held_rank is not None and my_rank <= held_rank:
                _STATE.record(
                    "order",
                    acquiring=self.name,
                    holding=lock.name,
                    thread=threading.current_thread().name,
                )
                if _STATE.raise_on_order:
                    raise LockOrderError(
                        f"lock order inversion: acquiring {self.name!r} "
                        f"(rank {my_rank}) while holding {lock.name!r} "
                        f"(rank {held_rank})"
                    )

    def _check_cycle(self, tid):
        """Register the wait-for edge; raise if it closes a cycle.

        Walks owner->wants chains: this thread wants ``self``; if the
        chain of "owner of the wanted lock wants ..." reaches a lock
        this thread holds, both threads would block forever.
        """
        with _STATE._mu:
            _STATE.wants[tid] = self
            path = [self.name]
            wanted = self
            seen = {tid}
            for _hop in range(64):  # bounded walk; graphs are tiny
                owner = wanted._owner
                if owner is None or owner == tid:
                    cycle = owner == tid
                    break
                if owner in seen:
                    cycle = False
                    break
                seen.add(owner)
                wanted = _STATE.wants.get(owner)
                if wanted is None:
                    cycle = False
                    break
                path.append(wanted.name)
                if any(lock is wanted
                       for lock, _t in _STATE.held.get(tid, [])):
                    cycle = True
                    break
            else:
                cycle = False
            if not cycle:
                return
            _STATE.counts["cycle"] += 1
            _STATE.events.append({
                "kind": "cycle",
                "path": list(path),
                "thread": threading.current_thread().name,
            })
            _STATE.wants.pop(tid, None)
        raise DeadlockError(
            "wait-for cycle detected: " + " -> ".join(path)
        )

    def _account_hold(self, held_for):
        with _STATE._mu:
            stats = _STATE.holds.setdefault(self.name, [0, 0.0, 0.0])
            stats[0] += 1
            stats[1] += held_for
            stats[2] = max(stats[2], held_for)
            too_long = held_for > _max_hold_seconds()
            if too_long:
                _STATE.counts["hold"] += 1
                _STATE.events.append({
                    "kind": "hold",
                    "lock": self.name,
                    "seconds": round(held_for, 6),
                })
        # The metrics subsystem's own locks are accounted in-memory
        # only: feeding them into METRICS would re-enter the registry
        # — fatally so when the release happens during metric
        # construction, with the (non-reentrant) registry lock held.
        if not self.name.startswith("obs.metrics."):
            self._observe_metrics(held_for)

    def _observe_metrics(self, held_for):
        """Feed the hold-time histogram; guarded against recursion.

        The metrics registry's own locks are CheckedLocks too, so the
        observe below would re-enter instrumentation — the ``entered``
        guard makes those nested operations plain passthroughs.
        """
        if _STATE.entered():
            return
        try:
            from repro.obs.metrics import METRICS

            METRICS.histogram(
                f"racecheck.hold_seconds.{self.name}"
            ).observe(held_for)
        except Exception:
            pass
        finally:
            _STATE.leave()


def note_blocking(what):
    """Record a violation if this thread holds any checked lock.

    Called at known blocking entry points (``NaLIX.ask``) when
    racecheck is enabled; holding a lock across a full query run is a
    latency and deadlock hazard regardless of hierarchy rank.
    """
    if not _ENABLED:
        return
    tid = threading.get_ident()
    with _STATE._mu:
        held = [lock.name for lock, _t in _STATE.held.get(tid, [])]
    if held:
        _STATE.record(
            "blocking", call=what, holding=held,
            thread=threading.current_thread().name,
        )


def locks_held():
    """Names of checked locks held by the current thread (diagnostics)."""
    tid = threading.get_ident()
    with _STATE._mu:
        return [lock.name for lock, _t in _STATE.held.get(tid, [])]


def report():
    """One snapshot of racecheck accounting, JSON-shaped for /statusz."""
    with _STATE._mu:
        holds = {
            name: {
                "count": count,
                "avg_ms": round(total / count * 1000.0, 3) if count else 0.0,
                "max_ms": round(peak * 1000.0, 3),
            }
            for name, (count, total, peak) in sorted(_STATE.holds.items())
        }
        violations = {
            kind: _STATE.counts[kind]
            for kind in ("order", "cycle", "hold", "blocking")
        }
        return {
            "enabled": _ENABLED,
            "acquisitions": _STATE.counts["acquisitions"],
            "violations": violations,
            "violations_total": sum(violations.values()),
            "events": list(_STATE.events),
            "holds": holds,
        }


def _max_hold_seconds():
    try:
        return float(os.environ.get(MAX_HOLD_ENV, "") or 1.0)
    except ValueError:
        return 1.0


def _monotonic():
    import time

    return time.monotonic()
