"""The lintable query corpus: paper examples + the 9 benchmark tasks.

``iter_corpus()`` yields ``(dataset, label, sentence)`` triples covering
every English query the repository treats as a golden example (the
worked paper figures pinned by the explain golden files) plus the
phrasings of the nine XMP benchmark tasks.  ``repro lint --corpus``,
the ``lint-queries`` CI job, and the property-style analyzer test all
iterate the same corpus, so "every generated query passes scope/binding
analysis" means the same thing everywhere.
"""

from __future__ import annotations

#: The paper's worked examples (datasets: movies | bib | dblp).
PAPER_EXAMPLES = (
    ("movies", "figure2", "Return the title of every movie directed by "
     "Ron Howard."),
    ("movies", "figure2-return", "Return the title of every movie."),
    ("movies", "question-form", "What is the title of every movie?"),
    ("movies", "director", "Return the director of every movie directed "
     "by Ron Howard."),
    ("bib", "figure5", "Return the title of the book with the lowest "
     "price."),
    ("bib", "publisher-value", 'Return the title of every book published '
     'by "Addison-Wesley".'),
    ("dblp", "figure9-grouping", "Return the number of books published "
     "by each publisher."),
)


def iter_corpus(include_tasks=True, good_only=True):
    """Yield ``(dataset, label, sentence)`` for the whole lint corpus."""
    yield from PAPER_EXAMPLES
    if not include_tasks:
        return
    from repro.evaluation.tasks import TASKS

    for task in TASKS:
        phrasings = task.good_phrasings() if good_only else task.phrasings
        for index, phrasing in enumerate(phrasings):
            yield ("dblp", f"{task.task_id}[{index}]", phrasing.text)
