"""Typed findings produced by the static analyzer ("qlint").

A :class:`Finding` is one diagnostic: a rule id (see
:mod:`repro.analysis.rules`), a severity, a human-readable message, an
AST location (a ``/``-separated clause path plus the offending
fragment's rendered text), and — when the query came out of the
translator — the provenance token ids of the source words (threaded
from the PR 3 clause records, so a finding can point back at the
English that produced the bad clause).

:class:`AnalysisReport` is the per-query container: ordered findings,
severity filters, and the text / JSON / GitHub-annotation renderings
shared by the post-translation gate, the ``repro lint`` CLI, and CI.

Like the rest of the analysis package this module is dependency-free
and imports nothing from other ``repro`` packages.
"""

from __future__ import annotations

import json

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)


class Finding:
    """One static-analysis diagnostic."""

    __slots__ = ("rule_id", "severity", "message", "path", "fragment",
                 "token_ids", "words")

    def __init__(self, rule_id, severity, message, path="query",
                 fragment=None, token_ids=None, words=None):
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self.rule_id = rule_id
        self.severity = severity
        self.message = message
        self.path = path
        self.fragment = fragment
        self.token_ids = list(token_ids) if token_ids else []
        self.words = list(words) if words else []

    def to_dict(self):
        entry = {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
        }
        if self.fragment is not None:
            entry["fragment"] = self.fragment
        if self.token_ids:
            entry["token_ids"] = list(self.token_ids)
            entry["words"] = list(self.words)
        return entry

    def render(self):
        line = f"{self.severity} {self.rule_id} at {self.path}: {self.message}"
        if self.words:
            cited = ", ".join(
                f"{word}({node_id})"
                for word, node_id in zip(self.words, self.token_ids)
            )
            line += f"  [from {cited}]"
        return line

    def __repr__(self):
        return f"Finding({self.rule_id}, {self.severity}, {self.message!r})"


class AnalysisReport:
    """All findings of one analyzer run, in discovery order."""

    def __init__(self, subject=None):
        self.subject = subject      # the analyzed XQuery text (or a label)
        self.findings = []

    def add(self, finding):
        self.findings.append(finding)
        return finding

    # -- severity views ------------------------------------------------------

    @property
    def errors(self):
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self):
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def infos(self):
        return [f for f in self.findings if f.severity == INFO]

    @property
    def ok(self):
        """True when no *error* findings exist (warnings are tolerated)."""
        return not self.errors

    def rule_ids(self):
        """Distinct rule ids that fired, sorted."""
        return sorted({finding.rule_id for finding in self.findings})

    def summary(self):
        """Compact dict for the audit log's ``analysis`` column."""
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "rules": self.rule_ids(),
        }

    # -- renderings ----------------------------------------------------------

    def to_dict(self):
        entry = {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        if self.subject is not None:
            entry["subject"] = self.subject
        return entry

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self):
        if not self.findings:
            return "ok (no findings)"
        return "\n".join(finding.render() for finding in self.findings)

    def github_lines(self, context=None):
        """``::error``/``::warning`` workflow-annotation lines."""
        lines = []
        for finding in self.findings:
            level = "error" if finding.severity == ERROR else "warning"
            where = f" [{context}]" if context else ""
            message = f"{finding.message} (at {finding.path}){where}"
            lines.append(f"::{level} title={finding.rule_id}::{message}")
        return lines

    def __len__(self):
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def __repr__(self):
        return (
            f"AnalysisReport({len(self.errors)} errors, "
            f"{len(self.warnings)} warnings)"
        )


def attach_clause_provenance(report, clause_records):
    """Point findings back at source tokens via PR 3 clause records.

    Best effort: a finding whose rendered fragment appears inside (or
    contains) a clause record's fragment inherits that record's token
    ids and words.  Findings that already carry tokens are left alone.
    """
    if not clause_records:
        return report
    for finding in report.findings:
        if finding.token_ids or not finding.fragment:
            continue
        for record in clause_records:
            fragment = record.fragment
            if not fragment:
                continue
            if finding.fragment in fragment or fragment in finding.fragment:
                finding.token_ids = list(record.token_ids)
                finding.words = list(record.words)
                break
    return report
