"""The benchmark collector shared by the bench harness and bench-check.

One function, :func:`collect_task_results`, runs each of the nine study
tasks' reference phrasing ``repeats`` times through a fresh (or
caller-supplied) DBLP pipeline and produces the
``BENCH_RESULTS.json`` task table: end-to-end mean/p95, the raw per-run
samples (so the regression watchdog can compute a MAD guard), and the
per-stage mean breakdown with per-stage samples.

It used to live inside ``benchmarks/conftest.py``; it moved here so the
``repro bench-check`` CLI can produce a fresh run with exactly the same
measurement code that produced the committed baseline — comparing
apples to apples is the whole point of the watchdog.
"""

from __future__ import annotations

from repro.core.interface import NaLIX
from repro.data import DblpConfig, generate_dblp
from repro.database.store import Database
from repro.evaluation.tasks import TASKS
from repro.obs.quantiles import nearest_rank

#: Pipeline stage span names recorded per task, in execution order.
BENCH_STAGES = ("parse", "classify", "validate", "translate",
                "xquery-parse", "evaluate")

#: Repeats per task in the standard run (and the committed baseline).
DEFAULT_REPEATS = 5


def build_bench_nalix(books=120, seed=7):
    """The standard benchmark pipeline: a fresh generated-DBLP NaLIX."""
    database = Database()
    database.load_document(generate_dblp(DblpConfig(books=books, seed=seed)))
    return NaLIX(database)


def collect_task_results(repeats=DEFAULT_REPEATS, books=120, seed=7,
                         nalix=None):
    """Per-task latency rows for the nine study tasks.

    Returns the ``BENCH_RESULTS.json`` payload body::

        {"repeats": N, "tasks": {task_id: {sentence, status, runs,
         mean_seconds, p95_seconds, samples_seconds,
         stage_mean_seconds, stage_samples_seconds}}}
    """
    if nalix is None:
        nalix = build_bench_nalix(books=books, seed=seed)
    tasks = {}
    for task in TASKS:
        phrasing = task.good_phrasings()[0]
        samples = []
        stage_samples = {}
        status = None
        for _ in range(repeats):
            result = nalix.ask(phrasing.text)
            status = result.status
            samples.append(result.total_seconds)
            for stage in BENCH_STAGES:
                seconds = result.stage_seconds(stage)
                if seconds > 0.0:
                    stage_samples.setdefault(stage, []).append(seconds)
        tasks[task.task_id] = {
            "sentence": phrasing.text,
            "status": status,
            "runs": len(samples),
            "mean_seconds": sum(samples) / len(samples),
            "p95_seconds": nearest_rank(samples, 0.95),
            "samples_seconds": list(samples),
            "stage_mean_seconds": {
                stage: sum(values) / len(values)
                for stage, values in sorted(stage_samples.items())
            },
            "stage_samples_seconds": {
                stage: list(values)
                for stage, values in sorted(stage_samples.items())
            },
        }
    return {"repeats": repeats, "tasks": tasks}
