"""The benchmark collector shared by the bench harness and bench-check.

One function, :func:`collect_task_results`, runs each of the nine study
tasks' reference phrasing ``repeats`` times through a fresh (or
caller-supplied) DBLP pipeline and produces the
``BENCH_RESULTS.json`` task table: end-to-end mean/p95, the raw per-run
samples (so the regression watchdog can compute a MAD guard), and the
per-stage mean breakdown with per-stage samples.

It used to live inside ``benchmarks/conftest.py``; it moved here so the
``repro bench-check`` CLI can produce a fresh run with exactly the same
measurement code that produced the committed baseline — comparing
apples to apples is the whole point of the watchdog.
"""

from __future__ import annotations

from repro.core.interface import NaLIX
from repro.data import DblpConfig, generate_dblp
from repro.database.store import Database
from repro.evaluation.tasks import TASKS
from repro.obs.quantiles import nearest_rank

#: Pipeline stage span names recorded per task, in execution order.
BENCH_STAGES = ("parse", "classify", "validate", "translate",
                "xquery-parse", "evaluate")

#: Repeats per task in the standard run (and the committed baseline).
DEFAULT_REPEATS = 5


def build_bench_nalix(books=120, seed=7):
    """The standard benchmark pipeline: a fresh generated-DBLP NaLIX."""
    database = Database()
    database.load_document(generate_dblp(DblpConfig(books=books, seed=seed)))
    return NaLIX(database)


def collect_task_results(repeats=DEFAULT_REPEATS, books=120, seed=7,
                         nalix=None):
    """Per-task latency rows for the nine study tasks.

    Returns the ``BENCH_RESULTS.json`` payload body::

        {"repeats": N, "tasks": {task_id: {sentence, status, runs,
         mean_seconds, p95_seconds, samples_seconds,
         stage_mean_seconds, stage_samples_seconds}}}
    """
    if nalix is None:
        nalix = build_bench_nalix(books=books, seed=seed)
    tasks = {}
    for task in TASKS:
        phrasing = task.good_phrasings()[0]
        samples = []
        stage_samples = {}
        status = None
        for _ in range(repeats):
            result = nalix.ask(phrasing.text)
            status = result.status
            samples.append(result.total_seconds)
            for stage in BENCH_STAGES:
                seconds = result.stage_seconds(stage)
                if seconds > 0.0:
                    stage_samples.setdefault(stage, []).append(seconds)
        tasks[task.task_id] = {
            "sentence": phrasing.text,
            "status": status,
            "runs": len(samples),
            "mean_seconds": sum(samples) / len(samples),
            "p95_seconds": nearest_rank(samples, 0.95),
            "samples_seconds": list(samples),
            "stage_mean_seconds": {
                stage: sum(values) / len(values)
                for stage, values in sorted(stage_samples.items())
            },
            "stage_samples_seconds": {
                stage: list(values)
                for stage, values in sorted(stage_samples.items())
            },
        }
    return {"repeats": repeats, "tasks": tasks}


#: Concurrent clients in the standard serving benchmark.
SERVE_CONCURRENCY = 8

#: Requests per serving-benchmark run (10 rounds of the nine tasks).
SERVE_REQUESTS = 90


def collect_serve_results(concurrency=SERVE_CONCURRENCY,
                          requests=SERVE_REQUESTS, books=120, seed=7,
                          nalix=None, config=None):
    """The sustained-throughput serving benchmark row.

    Boots an in-process :class:`~repro.serve.server.ReproServer` over
    the standard bench pipeline, runs ``repro loadgen`` against it with
    ``concurrency`` clients, and returns the ``serving`` section of
    ``BENCH_RESULTS.json``: QPS, server-side p50/p95/p99 (the
    ``X-Repro-Seconds`` handling times), the scraped ``/metrics`` p99
    cross-check, and the error counts.  The per-request latency samples
    ride along so the regression watchdog's MAD guard applies.
    """
    from repro.serve import LoadgenConfig, ReproServer, ServeConfig, run_loadgen

    if nalix is None:
        nalix = build_bench_nalix(books=books, seed=seed)
    if config is None:
        config = ServeConfig(port=0, max_inflight=concurrency,
                             window=max(4096, requests))
    server = ReproServer(nalix=nalix, config=config)
    server.start()
    try:
        # One warm-up pass over the task mix so import/caching costs do
        # not land in the measured tail.
        run_loadgen(LoadgenConfig(server.url, concurrency=concurrency,
                                  requests=len(TASKS)))
        server.window.reset()
        report = run_loadgen(
            LoadgenConfig(server.url, concurrency=concurrency,
                          requests=requests)
        )
    finally:
        server.stop()
    latency = report.server_latency
    return {
        "concurrency": concurrency,
        "requests": report.requests,
        "elapsed_seconds": report.elapsed,
        "qps": report.qps,
        "internal_errors": report.internal_errors,
        "statuses": {str(k): v for k, v in sorted(report.statuses.items())},
        "p50_seconds": latency["p50"],
        "p95_seconds": latency["p95"],
        "p99_seconds": latency["p99"],
        "client_p99_seconds": report.client_latency["p99"],
        "scraped_p99_seconds": report.scraped_p99_seconds,
        "p99_delta_fraction": report.p99_delta_fraction,
        "samples_seconds": [
            server for _, _, server in report.records if server is not None
        ],
    }


#: The standard chaos fault mix (seeded: every run injects the same
#: number of faults).  Exception faults exercise the degradation
#: ladder; the short delay trips the watchdog's soft deadline (stuck ->
#: recovered); the long stall crosses the hard deadline, so the
#: watchdog force-expires the budget and the request comes back as a
#: classified 504 the retrying client converts into a success.
CHAOS_FAULTS = (
    "evaluate:p=0.10,seed=11",
    "evaluate:p=0.06,delay=0.3,seed=12",
    "evaluate:p=0.02,delay=1.2,seed=13",
)

#: Client retries in the chaos run (attempts = retries + 1).
CHAOS_RETRIES = 2

#: Watchdog tuning for the chaos run: tight absolute deadlines so the
#: injected 0.3s/1.2s stalls reliably cross them within one benchmark.
CHAOS_WATCHDOG_SOFT = 0.2
CHAOS_WATCHDOG_HARD = 0.9
CHAOS_WATCHDOG_INTERVAL = 0.02


def collect_serve_chaos_results(concurrency=SERVE_CONCURRENCY,
                                requests=SERVE_REQUESTS, books=120, seed=7,
                                nalix=None, faults=CHAOS_FAULTS,
                                retries=CHAOS_RETRIES):
    """The chaos-under-concurrency serving benchmark row.

    Same shape as :func:`collect_serve_results`, but the server runs
    with the :data:`CHAOS_FAULTS` plan injected (10% evaluate
    exceptions plus two latency-spike tiers), an aggressive stuck-query
    watchdog, and *retrying* loadgen clients.  The row records what the
    self-healing machinery delivered under fire: final-outcome
    availability (the ratchet's >= 99% gate), the watchdog's
    stuck/expired/recovered counts, retry totals, and the
    injected/delayed fault counts that prove chaos actually ran.
    """
    from repro.obs.metrics import METRICS
    from repro.serve import LoadgenConfig, ReproServer, ServeConfig, run_loadgen

    if nalix is None:
        nalix = build_bench_nalix(books=books, seed=seed)
    config = ServeConfig(
        port=0, max_inflight=concurrency, window=max(4096, requests),
        fault_plan=list(faults),
        watchdog_soft=CHAOS_WATCHDOG_SOFT,
        watchdog_hard=CHAOS_WATCHDOG_HARD,
        watchdog_interval=CHAOS_WATCHDOG_INTERVAL,
    )
    server = ReproServer(nalix=nalix, config=config)
    server.start()
    injected = METRICS.counter("resilience.faults.injected")
    delayed = METRICS.counter("resilience.faults.delayed")
    try:
        # Warm up, then rewind the fault plan's seeded RNGs so the
        # measured run always draws the same injection sequence.
        run_loadgen(LoadgenConfig(server.url, concurrency=concurrency,
                                  requests=len(TASKS), retries=retries))
        server.nalix.fault_plan.reset()
        server.window.reset()
        watchdog_before = server.watchdog.snapshot()
        injected_before = injected.value
        delayed_before = delayed.value
        report = run_loadgen(
            LoadgenConfig(server.url, concurrency=concurrency,
                          requests=requests, retries=retries)
        )
        watchdog_after = server.watchdog.snapshot()
    finally:
        server.stop()
    latency = report.server_latency
    return {
        "concurrency": concurrency,
        "requests": report.requests,
        "elapsed_seconds": report.elapsed,
        "qps": report.qps,
        "availability": report.availability,
        "statuses": {str(k): v for k, v in sorted(report.statuses.items())},
        "sheds": report.sheds,
        "internal_errors": report.internal_errors,
        "unclassified_5xx": report.unclassified_5xx,
        "transport_errors": report.transport_errors,
        "retries": report.retries,
        "hedges": report.hedges,
        "faults_injected": injected.value - injected_before,
        "faults_delayed": delayed.value - delayed_before,
        "watchdog": {
            "stuck": (watchdog_after["stuck_total"]
                      - watchdog_before["stuck_total"]),
            "expired": (watchdog_after["expired_total"]
                        - watchdog_before["expired_total"]),
            "recovered": (watchdog_after["recovered_total"]
                          - watchdog_before["recovered_total"]),
        },
        "p50_seconds": latency["p50"],
        "p95_seconds": latency["p95"],
        "p99_seconds": latency["p99"],
        "client_p99_seconds": report.client_latency["p99"],
        "samples_seconds": [
            server for _, _, server in report.records if server is not None
        ],
        # What the incident-observability layer did under fire: the
        # tail sampler's per-category retention, the flight recorder's
        # fill, and the SLO engine's burn state.  The regression
        # watchdog gates on these (errors retained 100%, slow tail
        # >= 95%, healthy head-sampling bounded, bytes within budget).
        "sampler": server.sampler.snapshot(),
        "recorder": server.recorder.snapshot(),
        "slo": [
            {
                "name": entry["name"],
                "error_budget_remaining": entry["error_budget_remaining"],
                "alerting": entry["alerting"],
            }
            for entry in server.slo.snapshot()
        ],
    }


def collect_obs_overhead_results(concurrency=SERVE_CONCURRENCY,
                                 requests=SERVE_REQUESTS, books=120, seed=7,
                                 nalix=None):
    """The observability-overhead benchmark row.

    Runs the sustained-throughput serving benchmark twice over the same
    pipeline — once with the incident-observability layer fully off
    (no SLO engine, no sampler, no recorder) and once with the serving
    defaults on — and reports both latency profiles plus the relative
    overhead fractions the ratchet watches.  The point of the row: the
    always-on evidence loop must stay in the noise floor of serving
    latency, or it is not always-on for long.
    """
    if nalix is None:
        nalix = build_bench_nalix(books=books, seed=seed)
    from repro.serve import ServeConfig

    bare = collect_serve_results(
        concurrency=concurrency, requests=requests, nalix=nalix,
        config=ServeConfig(port=0, max_inflight=concurrency,
                           window=max(4096, requests),
                           recorder=False, slos=()),
    )
    full = collect_serve_results(
        concurrency=concurrency, requests=requests, nalix=nalix,
    )

    def overhead(field):
        if not bare[field]:
            return 0.0
        return (full[field] - bare[field]) / bare[field]

    strip = ("samples_seconds", "statuses", "scraped_p99_seconds",
             "p99_delta_fraction")
    return {
        "concurrency": concurrency,
        "requests": requests,
        "baseline": {k: v for k, v in bare.items() if k not in strip},
        "observability": {k: v for k, v in full.items() if k not in strip},
        "p50_overhead_fraction": overhead("p50_seconds"),
        "p99_overhead_fraction": overhead("p99_seconds"),
        "qps_overhead_fraction": (
            (bare["qps"] - full["qps"]) / bare["qps"] if bare["qps"] else 0.0
        ),
        "samples_seconds": full["samples_seconds"],
    }


#: Canary sweep interval in the A/B run: short enough that several
#: sweeps land *inside* the measured loadgen window (60x hotter than
#: the 30s production default), so the row prices sweeps racing
#: production traffic rather than an idle timer — but not so hot that
#: the synthetic probes dominate the measurement itself.
CANARY_BENCH_INTERVAL = 0.5


def collect_canary_overhead_results(concurrency=SERVE_CONCURRENCY,
                                    requests=SERVE_REQUESTS, books=120,
                                    seed=7, nalix=None):
    """The canary-overhead benchmark row.

    Runs the sustained-throughput serving benchmark twice over the same
    pipeline — once without the correctness canary and once with it
    sweeping every :data:`CANARY_BENCH_INTERVAL` seconds, far hotter
    than the 30s production default — and reports both latency profiles
    plus the relative overhead fractions.  The canary executes its nine
    golden probes on the *server's own* pipeline threads, so this row
    is the proof (or refutation) that synthetic correctness traffic
    stays in the noise floor of real serving latency.
    """
    if nalix is None:
        nalix = build_bench_nalix(books=books, seed=seed)
    from repro.evaluation.goldens import goldens_for
    from repro.serve import ServeConfig

    bare = collect_serve_results(
        concurrency=concurrency, requests=requests, nalix=nalix,
    )
    canary = collect_serve_results(
        concurrency=concurrency, requests=requests, nalix=nalix,
        config=ServeConfig(port=0, max_inflight=concurrency,
                           window=max(4096, requests),
                           canary=True,
                           canary_interval=CANARY_BENCH_INTERVAL,
                           canary_goldens=goldens_for("dblp", books, seed)),
    )

    def overhead(field):
        if not bare[field]:
            return 0.0
        return (canary[field] - bare[field]) / bare[field]

    strip = ("samples_seconds", "statuses", "scraped_p99_seconds",
             "p99_delta_fraction")
    return {
        "concurrency": concurrency,
        "requests": requests,
        "canary_interval_seconds": CANARY_BENCH_INTERVAL,
        "baseline": {k: v for k, v in bare.items() if k not in strip},
        "canary": {k: v for k, v in canary.items() if k not in strip},
        "p50_overhead_fraction": overhead("p50_seconds"),
        "p99_overhead_fraction": overhead("p99_seconds"),
        "qps_overhead_fraction": (
            (bare["qps"] - canary["qps"]) / bare["qps"]
            if bare["qps"] else 0.0
        ),
        "samples_seconds": canary["samples_seconds"],
    }
