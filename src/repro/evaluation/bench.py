"""The benchmark collector shared by the bench harness and bench-check.

One function, :func:`collect_task_results`, runs each of the nine study
tasks' reference phrasing ``repeats`` times through a fresh (or
caller-supplied) DBLP pipeline and produces the
``BENCH_RESULTS.json`` task table: end-to-end mean/p95, the raw per-run
samples (so the regression watchdog can compute a MAD guard), and the
per-stage mean breakdown with per-stage samples.

It used to live inside ``benchmarks/conftest.py``; it moved here so the
``repro bench-check`` CLI can produce a fresh run with exactly the same
measurement code that produced the committed baseline — comparing
apples to apples is the whole point of the watchdog.
"""

from __future__ import annotations

from repro.core.interface import NaLIX
from repro.data import DblpConfig, generate_dblp
from repro.database.store import Database
from repro.evaluation.tasks import TASKS
from repro.obs.quantiles import nearest_rank

#: Pipeline stage span names recorded per task, in execution order.
BENCH_STAGES = ("parse", "classify", "validate", "translate",
                "xquery-parse", "evaluate")

#: Repeats per task in the standard run (and the committed baseline).
DEFAULT_REPEATS = 5


def build_bench_nalix(books=120, seed=7):
    """The standard benchmark pipeline: a fresh generated-DBLP NaLIX."""
    database = Database()
    database.load_document(generate_dblp(DblpConfig(books=books, seed=seed)))
    return NaLIX(database)


def collect_task_results(repeats=DEFAULT_REPEATS, books=120, seed=7,
                         nalix=None):
    """Per-task latency rows for the nine study tasks.

    Returns the ``BENCH_RESULTS.json`` payload body::

        {"repeats": N, "tasks": {task_id: {sentence, status, runs,
         mean_seconds, p95_seconds, samples_seconds,
         stage_mean_seconds, stage_samples_seconds}}}
    """
    if nalix is None:
        nalix = build_bench_nalix(books=books, seed=seed)
    tasks = {}
    for task in TASKS:
        phrasing = task.good_phrasings()[0]
        samples = []
        stage_samples = {}
        status = None
        for _ in range(repeats):
            result = nalix.ask(phrasing.text)
            status = result.status
            samples.append(result.total_seconds)
            for stage in BENCH_STAGES:
                seconds = result.stage_seconds(stage)
                if seconds > 0.0:
                    stage_samples.setdefault(stage, []).append(seconds)
        tasks[task.task_id] = {
            "sentence": phrasing.text,
            "status": status,
            "runs": len(samples),
            "mean_seconds": sum(samples) / len(samples),
            "p95_seconds": nearest_rank(samples, 0.95),
            "samples_seconds": list(samples),
            "stage_mean_seconds": {
                stage: sum(values) / len(values)
                for stage, values in sorted(stage_samples.items())
            },
            "stage_samples_seconds": {
                stage: list(values)
                for stage, values in sorted(stage_samples.items())
            },
        }
    return {"repeats": repeats, "tasks": tasks}


#: Concurrent clients in the standard serving benchmark.
SERVE_CONCURRENCY = 8

#: Requests per serving-benchmark run (10 rounds of the nine tasks).
SERVE_REQUESTS = 90


def collect_serve_results(concurrency=SERVE_CONCURRENCY,
                          requests=SERVE_REQUESTS, books=120, seed=7,
                          nalix=None):
    """The sustained-throughput serving benchmark row.

    Boots an in-process :class:`~repro.serve.server.ReproServer` over
    the standard bench pipeline, runs ``repro loadgen`` against it with
    ``concurrency`` clients, and returns the ``serving`` section of
    ``BENCH_RESULTS.json``: QPS, server-side p50/p95/p99 (the
    ``X-Repro-Seconds`` handling times), the scraped ``/metrics`` p99
    cross-check, and the error counts.  The per-request latency samples
    ride along so the regression watchdog's MAD guard applies.
    """
    from repro.serve import LoadgenConfig, ReproServer, ServeConfig, run_loadgen

    if nalix is None:
        nalix = build_bench_nalix(books=books, seed=seed)
    config = ServeConfig(port=0, max_inflight=concurrency,
                         window=max(4096, requests))
    server = ReproServer(nalix=nalix, config=config)
    server.start()
    try:
        # One warm-up pass over the task mix so import/caching costs do
        # not land in the measured tail.
        run_loadgen(LoadgenConfig(server.url, concurrency=concurrency,
                                  requests=len(TASKS)))
        server.window.reset()
        report = run_loadgen(
            LoadgenConfig(server.url, concurrency=concurrency,
                          requests=requests)
        )
    finally:
        server.stop()
    latency = report.server_latency
    return {
        "concurrency": concurrency,
        "requests": report.requests,
        "elapsed_seconds": report.elapsed,
        "qps": report.qps,
        "internal_errors": report.internal_errors,
        "statuses": {str(k): v for k, v in sorted(report.statuses.items())},
        "p50_seconds": latency["p50"],
        "p95_seconds": latency["p95"],
        "p99_seconds": latency["p99"],
        "client_p99_seconds": report.client_latency["p99"],
        "scraped_p99_seconds": report.scraped_p99_seconds,
        "p99_delta_fraction": report.p99_delta_fraction,
        "samples_seconds": [
            server for _, _, server in report.records if server is not None
        ],
    }
