"""The within-subject user study (Sec. 5.1 "Methods").

Runs the full experimental protocol against a live NaLIX instance and a
live keyword-search engine over the same database:

* 18 participants, each completing both blocks (NaLIX block and keyword
  block), block order randomised per participant;
* 9 tasks per block, ordered by a pair of orthogonal 9x9 Latin squares;
* per task: iterate (phrase -> submit -> read feedback/results) until
  the harmonic mean of precision and recall reaches the passing
  criterion (0.5) and the participant is satisfied, or the 5-minute
  limit runs out;
* per attempt the study records acceptance, precision/recall and the
  phrasing's specified/parsed labels (for Table 7's breakdown).
"""

from __future__ import annotations

from repro.core.interface import NaLIX
from repro.data import DblpConfig, generate_dblp
from repro.database.store import Database
from repro.evaluation.latin import task_orders
from repro.evaluation.metrics import harmonic_mean, precision_recall
from repro.evaluation.tasks import TASKS
from repro.evaluation.users import make_participants
from repro.keyword_search.engine import KeywordSearchEngine


class StudyConfig:
    """Knobs of the experimental protocol (defaults match the paper)."""

    def __init__(self, participants=18, seed=2006, time_limit_seconds=300.0,
                 passing_threshold=0.5, dblp=None, misparse_rate=0.08):
        self.participants = participants
        self.seed = seed
        self.time_limit_seconds = time_limit_seconds
        self.passing_threshold = passing_threshold
        self.dblp = dblp or DblpConfig()
        # Probability that a well-formed query is mis-parsed. The paper's
        # Minipar mis-parses ~12% of sentences (some harmlessly); our
        # deterministic parser does not fail on the curated pools, so the
        # study injects result degradation at Minipar's observed rate to
        # preserve Table 7's "parsed correctly" split (see DESIGN.md).
        self.misparse_rate = misparse_rate


class TaskRecord:
    """Outcome of one participant x task x block cell."""

    def __init__(self, participant_id, task_id, system):
        self.participant_id = participant_id
        self.task_id = task_id
        self.system = system          # "nalix" | "keyword"
        self.iterations = 0           # re-formulations (first attempt = 0)
        self.seconds = 0.0
        self.precision = 0.0
        self.recall = 0.0
        self.accepted = False         # a query was accepted by the system
        self.specified_correctly = False
        self.parsed_correctly = False
        self.gave_up = False
        self.attempts = []            # per-attempt dicts

    @property
    def harmonic(self):
        return harmonic_mean(self.precision, self.recall)

    def __repr__(self):
        return (
            f"TaskRecord(p{self.participant_id} {self.task_id} {self.system} "
            f"it={self.iterations} t={self.seconds:.0f}s "
            f"P={self.precision:.2f} R={self.recall:.2f})"
        )


class StudyResults:
    """All records of one study run."""

    def __init__(self, config):
        self.config = config
        self.records = []

    def by_system(self, system):
        return [record for record in self.records if record.system == system]

    def by_task(self, system, task_id):
        return [
            record
            for record in self.records
            if record.system == system and record.task_id == task_id
        ]


class Study:
    """Builds the environment and runs the protocol."""

    def __init__(self, config=None, database=None):
        self.config = config or StudyConfig()
        if database is None:
            database = Database()
            database.load_document(generate_dblp(self.config.dblp))
        self.database = database
        self.nalix = NaLIX(database)
        self.keyword_engine = KeywordSearchEngine(database)
        self.tasks = list(TASKS)
        self._gold_cache = {
            task.task_id: task.gold(database) for task in self.tasks
        }

    # -- protocol ---------------------------------------------------------------

    def run(self):
        results = StudyResults(self.config)
        participants = make_participants(self.config.participants,
                                         self.config.seed)
        orders = task_orders(len(self.tasks), len(participants))
        for participant, order in zip(participants, orders):
            blocks = ["nalix", "keyword"]
            if participant.rng.random() < 0.5:
                blocks.reverse()
            for system in blocks:
                for task_index in order:
                    task = self.tasks[task_index]
                    if system == "nalix":
                        record = self._run_nalix_cell(participant, task)
                    else:
                        record = self._run_keyword_cell(participant, task)
                    results.records.append(record)
        return results

    # -- one NaLIX cell ------------------------------------------------------------

    def _run_nalix_cell(self, participant, task):
        record = TaskRecord(participant.participant_id, task.task_id, "nalix")
        gold = self._gold_cache[task.task_id]
        tried = []
        had_error_feedback = False
        had_poor_results = False
        attempt = 0
        best = None  # (harmonic, attempt_info)

        while record.seconds < self.config.time_limit_seconds:
            attempt += 1
            phrasing = participant.choose_phrasing(
                task, attempt, tried, had_error_feedback, had_poor_results
            )
            tried.append(phrasing)
            record.seconds += participant.attempt_seconds(attempt, phrasing.text)
            outcome = self.nalix.ask(phrasing.text)
            info = {
                "attempt": attempt,
                "text": phrasing.text,
                "accepted": outcome.ok,
                "specified": phrasing.specified,
                "parsed": phrasing.parsed,
            }
            if not outcome.ok:
                had_error_feedback = True
                info["precision"], info["recall"] = 0.0, 0.0
                record.attempts.append(info)
                continue
            record.seconds += participant.review_seconds()
            returned = outcome.distinct_items()
            if (
                phrasing.parsed
                and participant.rng.random() < self.config.misparse_rate
            ):
                returned = self._misparse(returned, participant.rng)
                info["parsed"] = False
            precision, recall = precision_recall(
                returned, gold, ordered=task.ordered
            )
            info["precision"], info["recall"] = precision, recall
            record.attempts.append(info)
            score = harmonic_mean(precision, recall)
            if best is None or score > best[0]:
                best = (score, info)
            if score >= self.config.passing_threshold:
                if participant.satisfied(score, self.config.passing_threshold):
                    break
                had_poor_results = True
            else:
                had_poor_results = True

        self._finalize(record, best, attempt)
        return record

    # -- one keyword cell ------------------------------------------------------------

    def _run_keyword_cell(self, participant, task):
        record = TaskRecord(participant.participant_id, task.task_id, "keyword")
        gold = self._gold_cache[task.task_id]
        attempt = 0
        best = None
        max_attempts = len(task.keyword_queries) + 1

        while (
            record.seconds < self.config.time_limit_seconds
            and attempt < max_attempts
        ):
            attempt += 1
            query = participant.choose_keyword_query(task, attempt)
            record.seconds += participant.attempt_seconds(attempt, query)
            nodes = self.keyword_engine.search(query)
            record.seconds += participant.review_seconds()
            precision, recall = precision_recall(nodes, gold,
                                                 ordered=task.ordered)
            info = {
                "attempt": attempt,
                "text": query,
                "accepted": True,
                "specified": True,
                "parsed": True,
                "precision": precision,
                "recall": recall,
            }
            record.attempts.append(info)
            score = harmonic_mean(precision, recall)
            if best is None or score > best[0]:
                best = (score, info)
            if score >= self.config.passing_threshold and participant.satisfied(
                score, self.config.passing_threshold
            ):
                break

        self._finalize(record, best, attempt)
        return record

    @staticmethod
    def _misparse(items, rng):
        """Simulate a dependency-parse error: a lost conjunct drops part
        of the result (the paper's Q1 example lost the year elements)."""
        if len(items) < 2:
            return items
        keep = max(1, int(len(items) * rng.uniform(0.5, 0.8)))
        start = rng.randrange(0, len(items) - keep + 1)
        return items[start : start + keep]

    @staticmethod
    def _finalize(record, best, attempts):
        accepted_attempts = [info for info in record.attempts if info["accepted"]]
        if best is not None:
            _score, info = best
            record.accepted = True
            record.precision = info["precision"]
            record.recall = info["recall"]
            record.specified_correctly = info["specified"]
            record.parsed_correctly = info["parsed"]
            # Iterations = reformulations before the best-result attempt
            # was reached (the paper counts zero for first-try success).
            record.iterations = info["attempt"] - 1
        else:
            record.gave_up = True
            record.iterations = attempts - 1
        record.accepted = bool(accepted_attempts)
