"""Search-quality metrics, following the paper's counting rules.

"Since the expected results were sometimes complex, with multiple
elements (attributes) of interest, we considered each element and
attribute value as an independent value for the purposes of precision
and recall computation." — every returned node is therefore expanded to
its *leaf items* (text-carrying elements and attributes), and precision/
recall are computed over those item sets. Atomic results (counts,
minima) are compared as multisets of values. When a task asks for
sorted output, matching is order-sensitive (longest common subsequence),
per the paper's "unless the task specifically asked the results be
sorted".
"""

from __future__ import annotations

from repro.xmlstore.model import AttributeNode, ElementNode, TextNode
from repro.xquery.values import string_value


def leaf_items(item):
    """The independent (id, value) items contributed by one result item.

    * An element with element children expands to its leaf descendants;
    * a text-carrying element or attribute contributes itself;
    * an atomic value contributes a value-only item.
    """
    if isinstance(item, AttributeNode):
        return [("node", item.node_id, item.value.strip())]
    if isinstance(item, ElementNode):
        leaves = []
        children = item.child_elements()
        for attribute in item.attributes:
            leaves.append(("node", attribute.node_id, attribute.value.strip()))
        if children:
            for child in children:
                leaves.extend(leaf_items(child))
        else:
            leaves.append(("node", item.node_id, item.string_value().strip()))
        return leaves
    if isinstance(item, TextNode):
        return [("node", item.parent.node_id, item.text.strip())]
    return [("value", None, string_value(item))]


def _expand(items):
    expanded = []
    for item in items:
        expanded.extend(leaf_items(item))
    return expanded


def _multiset(items):
    counts = {}
    for kind, node_id, value in items:
        key = (kind, node_id if kind == "node" else None, value)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _intersection_size(counts_a, counts_b):
    return sum(min(count, counts_b.get(key, 0)) for key, count in counts_a.items())


def _lcs_length(sequence_a, sequence_b):
    rows = len(sequence_a)
    cols = len(sequence_b)
    if rows == 0 or cols == 0:
        return 0
    previous = [0] * (cols + 1)
    for i in range(1, rows + 1):
        current = [0] * (cols + 1)
        for j in range(1, cols + 1):
            if sequence_a[i - 1] == sequence_b[j - 1]:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[cols]


def precision_recall(returned, gold, ordered=False):
    """Precision and recall of ``returned`` against ``gold``.

    Both are lists of result items (nodes or atomics). Returns a
    ``(precision, recall)`` pair in [0, 1]. Empty gold with empty result
    is a perfect score; empty result against non-empty gold is (0, 0).
    """
    returned_items = _expand(returned)
    gold_items = _expand(gold)
    if not gold_items and not returned_items:
        return (1.0, 1.0)
    if not returned_items:
        return (0.0, 0.0)
    if not gold_items:
        return (0.0, 1.0)
    if ordered:
        returned_values = [value for _, __, value in returned_items]
        gold_values = [value for _, __, value in gold_items]
        matched = _lcs_length(returned_values, gold_values)
        return (matched / len(returned_values), matched / len(gold_values))
    counts_returned = _multiset(returned_items)
    counts_gold = _multiset(gold_items)
    # Node identity matches directly; value-only items match any gold
    # item with the same value (aggregates have no node identity).
    matched = _intersection_size(counts_returned, counts_gold)
    matched += _value_only_matches(counts_returned, counts_gold)
    total_returned = sum(counts_returned.values())
    total_gold = sum(counts_gold.values())
    return (min(1.0, matched / total_returned), min(1.0, matched / total_gold))


def _value_only_matches(counts_returned, counts_gold):
    """Match ('value', None, v) items against gold items by value."""
    matched = 0
    gold_by_value = {}
    for (kind, node_id, value), count in counts_gold.items():
        gold_by_value.setdefault(value, 0)
        gold_by_value[value] += count
    for (kind, node_id, value), count in counts_returned.items():
        if kind != "value":
            continue
        direct = counts_gold.get((kind, None, value), 0)
        available = gold_by_value.get(value, 0) - direct
        if available > 0:
            matched += min(count, available)
    return matched


def harmonic_mean(precision, recall):
    """The paper's passing criterion statistic (F1)."""
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
