"""Latin-square task orderings for the within-subject design.

The paper: "each participant was asked to accomplish 9 search tasks in
a random order determined by a pair of orthogonal 9 by 9 Latin
Squares." We use the cyclic construction L_k[i][j] = (i + k*j) mod n
with strides k in {1, 2}: both are Latin squares for odd n, the pair is
orthogonal (the cell pair determines (i, j) uniquely), and — unlike the
row-shift construction — the two squares' rows are *different* task
orderings, so 18 participants get 18 distinct orders.
"""

from __future__ import annotations


def cyclic_latin_square(order, multiplier=1):
    """The Latin square L[i][j] = (i + multiplier*j) mod order."""
    if order <= 0:
        raise ValueError("order must be positive")
    if multiplier % order == 0:
        raise ValueError("multiplier must be non-zero modulo order")
    return [
        [(row + multiplier * column) % order for column in range(order)]
        for row in range(order)
    ]


def orthogonal_pair(order):
    """A pair of orthogonal Latin squares (odd order)."""
    if order % 2 == 0:
        raise ValueError("this construction needs an odd order")
    return cyclic_latin_square(order, 1), cyclic_latin_square(order, 2)


def is_latin_square(square):
    order = len(square)
    expected = set(range(order))
    for row in square:
        if set(row) != expected:
            return False
    for column in range(order):
        if {row[column] for row in square} != expected:
            return False
    return True


def are_orthogonal(square_a, square_b):
    order = len(square_a)
    pairs = {
        (square_a[i][j], square_b[i][j])
        for i in range(order)
        for j in range(order)
    }
    return len(pairs) == order * order


def task_orders(task_count, participant_count):
    """Per-participant task orders from the orthogonal pair.

    Participants cycle through the rows of the two squares (first all
    rows of square one, then square two, then repeat), matching how a
    pair of 9x9 squares covers 18 participants.
    """
    square_one, square_two = orthogonal_pair(task_count)
    rows = square_one + square_two
    return [rows[participant % len(rows)] for participant in range(participant_count)]
