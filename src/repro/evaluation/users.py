"""Simulated study participants.

Each participant is a seeded stochastic process standing in for one of
the paper's 18 recruits ("familiar with keyword search, little knowledge
of any formal query language"). The model captures the behaviours the
paper reports:

* an initial phrasing is drawn from the task's pool — skilled users are
  likelier to start with a phrasing inside NaLIX's linguistic coverage;
* feedback teaches: after a rejection with an error message, the odds of
  choosing an acceptable phrasing rise sharply (the paper: "through such
  interactive query formulation process, a user will gradually learn the
  linguistic coverage of the system");
* poor results also teach: after passing the criterion with a weak score
  the user may revise once more, preferring better-specified phrasings;
* each iteration costs time with a floor of about 50 seconds (the paper
  observes that floor: reading, thinking, typing);
* in the keyword block, users try the task's keyword variants.
"""

from __future__ import annotations

import random


class Participant:
    """One simulated participant."""

    def __init__(self, participant_id, seed):
        self.participant_id = participant_id
        self.rng = random.Random(seed)
        # Skill in [0, 1]: affects initial phrasing choice and speed.
        self.skill = self.rng.uniform(0.2, 0.95)
        self.typing_speed = self.rng.uniform(0.8, 1.3)

    # -- phrasing choice -------------------------------------------------------

    def choose_phrasing(self, task, attempt, tried, had_error_feedback,
                        had_poor_results):
        """Pick the next phrasing for ``task``.

        ``tried`` are phrasings already used (not repeated while
        alternatives remain). Returns a Phrasing.
        """
        pool = [p for p in task.phrasings if p not in tried]
        if not pool:
            pool = list(task.phrasings)

        good_weight = 0.2 + 0.35 * self.skill
        if had_error_feedback:
            good_weight = min(0.97, good_weight + 0.38)
        if had_poor_results:
            good_weight = min(0.97, good_weight + 0.32)
        if attempt > 1:
            good_weight = min(0.97, good_weight + 0.12 * (attempt - 1))

        good = [p for p in pool if p.valid and p.specified and p.parsed]
        weak = [p for p in pool if p.valid and not (p.specified and p.parsed)]
        invalid = [p for p in pool if not p.valid]

        roll = self.rng.random()
        if good and (roll < good_weight or not (weak or invalid)):
            return self.rng.choice(good)
        if weak and (roll < good_weight + 0.75 * (1 - good_weight) or not invalid):
            return self.rng.choice(weak)
        if invalid:
            return self.rng.choice(invalid)
        return self.rng.choice(pool)

    def choose_keyword_query(self, task, attempt):
        queries = task.keyword_queries
        index = min(attempt - 1, len(queries) - 1)
        return queries[index]

    # -- timing model -----------------------------------------------------------

    def attempt_seconds(self, attempt, sentence):
        """Seconds spent on one attempt (read, think, type, submit).

        The first attempt includes reading and understanding the task
        description; later attempts include reading feedback and
        revising. There is a hard floor near 50 s on the first attempt,
        matching the paper's observation.
        """
        base = 27.0 if attempt == 1 else 11.0
        typing = 0.36 * len(sentence) / self.typing_speed
        thinking = self.rng.uniform(5.0, 17.0) * (1.3 - 0.5 * self.skill)
        total = base + typing + thinking
        if attempt == 1:
            total = max(total, 47.0 + self.rng.uniform(0.0, 6.0))
        return total

    def review_seconds(self):
        """Time spent inspecting returned results."""
        return self.rng.uniform(3.0, 10.0)

    # -- stopping rule -----------------------------------------------------------

    def satisfied(self, score, passing_threshold):
        """Stop after a passing attempt? Better scores satisfy more."""
        if score < passing_threshold:
            return False
        if score >= 0.95:
            return True
        # The paper: participants who reached the criterion could choose
        # to move on or revise; most moved on.
        keep_probability = 0.62 + 0.33 * score
        return self.rng.random() < keep_probability


def make_participants(count, seed):
    """The study cohort, deterministically derived from ``seed``."""
    master = random.Random(seed)
    return [
        Participant(index + 1, master.randrange(1_000_000_000))
        for index in range(count)
    ]
