"""Aggregation of study results into the paper's figures and table.

* :meth:`StudyReport.figure11` — avg. time and avg. iterations per task
  (NaLIX block);
* :meth:`StudyReport.figure12` — avg. precision/recall per task, NaLIX
  vs. keyword search;
* :meth:`StudyReport.table7` — avg. precision/recall over all queries,
  over correctly specified queries, and over correctly specified+parsed
  queries, with the query counts.
"""

from __future__ import annotations

from repro.evaluation.tasks import TASKS


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


class StudyReport:
    """Formats a :class:`~repro.evaluation.study.StudyResults`."""

    def __init__(self, results):
        self.results = results
        self.task_ids = [task.task_id for task in TASKS]

    # -- Figure 11 ------------------------------------------------------------

    def figure11(self):
        """Rows: task -> (avg seconds, avg iterations, max iterations)."""
        rows = {}
        for task_id in self.task_ids:
            records = self.results.by_task("nalix", task_id)
            rows[task_id] = {
                "avg_seconds": _mean(r.seconds for r in records),
                "avg_iterations": _mean(r.iterations for r in records),
                "max_iterations": max((r.iterations for r in records), default=0),
                "min_iterations": min((r.iterations for r in records), default=0),
            }
        return rows

    # -- Figure 12 --------------------------------------------------------------

    def figure12(self):
        """Rows: task -> P/R for both systems."""
        rows = {}
        for task_id in self.task_ids:
            nalix = self.results.by_task("nalix", task_id)
            keyword = self.results.by_task("keyword", task_id)
            rows[task_id] = {
                "nalix_precision": _mean(r.precision for r in nalix),
                "nalix_recall": _mean(r.recall for r in nalix),
                "keyword_precision": _mean(r.precision for r in keyword),
                "keyword_recall": _mean(r.recall for r in keyword),
            }
        return rows

    # -- Table 7 -----------------------------------------------------------------

    def table7(self):
        """The paper's three-row summary over accepted NaLIX queries."""
        records = [r for r in self.results.by_system("nalix") if r.accepted]
        specified = [r for r in records if r.specified_correctly]
        parsed = [r for r in specified if r.parsed_correctly]
        return {
            "all queries": self._row(records),
            "all queries specified correctly": self._row(specified),
            "all queries specified and parsed correctly": self._row(parsed),
        }

    @staticmethod
    def _row(records):
        return {
            "avg_precision": _mean(r.precision for r in records),
            "avg_recall": _mean(r.recall for r in records),
            "total_queries": len(records),
        }

    # -- rendering ------------------------------------------------------------------

    def render_figure11(self):
        lines = [
            "Figure 11 — query formulation effort per task (NaLIX block)",
            f"{'task':<6}{'avg time (s)':>14}{'avg iters':>12}{'max iters':>12}",
        ]
        for task_id, row in self.figure11().items():
            lines.append(
                f"{task_id:<6}{row['avg_seconds']:>14.1f}"
                f"{row['avg_iterations']:>12.2f}{row['max_iterations']:>12d}"
            )
        return "\n".join(lines)

    def render_figure12(self):
        lines = [
            "Figure 12 — search quality per task, NaLIX vs keyword search",
            f"{'task':<6}{'NaLIX P':>9}{'NaLIX R':>9}{'KW P':>9}{'KW R':>9}",
        ]
        for task_id, row in self.figure12().items():
            lines.append(
                f"{task_id:<6}{row['nalix_precision']:>9.3f}"
                f"{row['nalix_recall']:>9.3f}"
                f"{row['keyword_precision']:>9.3f}"
                f"{row['keyword_recall']:>9.3f}"
            )
        return "\n".join(lines)

    def render_table7(self):
        lines = [
            "Table 7 — average precision and recall (NaLIX block)",
            f"{'subset':<46}{'avg P':>8}{'avg R':>8}{'queries':>9}",
        ]
        for label, row in self.table7().items():
            lines.append(
                f"{label:<46}{row['avg_precision']:>8.1%}"
                f"{row['avg_recall']:>8.1%}{row['total_queries']:>9d}"
            )
        return "\n".join(lines)

    def render(self):
        return "\n\n".join(
            [self.render_figure11(), self.render_figure12(), self.render_table7()]
        )
