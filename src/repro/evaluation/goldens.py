"""Committed golden answer digests for the canary's probe set.

The serving canary (:mod:`repro.serve.canary`) re-executes the nine
study tasks' reference sentences and compares each answer's canonical
digest (:mod:`repro.obs.answers`) against a golden fixture.  This
module holds the committed fixtures for the standard generated-DBLP
datasets — keyed by ``(data, books, seed)`` so a canary on a dataset
we never baselined falls back to self-baselining instead of drifting
forever against the wrong goldens.

The digests are reproducible: the DBLP generator is seeded, the
normalizer sorts the answer multiset, and the digest is a truncated
sha256 over versioned canonical JSON.  Regenerate after an intentional
pipeline change with::

    PYTHONPATH=src python -c "
    from repro.evaluation.bench import build_bench_nalix
    from repro.evaluation.goldens import compute_goldens
    print(compute_goldens(build_bench_nalix(books=40, seed=7)))"

and paste the result here.  An *unintentional* digest change is
exactly what the canary (and the ``tests/serve/test_canary.py``
fixture check) exists to catch — update these values only when the
answer change is understood and deliberate.
"""

from __future__ import annotations

#: ``{golden_key: {task_id: digest}}`` for the baselined datasets.
#: ``dblp:books=40:seed=7`` is the CI smoke dataset;
#: ``dblp:books=120:seed=7`` is the benchmark/serve default.
GOLDEN_DIGESTS = {
    "dblp:books=40:seed=7": {
        "Q1": "33bcf82686a8fbd4",
        "Q3": "84efd5dc5d2cafd6",
        "Q4": "23f9b386ade97c85",
        "Q6": "84efd5dc5d2cafd6",
        "Q7": "20948a8a7070dcd5",
        "Q8": "ee56182d6c85eb35",
        "Q9": "c802ed8cf40b50c0",
        "Q10": "1280cb56d88ffbbb",
        "Q11": "d3475d38152a0fa5",
    },
    "dblp:books=120:seed=7": {
        "Q1": "74a19dfc9ecaf94a",
        "Q3": "1ea6fba69b921f2e",
        "Q4": "2e58355935a2d9b7",
        "Q6": "1ea6fba69b921f2e",
        "Q7": "b319fb90acf9924b",
        "Q8": "6c34895fd1680ae3",
        "Q9": "ebfb0ad950ce9eda",
        "Q10": "69464e089ecee4ee",
        "Q11": "ef364a6393fdc902",
    },
}


def golden_key(data, books, seed):
    """The fixture key for one dataset spec (``dblp:books=40:seed=7``)."""
    return f"{data}:books={books}:seed={seed}"


def goldens_for(data, books, seed):
    """The committed ``{task_id: digest}`` fixture, or ``None``.

    ``None`` (an unbaselined dataset) tells the canary to self-baseline
    from its first healthy sweep instead of comparing against goldens
    computed over different data.
    """
    fixture = GOLDEN_DIGESTS.get(golden_key(data, books, seed))
    return dict(fixture) if fixture is not None else None


def compute_goldens(nalix):
    """Fresh ``{task_id: digest}`` goldens from a live pipeline.

    Only healthy (status ``ok``) answers produce a golden — a task the
    pipeline cannot answer cleanly has no trustworthy digest to pin.
    """
    from repro.evaluation.tasks import reference_sentences

    goldens = {}
    for task_id, sentence in reference_sentences():
        result = nalix.ask(sentence)
        if result.status == "ok" and result.answer_digest is not None:
            goldens[task_id] = result.answer_digest
    return goldens
