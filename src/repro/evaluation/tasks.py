"""The nine XMP search tasks, adapted to the DBLP collection.

The paper used the "XMP" use-case set (W3C XQuery Use Cases) with the
exclusions listed in its footnote 7 (Q2, Q5, Q12; Q11's second
sub-task), against a DBLP sub-collection where ``year`` replaces
``price``. Each task here carries:

* the elaborated task description shown to (simulated) participants;
* a gold-result function (the "correct schema-aware XQuery" equivalent,
  computed directly over the document);
* a pool of natural-language phrasings: correct ones, mis-specified
  ones (accepted by NaLIX but not matching the task description — the
  paper's "failed to write a query that matched the exact task
  description"), and invalid ones (rejected with feedback, e.g. the
  "as" constructions of the paper's Query 1);
* keyword-query variants for the baseline block.

Phrasing labels: ``specified`` — does the phrasing match the task
description; ``parsed`` — does the parse/translation preserve the
intent (False models the paper's Minipar mis-parses, e.g. the
", including their year and title" conjunction loss).
"""

from __future__ import annotations

from repro.xmlstore.model import ElementNode


class Phrasing:
    """One natural-language phrasing variant of a task."""

    def __init__(self, text, specified=True, parsed=True, valid=True):
        self.text = text
        self.specified = specified
        self.parsed = parsed
        self.valid = valid  # expected to be accepted by NaLIX

    def __repr__(self):
        flags = []
        if not self.valid:
            flags.append("invalid")
        if not self.specified:
            flags.append("misspec")
        if not self.parsed:
            flags.append("misparse")
        return f"Phrasing({self.text[:32]!r}, {'+'.join(flags) or 'good'})"


class SearchTask:
    """One task of the study."""

    def __init__(self, task_id, description, gold, phrasings,
                 keyword_queries, ordered=False):
        self.task_id = task_id
        self.description = description
        self._gold = gold
        self.phrasings = phrasings
        self.keyword_queries = keyword_queries
        self.ordered = ordered

    def gold(self, database):
        return self._gold(database.document())

    def good_phrasings(self):
        return [p for p in self.phrasings if p.valid and p.specified and p.parsed]

    def __repr__(self):
        return f"SearchTask({self.task_id})"


# -- gold helpers ------------------------------------------------------------------


def _books(document):
    return document.root.child_elements("book")


def _articles(document):
    return document.root.child_elements("article")


def _child_text(element, tag):
    children = element.child_elements(tag)
    return children[0].string_value().strip() if children else ""


def _child(element, tag):
    children = element.child_elements(tag)
    return children[0] if children else None


def _gold_q1(document):
    gold = []
    for book in _books(document):
        year = _child_text(book, "year")
        if _child_text(book, "publisher") == "Addison-Wesley" and year and int(
            year
        ) > 1991:
            gold.extend([_child(book, "year"), _child(book, "title")])
    return [node for node in gold if node is not None]


def _gold_q3(document):
    gold = []
    for book in _books(document):
        gold.append(_child(book, "title"))
        gold.extend(book.child_elements("author"))
    return [node for node in gold if node is not None]


def _gold_q4(document):
    gold = []
    for article in _articles(document):
        gold.extend(article.child_elements("author"))
        gold.append(_child(article, "title"))
    return [node for node in gold if node is not None]


def _gold_q6(document):
    """Title plus the first two authors of each book (XMP Q6)."""
    gold = []
    for book in _books(document):
        gold.append(_child(book, "title"))
        gold.extend(book.child_elements("author")[:2])
    return [node for node in gold if node is not None]


def _gold_q7(document):
    titles = [_child(book, "title") for book in _books(document)]
    titles = [node for node in titles if node is not None]
    return sorted(titles, key=lambda node: node.string_value().casefold())


def _gold_q8(document):
    gold = []
    for book in _books(document):
        if "suciu" in book.string_value().casefold():
            gold.append(book)
    return gold


def _gold_q9(document):
    gold = []
    for element in document.root.children:
        if not isinstance(element, ElementNode):
            continue
        title = _child(element, "title")
        if title is not None and "xml" in title.string_value().casefold():
            gold.append(title)
    return gold


def _gold_q10(document):
    """For each publisher element, the number of books it published."""
    counts = {}
    for book in _books(document):
        name = _child_text(book, "publisher")
        counts[name] = counts.get(name, 0) + 1
    gold = []
    for book in _books(document):
        publisher = _child(book, "publisher")
        if publisher is not None:
            gold.append(counts[publisher.string_value().strip()])
    return gold


def _gold_q11(document):
    gold = []
    for article in _articles(document):
        year = _child_text(article, "year")
        if year and int(year) > 2000:
            gold.extend([_child(article, "title"), _child(article, "journal")])
    return [node for node in gold if node is not None]


# -- the task list ------------------------------------------------------------------------

TASKS = [
    SearchTask(
        "Q1",
        "List the year and title of each book published by Addison-Wesley "
        "after 1991.",
        _gold_q1,
        [
            Phrasing("Return the year and title of every book published by "
                     "Addison-Wesley after 1991."),
            Phrasing("Find the year and the title of each book published by "
                     "Addison-Wesley after 1991."),
            Phrasing("List books published by Addison-Wesley after 1991.",
                     specified=False),
            Phrasing("List books published by Addison-Wesley after 1991, "
                     "including their year and title.", parsed=False),
            Phrasing("Show books that appeared at Addison-Wesley as of 1991.",
                     valid=False),
        ],
        ["book Addison-Wesley 1991 year title", "Addison-Wesley book year"],
    ),
    SearchTask(
        "Q3",
        "List the title and all the authors of each book.",
        _gold_q3,
        [
            Phrasing("Return the title and the authors of every book."),
            Phrasing("Find the title and the authors of each book."),
            Phrasing("List every book with title and authors.", specified=False),
            Phrasing("Return the title of every book.", specified=False),
            Phrasing("Return title as well as authors of all books.",
                     valid=False),
        ],
        ["book title author", "title author"],
    ),
    SearchTask(
        "Q4",
        "List the authors and the title of each article.",
        _gold_q4,
        [
            Phrasing("Return the authors and the title of every article."),
            Phrasing("Find the authors and the title of each article."),
            Phrasing("List every article with authors and title.",
                     specified=False),
            Phrasing("Return the authors of every article.", specified=False),
            Phrasing("Return the authors of articles as title groups.",
                     valid=False),
        ],
        ["article author title", "author article"],
    ),
    SearchTask(
        "Q6",
        "For each book, list its title and its first two authors.",
        _gold_q6,
        [
            Phrasing("Return the title and the authors of every book.",
                     specified=True),
            Phrasing("Find the title and the authors of each book.",
                     specified=True),
            Phrasing("List books with title and authors.", specified=False),
            Phrasing("Return the title and the first two authors of every "
                     "book.", valid=False),
        ],
        ["book title author", "book author"],
    ),
    SearchTask(
        "Q7",
        "List the title of each book, in alphabetic order of the titles.",
        _gold_q7,
        [
            Phrasing("Return the title of every book, sorted by title."),
            Phrasing("List the title of each book in alphabetical order of "
                     "the title."),
            Phrasing("Return every book sorted by title.", specified=False),
            Phrasing("Return the titles of books as an alphabetic list.",
                     valid=False),
        ],
        ["book title sorted", "title alphabetic order"],
        ordered=True,
    ),
    SearchTask(
        "Q8",
        'Find each book in which the name "Suciu" occurs.',
        _gold_q8,
        [
            Phrasing('Find every book where the author of the book contains '
                     '"Suciu".'),
            Phrasing('Return every book where the author of the book '
                     'contains "Suciu".'),
            Phrasing('Find the book of "Suciu".', specified=False),
            Phrasing('Find books mentioning "Suciu" somewhere inside.',
                     valid=False),
        ],
        ['book "Suciu"', "Suciu"],
    ),
    SearchTask(
        "Q9",
        'List each title that contains the word "XML".',
        _gold_q9,
        [
            Phrasing('Return every title that contains "XML".'),
            Phrasing('Find the titles containing "XML".'),
            Phrasing('Return every book where the title of the book contains '
                     '"XML".', specified=False),
            Phrasing('Return titles such that "XML" shows up.', valid=False),
        ],
        ['title "XML"', "XML title"],
    ),
    SearchTask(
        "Q10",
        "For each publisher, find the number of books it published.",
        _gold_q10,
        [
            Phrasing("Return the number of books published by each "
                     "publisher."),
            Phrasing("Return the number of books of every publisher."),
            Phrasing("Return the number of books.", specified=False),
            Phrasing("Count books per publisher as totals.", valid=False),
        ],
        ["publisher number books", "publisher book count"],
    ),
    SearchTask(
        "Q11",
        "List the title and the journal of each article published after "
        "2000.",
        _gold_q11,
        [
            Phrasing("Return the title and the journal of every article "
                     "published after 2000."),
            Phrasing("Find the title and the journal of each article "
                     "published after 2000."),
            Phrasing("List articles published after 2000.", specified=False),
            Phrasing("Return the title of every article published after "
                     "2000.", specified=False),
            Phrasing("Return articles as title and journal after 2000.",
                     valid=False),
        ],
        ["article 2000 title journal", "article journal 2000"],
    ),
]


def task_by_id(task_id):
    for task in TASKS:
        if task.task_id == task_id:
            return task
    raise KeyError(task_id)


def reference_sentences():
    """``(task_id, sentence)`` for every task's canonical phrasing.

    The first good phrasing of each of the nine tasks — the fixed
    probe set the serving canary re-executes and the loadgen task mix
    is built from, so golden answer digests have one unambiguous
    sentence per task.
    """
    return [
        (task.task_id, task.good_phrasings()[0].text) for task in TASKS
    ]
