"""The paper's experimental evaluation, as a runnable harness.

Reproduces the Sec. 5 user study: 18 participants, 9 search tasks
adapted from the XQuery Use Cases "XMP" set, a within-subject design
with NaLIX and a keyword-search block ordered by Latin squares, a 5-min
per-task limit and a harmonic-mean >= 0.5 passing criterion.

Human participants are simulated (see DESIGN.md's substitution notes):
each participant is a seeded stochastic process choosing phrasings from
per-task pools of valid, mis-specified and invalid variants, revising
after NaLIX feedback.
"""

from repro.evaluation.metrics import harmonic_mean, precision_recall
from repro.evaluation.report import StudyReport
from repro.evaluation.study import Study, StudyConfig
from repro.evaluation.tasks import TASKS, SearchTask

__all__ = [
    "SearchTask",
    "Study",
    "StudyConfig",
    "StudyReport",
    "TASKS",
    "harmonic_mean",
    "precision_recall",
]
