"""Client-side retry policy: exponential backoff, jitter, hedging.

One :class:`RetryPolicy` is shared by every HTTP client in the repo
(``repro loadgen``, ``repro stats --url``, and
:class:`repro.serve.client.ServeClient`) so retry semantics stay
uniform:

* Only *retryable* outcomes are retried: transport errors, HTTP 429 /
  500 / 503 / 504, and any response body whose ``retryable`` field is
  true.  A 422 (``rejected`` — the user must rephrase) is **never**
  retried; neither is a 2xx ``degraded`` answer (the ladder already
  answered).
* Backoff is exponential (``base * multiplier**attempt``) capped at
  ``max_backoff``, with **full jitter** from a seeded ``random.Random``
  so retries are deterministic under test yet decorrelated in a fleet.
* A server-supplied ``Retry-After`` header wins over the computed
  backoff (the admission controller knows its own token-bucket refill
  better than the client does).
* Optionally, a **hedged** second attempt fires when the first has been
  in flight longer than an observed p95 (see
  :class:`repro.serve.client.ServeClient`); the policy only decides the
  threshold, the client owns the racing.

The policy is pure decision logic — no I/O — so it is trivially
unit-testable: :meth:`backoff_seconds` and :meth:`should_retry` are
deterministic functions of their inputs plus the seeded RNG stream.
"""

from __future__ import annotations

import random

#: HTTP statuses worth retrying.  429/503 are admission sheds with
#: Retry-After; 500 internal (retryable per the taxonomy); 504 is a
#: watchdog/budget exhaustion.
RETRYABLE_STATUSES = frozenset({429, 500, 503, 504})


class RetryPolicy:
    """Decide whether / when to retry one HTTP query attempt."""

    def __init__(self, max_attempts=3, base_backoff=0.05, multiplier=2.0,
                 max_backoff=2.0, jitter=True, seed=None,
                 hedge_after_p95=False):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_backoff < 0 or max_backoff < 0:
            raise ValueError("backoff seconds must be >= 0")
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.hedge_after_p95 = hedge_after_p95
        self._rng = random.Random(seed)

    @classmethod
    def none(cls):
        """A policy that never retries (one attempt, no hedging)."""
        return cls(max_attempts=1)

    def should_retry(self, attempt, status=None, retryable=None,
                     transport_error=False):
        """True when attempt number ``attempt`` (1-based) may be retried.

        ``status`` is the HTTP status (None on transport error);
        ``retryable`` is the response body's ``retryable`` field when
        the caller parsed one.  An explicit ``retryable: false`` body
        vetoes a status-based retry — the server has classified the
        failure as not worth repeating.
        """
        if attempt >= self.max_attempts:
            return False
        if transport_error:
            return True
        if status is None or status < 400:
            return False
        if retryable is False:
            return False
        return status in RETRYABLE_STATUSES

    def backoff_seconds(self, attempt, retry_after=None):
        """Seconds to sleep before retry number ``attempt`` (1-based).

        A server-supplied ``retry_after`` (seconds) takes precedence
        over the computed exponential backoff.
        """
        if retry_after is not None and retry_after >= 0:
            return float(retry_after)
        backoff = min(
            self.max_backoff,
            self.base_backoff * (self.multiplier ** (attempt - 1)),
        )
        if self.jitter:
            backoff *= self._rng.random()
        return backoff

    def to_dict(self):
        return {
            "max_attempts": self.max_attempts,
            "base_backoff": self.base_backoff,
            "multiplier": self.multiplier,
            "max_backoff": self.max_backoff,
            "jitter": self.jitter,
            "hedge_after_p95": self.hedge_after_p95,
        }

    def __repr__(self):
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base={self.base_backoff}, x{self.multiplier}, "
            f"cap={self.max_backoff}s"
            f"{', hedged' if self.hedge_after_p95 else ''})"
        )


def parse_retry_after(value):
    """Parse a ``Retry-After`` header value into seconds (or None).

    Only the delta-seconds form is supported (the admission controller
    emits integers); HTTP-date forms return None rather than guessing.
    """
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return max(0.0, seconds)
