"""Query budgets: cooperative resource limits checked at loop boundaries.

A :class:`QueryBudget` is an immutable *specification* of how much work
one query may do; :meth:`QueryBudget.start` produces a
:class:`BudgetMeter` that tracks spending against it.  The meter is made
available to deep engine code through a context variable (mirroring
``repro.obs.spans``): ``NaLIX.ask`` activates it, and the evaluator /
MQF join / planner / keyword engine call the module-level
:func:`charge` and :func:`check_deadline` helpers at their loop
boundaries.  With no active meter both helpers are near-free no-ops, so
code paths outside ``ask`` pay almost nothing.

Resources:

``deadline``
    Wall-clock seconds for the whole query (``time.perf_counter``).
``candidate_tuples``
    Cumulative tuples materialized by MQF joins and the conjunctive
    planner's tuple enumeration — the quantity that blows up on
    adversarial phrasings (two same-labelled sets anchoring at the
    document root are quadratic).
``materialized_nodes``
    Cumulative nodes materialized by path steps, document scans, and
    keyword-term matches.
``flwor_iterations``
    Cumulative FLWOR binding-tuple iterations (both the naive
    nested-loop path and the planned tuple stream).

All checks are *cooperative*: the engine may overshoot a cap by one
batch (one path step, one join round) before the next check fires, but
it can never run unbounded.  Every trip increments a
``resilience.budget.exceeded.<resource>`` counter.
"""

from __future__ import annotations

import time
from contextvars import ContextVar

from repro.obs.metrics import METRICS
from repro.resilience.errors import BudgetExceeded

#: How many ``charge`` calls may pass between implicit deadline checks.
_DEADLINE_CHECK_INTERVAL = 64


class QueryBudget:
    """Immutable per-query resource limits (None disables a limit)."""

    #: Sane defaults for interactive use (see README "Resilience").
    DEFAULT_DEADLINE_SECONDS = 5.0
    DEFAULT_MAX_CANDIDATE_TUPLES = 1_000_000
    DEFAULT_MAX_MATERIALIZED_NODES = 5_000_000
    DEFAULT_MAX_FLWOR_ITERATIONS = 1_000_000

    __slots__ = ("deadline_seconds", "max_candidate_tuples",
                 "max_materialized_nodes", "max_flwor_iterations")

    def __init__(self, deadline_seconds=None, max_candidate_tuples=None,
                 max_materialized_nodes=None, max_flwor_iterations=None):
        self.deadline_seconds = deadline_seconds
        self.max_candidate_tuples = max_candidate_tuples
        self.max_materialized_nodes = max_materialized_nodes
        self.max_flwor_iterations = max_flwor_iterations

    @classmethod
    def default(cls, deadline_seconds=None):
        """The default interactive budget (used by ``ask(timeout=...)``)."""
        return cls(
            deadline_seconds=(
                cls.DEFAULT_DEADLINE_SECONDS
                if deadline_seconds is None
                else deadline_seconds
            ),
            max_candidate_tuples=cls.DEFAULT_MAX_CANDIDATE_TUPLES,
            max_materialized_nodes=cls.DEFAULT_MAX_MATERIALIZED_NODES,
            max_flwor_iterations=cls.DEFAULT_MAX_FLWOR_ITERATIONS,
        )

    def start(self):
        """Begin metering one query against this budget."""
        return BudgetMeter(self)

    def scaled(self, factor):
        """A copy with every finite cap multiplied by ``factor``.

        Used by the serving brownout ladder to tighten budgets under
        pressure (``factor`` < 1).  ``None`` (unlimited) caps stay
        unlimited; count caps keep a floor of 1.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be > 0, got {factor!r}")

        def _scale(value, floor=None):
            if value is None:
                return None
            scaled = value * factor
            if floor is not None:
                scaled = max(floor, int(scaled))
            return scaled

        return type(self)(
            deadline_seconds=_scale(self.deadline_seconds),
            max_candidate_tuples=_scale(self.max_candidate_tuples, floor=1),
            max_materialized_nodes=_scale(
                self.max_materialized_nodes, floor=1
            ),
            max_flwor_iterations=_scale(self.max_flwor_iterations, floor=1),
        )

    def to_dict(self):
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_candidate_tuples": self.max_candidate_tuples,
            "max_materialized_nodes": self.max_materialized_nodes,
            "max_flwor_iterations": self.max_flwor_iterations,
        }

    def __repr__(self):
        parts = ", ".join(
            f"{key}={value}"
            for key, value in self.to_dict().items()
            if value is not None
        )
        return f"QueryBudget({parts})"


class BudgetMeter:
    """Tracks one query's spending against a :class:`QueryBudget`."""

    __slots__ = ("budget", "started_at", "spent", "_limits",
                 "_deadline_at", "_charges_since_deadline_check",
                 "_expired_reason")

    def __init__(self, budget):
        self.budget = budget
        self.started_at = time.perf_counter()
        self.spent = {
            "candidate_tuples": 0,
            "materialized_nodes": 0,
            "flwor_iterations": 0,
        }
        self._limits = {
            "candidate_tuples": budget.max_candidate_tuples,
            "materialized_nodes": budget.max_materialized_nodes,
            "flwor_iterations": budget.max_flwor_iterations,
        }
        self._deadline_at = (
            self.started_at + budget.deadline_seconds
            if budget.deadline_seconds is not None
            else None
        )
        self._charges_since_deadline_check = 0
        self._expired_reason = None

    def expire(self, reason="expired"):
        """Force the meter expired: the next check raises EXHAUSTED.

        Called from *another* thread (the stuck-query watchdog) to turn
        a wedged evaluation into a classified ``exhausted`` response at
        its next cooperative check.  Idempotent; a plain attribute write
        is atomic under the GIL so no lock is needed.
        """
        if self._expired_reason is None:
            self._expired_reason = reason

    @property
    def expired(self):
        return self._expired_reason is not None

    def _check_expired(self):
        if self._expired_reason is not None:
            METRICS.inc("resilience.budget.exceeded.deadline")
            raise BudgetExceeded(
                "deadline",
                self.budget.deadline_seconds or 0.0,
                self.elapsed_seconds(),
            )

    def charge(self, resource, amount=1):
        """Consume ``amount`` of ``resource``; raise when over budget.

        Also performs an implicit deadline check every
        ``_DEADLINE_CHECK_INTERVAL`` charges, so tight loops that only
        charge one resource still honour the deadline.
        """
        self._check_expired()
        spent = self.spent[resource] + amount
        self.spent[resource] = spent
        limit = self._limits[resource]
        if limit is not None and spent > limit:
            METRICS.inc(f"resilience.budget.exceeded.{resource}")
            raise BudgetExceeded(resource, limit, spent)
        self._charges_since_deadline_check += 1
        if self._charges_since_deadline_check >= _DEADLINE_CHECK_INTERVAL:
            self.check_deadline()

    def check_deadline(self):
        """Raise :class:`BudgetExceeded` when the wall clock has run out."""
        self._check_expired()
        self._charges_since_deadline_check = 0
        if self._deadline_at is None:
            return
        now = time.perf_counter()
        if now > self._deadline_at:
            METRICS.inc("resilience.budget.exceeded.deadline")
            raise BudgetExceeded(
                "deadline",
                self.budget.deadline_seconds,
                now - self.started_at,
            )

    def elapsed_seconds(self):
        return time.perf_counter() - self.started_at

    def remaining_seconds(self):
        """Seconds left before the deadline; None without one."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.perf_counter()

    def snapshot(self):
        """Plain-dict view of spending (for span attributes / audits)."""
        entry = dict(self.spent)
        entry["elapsed_seconds"] = self.elapsed_seconds()
        if self._expired_reason is not None:
            entry["expired"] = self._expired_reason
        return entry

    def __repr__(self):
        return f"BudgetMeter({self.budget!r}, spent={self.spent})"


_ACTIVE_METER: ContextVar[BudgetMeter | None] = ContextVar(
    "repro_resilience_budget", default=None
)


def active_meter():
    """The budget meter active in this context, or None."""
    return _ACTIVE_METER.get()


class _MeterActivation:
    __slots__ = ("_meter", "_tokens")

    def __init__(self, meter):
        self._meter = meter
        self._tokens = []  # LIFO: safe under re-entrant use

    def __enter__(self):
        self._tokens.append(_ACTIVE_METER.set(self._meter))
        return self._meter

    def __exit__(self, exc_type, exc_value, traceback):
        _ACTIVE_METER.reset(self._tokens.pop())
        return False


def activate_budget(meter):
    """Make ``meter`` (or None) the context's active budget meter."""
    return _MeterActivation(meter)


def charge(resource, amount=1):
    """Charge the active meter; no-op when no budget is active."""
    meter = _ACTIVE_METER.get()
    if meter is not None:
        meter.charge(resource, amount)


def check_deadline():
    """Check the active meter's deadline; no-op when none is active."""
    meter = _ACTIVE_METER.get()
    if meter is not None:
        meter.check_deadline()
