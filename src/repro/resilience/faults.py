"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` holds :class:`FaultSpec` triggers keyed by pipeline
stage.  ``NaLIX`` fires :meth:`FaultPlan.fire` at the top of every stage
span; when a spec triggers, an :class:`InjectedFault` (or a caller-
supplied exception) is raised *inside* the stage, exercising exactly the
error path a real failure of that stage would take.

Triggers are deterministic: either fire on the Nth call to the stage
(``at_call``, 1-based; the default fires on every call) or fire with a
probability driven by a seeded ``random.Random`` — the same plan run
against the same query sequence always injects the same faults, which
is what lets the chaos suite assert exact outcomes.

CLI syntax (``--inject-fault``), parsed by :meth:`FaultPlan.parse_spec`::

    STAGE                 fire on every call of STAGE
    STAGE:N               fire on the Nth call only
    STAGE:p=0.5,seed=42   fire with probability 0.5 (seeded)

Every fired fault increments the ``resilience.faults.injected`` counter
and a per-stage ``resilience.faults.injected.<stage>`` counter.
"""

from __future__ import annotations

import random

from repro.obs.metrics import METRICS
from repro.resilience.errors import InjectedFault

#: Pipeline stages with an injection point, in execution order.
FAULT_STAGES = ("parse", "classify", "validate", "translate", "analyze",
                "xquery-parse", "evaluate")

_INJECTED = METRICS.counter("resilience.faults.injected")


class FaultSpec:
    """One trigger: which stage, when, and what to raise."""

    def __init__(self, stage, at_call=None, probability=None, seed=0,
                 exception=None, message=None):
        if stage not in FAULT_STAGES:
            raise ValueError(
                f"unknown fault stage {stage!r}; expected one of "
                f"{', '.join(FAULT_STAGES)}"
            )
        if at_call is not None and at_call < 1:
            raise ValueError("at_call is 1-based and must be >= 1")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self.stage = stage
        self.at_call = at_call
        self.probability = probability
        self.seed = seed
        self.exception = exception
        self.message = message
        self._calls = 0
        self._rng = random.Random(seed) if probability is not None else None

    def should_fire(self):
        """Advance this spec's call count; True when the fault triggers."""
        self._calls += 1
        if self.at_call is not None:
            return self._calls == self.at_call
        if self.probability is not None:
            return self._rng.random() < self.probability
        return True

    def make_exception(self):
        if self.exception is not None:
            # A class raises a fresh instance; an instance raises as-is.
            if isinstance(self.exception, type):
                return self.exception(
                    self.message or f"injected fault at stage {self.stage!r}"
                )
            return self.exception
        return InjectedFault(self.stage, self.message)

    def reset(self):
        """Rewind the call counter and reseed the RNG (for reuse)."""
        self._calls = 0
        if self.probability is not None:
            self._rng = random.Random(self.seed)

    def __repr__(self):
        trigger = (
            f"at_call={self.at_call}" if self.at_call is not None
            else f"p={self.probability}, seed={self.seed}"
            if self.probability is not None
            else "always"
        )
        return f"FaultSpec({self.stage!r}, {trigger})"


class FaultPlan:
    """A set of fault specs consulted at every pipeline injection point."""

    def __init__(self, specs=()):
        self.specs = list(specs)

    @classmethod
    def coerce(cls, value):
        """Accept a plan, a spec list, a single spec, or a CLI string."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, FaultSpec):
            return cls([value])
        if isinstance(value, str):
            return cls([cls.parse_spec(value)])
        return cls(list(value))

    @staticmethod
    def parse_spec(text):
        """Parse one ``--inject-fault`` argument into a :class:`FaultSpec`."""
        stage, _, options = text.partition(":")
        stage = stage.strip()
        options = options.strip()
        if not options:
            return FaultSpec(stage)
        if options.isdigit():
            return FaultSpec(stage, at_call=int(options))
        probability = None
        seed = 0
        for part in options.split(","):
            key, _, value = part.partition("=")
            key = key.strip()
            try:
                if key == "p":
                    probability = float(value)
                elif key == "seed":
                    seed = int(value)
                else:
                    raise ValueError
            except ValueError:
                raise ValueError(
                    f"bad fault option {part!r}; expected STAGE, STAGE:N, "
                    "or STAGE:p=FLOAT[,seed=INT]"
                ) from None
        if probability is None:
            raise ValueError(f"fault spec {text!r} sets no trigger")
        return FaultSpec(stage, probability=probability, seed=seed)

    def fire(self, stage):
        """Raise the configured fault when a spec for ``stage`` triggers."""
        for spec in self.specs:
            if spec.stage == stage and spec.should_fire():
                _INJECTED.inc()
                METRICS.inc(f"resilience.faults.injected.{stage}")
                raise spec.make_exception()

    def reset(self):
        for spec in self.specs:
            spec.reset()

    def __bool__(self):
        return bool(self.specs)

    def __repr__(self):
        return f"FaultPlan({self.specs!r})"
