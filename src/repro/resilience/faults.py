"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` holds :class:`FaultSpec` triggers keyed by pipeline
stage.  ``NaLIX`` fires :meth:`FaultPlan.fire` at the top of every stage
span; when a spec triggers it either raises an :class:`InjectedFault`
(or a caller-supplied exception) *inside* the stage — exercising exactly
the error path a real failure of that stage would take — or, in
``delay`` mode, sleeps inside the stage to inject latency without
monkeypatching (the stage then proceeds normally, which is what lets
the stuck-query watchdog observe a genuinely slow in-flight request).

Triggers are deterministic: either fire on the Nth call to the stage
(``at_call``, 1-based; the default fires on every call) or fire with a
probability driven by a seeded ``random.Random`` — the same plan run
against the same query sequence always injects the same faults, which
is what lets the chaos suite assert exact outcomes.  A spec may also be
scoped to one tenant (``tenant=``): the serving layer publishes the
current tenant through :func:`fault_scope` and unscoped requests only
match unscoped specs.

CLI syntax (``--inject-fault``), parsed by :meth:`FaultPlan.parse_spec`::

    STAGE                           fire on every call of STAGE
    STAGE:N                         fire on the Nth call only
    STAGE:p=0.5,seed=42             fire with probability 0.5 (seeded)
    STAGE:probability=0.5           same (long-form alias)
    STAGE:p=0.1,delay=0.25          sleep 0.25s instead of raising
    STAGE:p=0.1,tenant=acme         only for tenant "acme"

Every raised fault increments the ``resilience.faults.injected`` counter
and a per-stage ``resilience.faults.injected.<stage>`` counter; every
delay fault increments ``resilience.faults.delayed`` and
``resilience.faults.delayed.<stage>``.  Plans are shared across server
worker threads, so trigger bookkeeping is lock-protected.
"""

from __future__ import annotations

import random
import time
from contextvars import ContextVar

from repro.obs.metrics import METRICS
from repro.resilience.errors import InjectedFault
from repro.analysis.racecheck import named_lock

#: Pipeline stages with an injection point, in execution order.
FAULT_STAGES = ("parse", "classify", "validate", "translate", "analyze",
                "xquery-parse", "evaluate")

_INJECTED = METRICS.counter("resilience.faults.injected")
_DELAYED = METRICS.counter("resilience.faults.delayed")

#: The tenant the current request belongs to, for ``tenant=`` scoping.
_FAULT_TENANT: ContextVar[str | None] = ContextVar(
    "repro_resilience_fault_tenant", default=None
)


class _FaultScope:
    __slots__ = ("_tenant", "_tokens")

    def __init__(self, tenant):
        self._tenant = tenant
        self._tokens = []  # LIFO: safe under re-entrant use

    def __enter__(self):
        self._tokens.append(_FAULT_TENANT.set(self._tenant))
        return self._tenant

    def __exit__(self, exc_type, exc_value, traceback):
        _FAULT_TENANT.reset(self._tokens.pop())
        return False


def fault_scope(tenant):
    """Context manager: attribute faults in this context to ``tenant``."""
    return _FaultScope(tenant)


def current_fault_tenant():
    """The tenant published by the innermost :func:`fault_scope`."""
    return _FAULT_TENANT.get()


class FaultSpec:
    """One trigger: which stage, when, whom, and what to do."""

    def __init__(self, stage, at_call=None, probability=None, seed=0,
                 exception=None, message=None, delay=None, tenant=None):
        if stage not in FAULT_STAGES:
            raise ValueError(
                f"unknown fault stage {stage!r}; expected one of "
                f"{', '.join(FAULT_STAGES)}"
            )
        if at_call is not None and at_call < 1:
            raise ValueError("at_call is 1-based and must be >= 1")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if delay is not None and delay < 0:
            raise ValueError("delay must be >= 0 seconds")
        if delay is not None and exception is not None:
            raise ValueError("a fault spec is either delay= or exception=")
        self.stage = stage
        self.at_call = at_call
        self.probability = probability
        self.seed = seed
        self.exception = exception
        self.message = message
        self.delay = delay
        self.tenant = tenant
        self._calls = 0
        self._rng = random.Random(seed) if probability is not None else None
        self._lock = named_lock("resilience.faults")

    def matches_tenant(self, tenant):
        """True when this spec applies to requests from ``tenant``."""
        return self.tenant is None or self.tenant == tenant

    def should_fire(self):
        """Advance this spec's call count; True when the fault triggers.

        Thread-safe: server worker threads share one plan, and the call
        counter / seeded RNG must advance exactly once per consult to
        stay deterministic.
        """
        with self._lock:
            self._calls += 1
            if self.at_call is not None:
                return self._calls == self.at_call
            if self.probability is not None:
                return self._rng.random() < self.probability
            return True

    def make_exception(self):
        if self.exception is not None:
            # A class raises a fresh instance; an instance raises as-is.
            if isinstance(self.exception, type):
                return self.exception(
                    self.message or f"injected fault at stage {self.stage!r}"
                )
            return self.exception
        return InjectedFault(self.stage, self.message)

    def reset(self):
        """Rewind the call counter and reseed the RNG (for reuse)."""
        with self._lock:
            self._calls = 0
            if self.probability is not None:
                self._rng = random.Random(self.seed)

    def __repr__(self):
        trigger = (
            f"at_call={self.at_call}" if self.at_call is not None
            else f"p={self.probability}, seed={self.seed}"
            if self.probability is not None
            else "always"
        )
        extras = ""
        if self.delay is not None:
            extras += f", delay={self.delay}"
        if self.tenant is not None:
            extras += f", tenant={self.tenant!r}"
        return f"FaultSpec({self.stage!r}, {trigger}{extras})"


class FaultPlan:
    """A set of fault specs consulted at every pipeline injection point."""

    def __init__(self, specs=()):
        self.specs = list(specs)

    @classmethod
    def coerce(cls, value):
        """Accept a plan, a spec list, a single spec, or a CLI string."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, FaultSpec):
            return cls([value])
        if isinstance(value, str):
            return cls([cls.parse_spec(value)])
        specs = []
        for item in value:
            specs.append(
                cls.parse_spec(item) if isinstance(item, str) else item
            )
        return cls(specs)

    @staticmethod
    def parse_spec(text):
        """Parse one ``--inject-fault`` argument into a :class:`FaultSpec`."""
        stage, _, options = text.partition(":")
        stage = stage.strip()
        options = options.strip()
        if not options:
            return FaultSpec(stage)
        if options.isdigit():
            return FaultSpec(stage, at_call=int(options))
        probability = None
        seed = 0
        delay = None
        tenant = None
        at_call = None
        for part in options.split(","):
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key in ("p", "probability"):
                    probability = float(value)
                elif key == "seed":
                    seed = int(value)
                elif key == "delay":
                    delay = float(value)
                elif key == "tenant":
                    if not value:
                        raise ValueError
                    tenant = value
                elif key == "at":
                    at_call = int(value)
                else:
                    raise ValueError
            except ValueError:
                raise ValueError(
                    f"bad fault option {part!r}; expected STAGE, STAGE:N, or "
                    "STAGE:p=FLOAT[,seed=INT][,delay=SECONDS][,tenant=NAME]"
                ) from None
        if probability is None and at_call is None and delay is None:
            raise ValueError(f"fault spec {text!r} sets no trigger")
        return FaultSpec(stage, at_call=at_call, probability=probability,
                         seed=seed, delay=delay, tenant=tenant)

    def fire(self, stage):
        """Trigger any matching spec for ``stage``: sleep or raise.

        Delay specs are consulted first and *all* matching delays are
        applied (sleeping inside the stage), then the first matching
        exception spec raises.  Tenant-scoped specs only match when the
        surrounding :func:`fault_scope` names their tenant.
        """
        tenant = _FAULT_TENANT.get()
        raise_spec = None
        for spec in self.specs:
            if spec.stage != stage or not spec.matches_tenant(tenant):
                continue
            if not spec.should_fire():
                continue
            if spec.delay is not None:
                _DELAYED.inc()
                METRICS.inc(f"resilience.faults.delayed.{stage}")
                time.sleep(spec.delay)
            elif raise_spec is None:
                raise_spec = spec
        if raise_spec is not None:
            _INJECTED.inc()
            METRICS.inc(f"resilience.faults.injected.{stage}")
            raise raise_spec.make_exception()

    def reset(self):
        for spec in self.specs:
            spec.reset()

    def __bool__(self):
        return bool(self.specs)

    def __repr__(self):
        return f"FaultPlan({self.specs!r})"
