"""Resilience layer: budgets, error taxonomy, fault injection, retries.

Cooperating pieces that keep the interactive pipeline deployable:

* :mod:`repro.resilience.budget` — per-query resource budgets
  (deadline, MQF candidate tuples, materialized nodes, FLWOR
  iterations) checked cooperatively at engine loop boundaries; meters
  can be force-expired from another thread (the stuck-query watchdog);
* :mod:`repro.resilience.errors` — the typed failure taxonomy
  (``REJECTED`` / ``DEGRADED`` / ``EXHAUSTED`` / ``INTERNAL``) with
  retryability flags, surfaced on ``QueryResult``;
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness (exception and latency faults, per-tenant scoping) used by
  the chaos suites and the ``--inject-fault`` CLI flag;
* :mod:`repro.resilience.breaker` — per-failure-class circuit breakers
  feeding the serving brownout ladder;
* :mod:`repro.resilience.retry` — the shared client retry policy
  (exponential backoff + jitter, ``Retry-After``, hedging threshold).

The graceful-degradation ladder itself (planned FLWOR → naive FLWOR →
bounded keyword search) lives in :mod:`repro.core.interface`, which
consumes these pieces; the brownout/watchdog server machinery lives in
:mod:`repro.serve`.
"""

from repro.resilience.breaker import (
    BreakerBoard,
    CircuitBreaker,
)
from repro.resilience.budget import (
    BudgetMeter,
    QueryBudget,
    activate_budget,
    active_meter,
    charge,
    check_deadline,
)
from repro.resilience.errors import (
    BrownoutDegraded,
    BudgetExceeded,
    ErrorClass,
    InjectedFault,
    ResilienceError,
    classify_codes,
    describe_failure,
    is_retryable,
)
from repro.resilience.faults import (
    FAULT_STAGES,
    FaultPlan,
    FaultSpec,
    current_fault_tenant,
    fault_scope,
)
from repro.resilience.retry import (
    RETRYABLE_STATUSES,
    RetryPolicy,
    parse_retry_after,
)

__all__ = [
    "BreakerBoard",
    "BrownoutDegraded",
    "BudgetExceeded",
    "BudgetMeter",
    "CircuitBreaker",
    "ErrorClass",
    "FAULT_STAGES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "QueryBudget",
    "RETRYABLE_STATUSES",
    "ResilienceError",
    "RetryPolicy",
    "activate_budget",
    "active_meter",
    "charge",
    "check_deadline",
    "classify_codes",
    "current_fault_tenant",
    "describe_failure",
    "fault_scope",
    "is_retryable",
    "parse_retry_after",
]
