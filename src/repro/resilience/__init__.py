"""Resilience layer: budgets, error taxonomy, and fault injection.

Three cooperating pieces keep the interactive pipeline deployable:

* :mod:`repro.resilience.budget` — per-query resource budgets
  (deadline, MQF candidate tuples, materialized nodes, FLWOR
  iterations) checked cooperatively at engine loop boundaries;
* :mod:`repro.resilience.errors` — the typed failure taxonomy
  (``REJECTED`` / ``DEGRADED`` / ``EXHAUSTED`` / ``INTERNAL``) with
  retryability flags, surfaced on ``QueryResult``;
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness used by the chaos test suite and the ``--inject-fault`` CLI
  flag.

The graceful-degradation ladder itself (planned FLWOR → naive FLWOR →
bounded keyword search) lives in :mod:`repro.core.interface`, which
consumes all three pieces.
"""

from repro.resilience.budget import (
    BudgetMeter,
    QueryBudget,
    activate_budget,
    active_meter,
    charge,
    check_deadline,
)
from repro.resilience.errors import (
    BudgetExceeded,
    ErrorClass,
    InjectedFault,
    ResilienceError,
    classify_codes,
    describe_failure,
    is_retryable,
)
from repro.resilience.faults import FAULT_STAGES, FaultPlan, FaultSpec

__all__ = [
    "BudgetExceeded",
    "BudgetMeter",
    "ErrorClass",
    "FAULT_STAGES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "QueryBudget",
    "ResilienceError",
    "activate_budget",
    "active_meter",
    "charge",
    "check_deadline",
    "classify_codes",
    "describe_failure",
    "is_retryable",
]
