"""Typed error taxonomy for pipeline failures.

Every way a query can fail maps onto one of four classes, so callers
(and the audit log) can decide what to do next without string-matching
messages:

``REJECTED``
    The *user's input* was turned back with feedback (paper Sec. 4):
    parse failures, validation errors, unsupported constructs. Retrying
    the identical query is pointless — the user must rephrase.
``DEGRADED``
    The exact query could not be served but an approximate answer was
    (naive re-evaluation or keyword search). Retrying with a larger
    budget may produce the exact answer.
``EXHAUSTED``
    The query ran out of budget (deadline, candidate tuples,
    materialized nodes, FLWOR iterations) before producing an answer.
    Retryable with a larger budget or a narrower query.
``INTERNAL``
    The system failed on an accepted query: translation/evaluation
    bugs, injected faults, unexpected exceptions. Retryable in the
    sense that the failure is not the user's fault.

:func:`classify_codes` maps feedback error codes onto the taxonomy;
unknown codes default to ``REJECTED`` because every code the validator
emits is, by construction, user-actionable feedback.
"""

from __future__ import annotations


class ErrorClass:
    """Namespace of failure-class constants."""

    REJECTED = "rejected"
    DEGRADED = "degraded"
    EXHAUSTED = "exhausted"
    INTERNAL = "internal"

    ALL = (REJECTED, DEGRADED, EXHAUSTED, INTERNAL)


#: Failure classes worth retrying (possibly with a larger budget).
RETRYABLE_CLASSES = frozenset(
    {ErrorClass.DEGRADED, ErrorClass.EXHAUSTED, ErrorClass.INTERNAL}
)

#: Feedback error codes signalling budget exhaustion.
EXHAUSTED_CODES = frozenset({"budget-exhausted"})

#: Feedback error codes signalling a (brownout) fidelity downgrade.
DEGRADED_CODES = frozenset({"brownout-degraded"})

#: Feedback error codes signalling a system-side failure.
#: ``invalid-query`` is the static-analysis gate rejecting a malformed
#: translation (repro.analysis) — a translator defect, not user error.
INTERNAL_CODES = frozenset(
    {"translation-failure", "evaluation-failure", "internal-error",
     "injected-fault", "invalid-query"}
)


def classify_codes(codes):
    """Map an iterable of feedback error codes to one failure class.

    Exhaustion dominates (it explains *why* evaluation failed), then
    internal failures; anything else is user-fixable feedback. Returns
    None for an empty iterable.
    """
    codes = list(codes)
    if not codes:
        return None
    if any(code in EXHAUSTED_CODES for code in codes):
        return ErrorClass.EXHAUSTED
    if any(code in INTERNAL_CODES for code in codes):
        return ErrorClass.INTERNAL
    if any(code in DEGRADED_CODES for code in codes):
        return ErrorClass.DEGRADED
    return ErrorClass.REJECTED


def is_retryable(error_class):
    """True when a failure of ``error_class`` is worth retrying."""
    return error_class in RETRYABLE_CLASSES


class ResilienceError(Exception):
    """Base class for errors raised by the resilience layer itself."""

    #: Default taxonomy class; subclasses override.
    error_class = ErrorClass.INTERNAL
    retryable = True


class BudgetExceeded(ResilienceError):
    """A query overran one resource of its :class:`QueryBudget`.

    ``resource`` is one of ``deadline`` / ``candidate_tuples`` /
    ``materialized_nodes`` / ``flwor_iterations``; ``limit`` the budget
    cap and ``spent`` the amount consumed when the check fired.
    """

    error_class = ErrorClass.EXHAUSTED
    retryable = True

    def __init__(self, resource, limit, spent):
        self.resource = resource
        self.limit = limit
        self.spent = spent
        if resource == "deadline":
            detail = f"deadline of {limit:.3g}s exceeded ({spent:.3g}s elapsed)"
        else:
            detail = f"{resource} budget of {limit} exceeded ({spent} spent)"
        super().__init__(detail)


class InjectedFault(ResilienceError):
    """A deterministic fault raised by the chaos harness."""

    error_class = ErrorClass.INTERNAL
    retryable = True

    def __init__(self, stage, message=None):
        self.stage = stage
        super().__init__(message or f"injected fault at stage {stage!r}")


class BrownoutDegraded(ResilienceError):
    """The serving brownout ladder pre-degraded this request.

    Raised *synthetically* inside ``ask()`` to skip the full-fidelity
    evaluation rungs when the server has asked for a pre-degraded
    request (see :mod:`repro.serve.brownout`): the degradation ladder
    catches it and proceeds straight to the requested rung, so the
    response is classified ``degraded`` with an explicit brownout code
    rather than silently serving lower fidelity.
    """

    error_class = ErrorClass.DEGRADED
    retryable = True

    def __init__(self, target):
        self.target = target
        super().__init__(f"brownout pre-degraded to {target}")


def describe_failure(error):
    """Feedback ``(code, text, suggestion)`` for an evaluation-path error.

    Keeps the legacy ``evaluation-failure`` wording for XQuery engine
    errors so existing feedback-driven callers keep working; budget and
    injected failures get their own codes.
    """
    if isinstance(error, BudgetExceeded):
        return (
            "budget-exhausted",
            f"The query ran out of budget: {error}.",
            "Narrow the query, or retry with a larger budget or timeout.",
        )
    if isinstance(error, InjectedFault):
        return (
            "injected-fault",
            f"A fault was injected for testing: {error}.",
            "This failure was requested by the chaos harness.",
        )
    if isinstance(error, BrownoutDegraded):
        return (
            "brownout-degraded",
            f"The server is under pressure and served a lower-fidelity "
            f"answer: {error}.",
            "Retry later for a full-fidelity answer.",
        )
    from repro.xquery.errors import XQueryError

    if isinstance(error, XQueryError):
        return (
            "evaluation-failure",
            f"The generated query could not be evaluated: {error}.",
            "Add conditions that relate the query's elements to each other.",
        )
    return (
        "internal-error",
        f"NaLIX hit an unexpected internal error: "
        f"{type(error).__name__}: {error}.",
        "This is a system bug, not a problem with the query; retrying "
        "may succeed.",
    )
