"""Circuit breakers over the query failure taxonomy.

A :class:`CircuitBreaker` watches the rolling rate of one failure class
(``QueryResult.error_class``) over the last ``window`` finished
requests and walks the classic three-state machine:

``closed``
    Normal operation.  Every outcome lands in the rolling window; when
    at least ``min_samples`` outcomes are present and the failure rate
    reaches ``failure_threshold``, the breaker trips to ``open``.
``open``
    The failure class is considered systemic.  The serving layer does
    **not** hard-reject while a breaker is open — it *browns out*
    (tightens budgets and pre-degrades down the evaluation ladder; see
    :mod:`repro.serve.brownout`).  After ``open_seconds`` the breaker
    moves to ``half-open``.
``half-open``
    Up to ``half_open_probes`` requests are admitted as **probes**
    running the full-fidelity path.  ``half_open_probes`` consecutive
    probe successes close the breaker (window reset); any probe failure
    re-opens it for another ``open_seconds``.

The clock is injectable so every transition is unit-testable without
sleeping.  All methods are thread-safe; state changes increment
``serve.breaker.<name>.*`` counters and a ``serve.breaker.<name>.state``
gauge (0 = closed, 1 = half-open, 2 = open) so the live ops surface
(`/metrics`, `/statusz`, ``repro stats --url``) shows breaker health.

:class:`BreakerBoard` groups one breaker per *service-health* failure
class (``internal`` and ``exhausted`` — ``rejected`` is user error and
``degraded`` is the brownout ladder doing its job) and fans one
recorded outcome out to all of them.
"""

from __future__ import annotations

import time
from collections import deque

from repro.obs.metrics import METRICS
from repro.analysis.racecheck import named_lock

CLOSED, HALF_OPEN, OPEN = "closed", "half-open", "open"

#: Numeric encoding of states for the Prometheus gauge.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: Failure classes that get a breaker on the serving board.
BREAKER_CLASSES = ("internal", "exhausted")


class CircuitBreaker:
    """One failure class's closed → open → half-open state machine."""

    def __init__(self, name, window=64, failure_threshold=0.5,
                 min_samples=8, open_seconds=5.0, half_open_probes=3,
                 clock=time.monotonic, on_open=None):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold!r}"
            )
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = name
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.open_seconds = open_seconds
        self.half_open_probes = half_open_probes
        # Event hook: called as on_open(breaker) *outside* the lock
        # right after any trip to open (the serving layer wires it to a
        # flight-recorder dump).  Hook errors are counted, not raised.
        self.on_open = on_open
        self._clock = clock
        self._lock = named_lock("resilience.breaker")
        self._outcomes = deque(maxlen=window)  # True = failure of our class
        self._state = CLOSED
        self._opened_at = None
        self._probes_outstanding = 0
        self._probe_successes = 0
        self._opened_total = 0
        self._state_gauge = METRICS.gauge(f"serve.breaker.{name}.state")
        self._opened_counter = METRICS.counter(f"serve.breaker.{name}.opened")
        self._closed_counter = METRICS.counter(f"serve.breaker.{name}.closed")
        self._probe_counter = METRICS.counter(f"serve.breaker.{name}.probes")

    # -- state ---------------------------------------------------------------

    @property
    def state(self):
        """The current state, applying the open → half-open timeout."""
        with self._lock:
            self._advance()
            return self._state

    def failure_rate(self):
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(self._outcomes) / len(self._outcomes)

    def _advance(self):
        """Open → half-open once ``open_seconds`` have elapsed (locked)."""
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.open_seconds):
            self._state = HALF_OPEN
            self._probes_outstanding = 0
            self._probe_successes = 0
            self._state_gauge.set(STATE_CODES[HALF_OPEN])

    def _trip(self):
        """Any state → open (locked)."""
        self._state = OPEN
        self._opened_at = self._clock()
        self._opened_total += 1
        self._probes_outstanding = 0
        self._probe_successes = 0
        self._opened_counter.inc()
        self._state_gauge.set(STATE_CODES[OPEN])

    def _close(self):
        """Half-open → closed after enough probe successes (locked)."""
        self._state = CLOSED
        self._opened_at = None
        self._outcomes.clear()
        self._probes_outstanding = 0
        self._probe_successes = 0
        self._closed_counter.inc()
        self._state_gauge.set(STATE_CODES[CLOSED])

    # -- the serving-layer interface ----------------------------------------

    def acquire_probe(self):
        """Claim one half-open probe slot; True when this request probes.

        Only meaningful while half-open: probes run the full-fidelity
        path (no brownout pre-degradation) so the breaker can observe
        whether the failure class has recovered.
        """
        with self._lock:
            self._advance()
            if (self._state != HALF_OPEN
                    or self._probes_outstanding >= self.half_open_probes):
                return False
            self._probes_outstanding += 1
            self._probe_counter.inc()
            return True

    def record(self, failed, probe=False):
        """Record one finished request (``failed`` = our failure class).

        ``probe`` marks the outcome of a request admitted through
        :meth:`acquire_probe`; probe outcomes drive the half-open →
        closed / re-open transitions instead of the rolling window.
        """
        tripped = False
        with self._lock:
            self._advance()
            if probe and self._state == HALF_OPEN:
                self._probes_outstanding = max(
                    0, self._probes_outstanding - 1
                )
                if failed:
                    self._trip()
                    tripped = True
                else:
                    self._probe_successes += 1
                    if self._probe_successes >= self.half_open_probes:
                        self._close()
            elif self._state == CLOSED:
                self._outcomes.append(bool(failed))
                if (len(self._outcomes) >= self.min_samples
                        and sum(self._outcomes) / len(self._outcomes)
                        >= self.failure_threshold):
                    self._trip()
                    tripped = True
        if tripped and self.on_open is not None:
            try:
                self.on_open(self)
            except Exception:
                METRICS.inc(f"serve.breaker.{self.name}.hook_errors")

    # -- introspection -------------------------------------------------------

    def snapshot(self):
        with self._lock:
            self._advance()
            return {
                "state": self._state,
                "failure_rate": (
                    sum(self._outcomes) / len(self._outcomes)
                    if self._outcomes else 0.0
                ),
                "samples": len(self._outcomes),
                "opened_total": self._opened_total,
                "probe_successes": self._probe_successes,
            }

    def __repr__(self):
        return f"CircuitBreaker({self.name!r}, {self.state})"


class BreakerBoard:
    """One breaker per service-health failure class, fed per request."""

    def __init__(self, classes=BREAKER_CLASSES, **breaker_kwargs):
        self.breakers = {
            name: CircuitBreaker(name, **breaker_kwargs) for name in classes
        }

    def set_on_open(self, hook):
        """Install one ``on_open(breaker)`` hook on every breaker."""
        for breaker in self.breakers.values():
            breaker.on_open = hook

    def record(self, error_class, probe=False):
        """Fan one finished request's class out to every breaker."""
        for name, breaker in self.breakers.items():
            breaker.record(error_class == name, probe=probe)

    def acquire_probe(self):
        """Claim a probe slot on any half-open breaker (first wins)."""
        return any(
            breaker.acquire_probe() for breaker in self.breakers.values()
        )

    def any_open(self):
        return any(
            breaker.state == OPEN for breaker in self.breakers.values()
        )

    def snapshot(self):
        return {
            name: breaker.snapshot()
            for name, breaker in sorted(self.breakers.items())
        }

    def __repr__(self):
        states = ", ".join(
            f"{name}={breaker.state}"
            for name, breaker in sorted(self.breakers.items())
        )
        return f"BreakerBoard({states})"
