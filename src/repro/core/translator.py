"""Translation from a validated parse tree to Schema-Free XQuery.

Implements Sec. 3.2.2–3.2.4 of the paper:

* variable binding over the semantic model (one basic variable per
  name-token group; composed variables for FT patterns);
* direct pattern mapping (Fig. 4): value predicates, comparisons,
  order-by and return clauses;
* the connection-marker rule (Fig. 5): ``book with the lowest price``
  introduces a fresh related variable equated with a global aggregate;
* grouping/nesting scope determination for aggregates (Fig. 6): an
  aggregate over a non-core variable nests that variable inside a
  ``let`` FLWOR joined to the core by value (the paper's Fig. 8/9
  construction); aggregates over cores (or coreless queries) pull the
  related predicates inside instead;
* MQF clause generation — one ``mqf(...)`` per related variable group —
  and full FLWOR assembly following the FLOWR convention.
"""

from __future__ import annotations

from repro.core.errors import TranslationError
from repro.core.semantics import analyze, token_children, token_parent
from repro.core.token_types import TokenType, token_type
from repro.obs.provenance import ClauseRecord
from repro.xquery import ast
from repro.xquery.ast import doc_path

#: Translation-pattern names quoted in clause provenance.
PATTERN_BINDING = "Sec. 3.2.2: variable binding (Defs. 1/8)"
PATTERN_VALUE = "Fig. 4: value predicate (NT + VT)"
PATTERN_IMPLICIT_VALUE = "Fig. 4: value predicate over implicit NT (Def. 11)"
PATTERN_COMPARISON = "Fig. 4: comparison (GOT pattern)"
PATTERN_IMPLICIT_COMPARISON = (
    "Fig. 4: comparison over implicit NT (Table 6 #6)"
)
PATTERN_ORDER_BY = "Fig. 4: order-by clause (OBT + RNP)"
PATTERN_RETURN = "Fig. 4: return clause (CMT)"
PATTERN_MQF = "Defs. 4-6: related variables joined by mqf()"
PATTERN_FIG5_LET = (
    "Fig. 5: marker semantics (NT + CM + FT) -> global aggregate let"
)
PATTERN_FIG5_EQUATION = (
    "Fig. 5: fresh related variable equated with the global aggregate"
)
PATTERN_FIG6_OUTER = (
    "Fig. 6: outer nesting scope (aggregate grouped by core via value join)"
)
PATTERN_FIG6_INNER = (
    "Fig. 6: inner nesting scope (related predicates pulled into the let)"
)


class Condition:
    """One where-clause conjunct before rendering.

    ``sources`` are the parse-tree token nodes the conjunct was derived
    from and ``pattern`` the Fig. 4/5 rule that derived it — both feed
    the clause-provenance records of the explain engine.
    """

    def __init__(self, left, op, right, negated=False, sources=None,
                 pattern=PATTERN_COMPARISON):
        self.left = left          # operand triple: ("var", Variable) etc.
        self.op = op
        self.right = right
        self.negated = negated
        self.inner = False        # moved inside an aggregate's let-FLWOR
        self.sources = list(sources) if sources else []
        self.pattern = pattern

    def variables(self):
        result = []
        for operand in (self.left, self.right):
            if operand[0] == "var":
                result.append(operand[1])
        return result


class AggregateUse:
    """One FT occurrence: function + the variable it ranges over."""

    def __init__(self, ft_node, function, variable):
        self.ft_node = ft_node
        self.function = function
        self.variable = variable
        self.let_name = None      # assigned during planning
        self.with_marker = False  # Fig. 5 pattern (NT + CM + FT)
        self.equated_variable = None  # Fig. 5's var2new


class TranslationResult:
    """Everything the interface and the worked-example bench need.

    ``provenance`` is the list of :class:`~repro.obs.provenance.
    ClauseRecord` entries — one per emitted clause/conjunct, citing the
    source tokens and the translation pattern that produced it.
    """

    def __init__(self, query, model, bindings_table, notes, provenance=None):
        self.query = query
        self.model = model
        self.bindings_table = bindings_table
        self.notes = notes
        self.provenance = provenance if provenance is not None else []

    @property
    def text(self):
        return self.query.to_text()

    @property
    def pretty_text(self):
        if isinstance(self.query, ast.FLWOR):
            return self.query.to_pretty_text()
        return self.query.to_text()


class Translator:
    """Translates validated parse trees for one database document.

    ``wrap_results`` turns on composite result construction (listed as
    future work by the paper, supported here): each binding tuple is
    returned inside a ``<result>`` element, the XMP use cases' output
    convention.
    """

    def __init__(self, database, document_name=None, wrap_results=False,
                 result_tag="result"):
        self.database = database
        if document_name is None:
            document_name = next(iter(database.documents), "doc")
        self.document_name = document_name
        self.wrap_results = wrap_results
        self.result_tag = result_tag

    # -- public API -----------------------------------------------------------

    def translate(self, root):
        """Translate a classified, validated tree into a FLWOR AST."""
        state = _TranslationState(self, root)
        return state.run()


class _TranslationState:
    def __init__(self, translator, root):
        self.translator = translator
        self.database = translator.database
        self.document_name = translator.document_name
        self.root = root
        self.model = analyze(root)
        self.conditions = []
        self.aggregates = []       # AggregateUse, in discovery order
        self.order_keys = []       # (operand, descending)
        self.return_operands = []
        self.consumed = set()      # variable names moved inside lets
        self.extra_group_members = {}  # group index -> [Variable]
        self.fresh_counter = len(self.model.variables)
        self.let_counter = 0
        self.lets = []             # (name, FLWOR)
        self.notes = []
        self.handled_ots = set()
        self.clause_provenance = []    # ClauseRecord, in clause order
        self.let_provenance = {}       # let name -> (pattern, [nodes])
        self.order_sources = []        # [nodes], parallel to order_keys

    # -- variable helpers ---------------------------------------------------------

    def var_tags(self, variable):
        tags = []
        for node in variable.nodes:
            for tag in getattr(node, "tags", []) or []:
                if tag not in tags:
                    tags.append(tag)
        if not tags:
            raise TranslationError(
                f"name token {variable.lemma!r} matched no database names"
            )
        variable.tags = tags
        return "|".join(tags)

    def var_path(self, variable):
        return doc_path(self.document_name, self.var_tags(variable))

    def fresh_variable(self, like):
        """A new variable over the same tags (Fig. 6's core copy)."""
        from repro.core.semantics import Variable

        self.fresh_counter += 1
        fresh = Variable(f"v{self.fresh_counter}", list(like.nodes))
        fresh.is_core = like.is_core
        return fresh

    def fresh_let_name(self):
        self.let_counter += 1
        return f"vars{self.let_counter}"

    # -- provenance helpers ---------------------------------------------------

    def _record_clause(self, clause, fragment, pattern, nodes):
        """Append one clause-provenance record (deduplicated sources)."""
        ids, words = [], []
        for node in nodes:
            node_id = getattr(node, "node_id", None)
            if node_id is None or node_id in ids:
                continue
            ids.append(node_id)
            words.append(node.text)
        self.clause_provenance.append(
            ClauseRecord(clause, fragment, pattern, ids, words)
        )

    def _operand_nodes(self, operand):
        """The parse-tree nodes behind one rendered operand."""
        kind, payload = operand
        if kind in ("var", "outer-var"):
            return list(payload.nodes)
        if kind == "agg":
            return [payload.ft_node]
        return []

    # -- main ------------------------------------------------------------------------

    def run(self):
        self.collect_return()
        self.collect_conditions()
        self.collect_order()
        self.plan_aggregates()
        query = self.assemble()
        return TranslationResult(
            query, self.model, self.bindings_table(), self.notes,
            provenance=self.clause_provenance,
        )

    # -- collection passes --------------------------------------------------------------

    def collect_return(self):
        for child in token_children(self.root):
            kind = token_type(child)
            if kind == TokenType.NT:
                self.return_operands.append(("var", self.model.variable_of[id(child)]))
                self._collect_np(child)
            elif kind == TokenType.FT:
                self.return_operands.append(("agg", self._register_aggregate(child)))
            elif kind == TokenType.OT:
                self._handle_ot(child)
        if not self.return_operands:
            raise TranslationError("nothing to return")

    def _add_condition(self, condition):
        if not self._duplicate_condition(condition):
            self.conditions.append(condition)

    def _collect_np(self, nt):
        """Walk an NT's subtree for nested conditions (OTs, VTs, FTs)."""
        for child in token_children(nt):
            kind = token_type(child)
            if kind == TokenType.VT:
                self._add_condition(
                    Condition(
                        ("var", self.model.variable_of[id(nt)]),
                        "=",
                        ("lit", child.value),
                        sources=[nt, child],
                        pattern=PATTERN_VALUE,
                    )
                )
            elif kind == TokenType.OT:
                self._handle_ot(child)
            elif kind == TokenType.NT:
                self._collect_np(child)
            elif kind == TokenType.FT:
                self._register_aggregate(child)

    def collect_conditions(self):
        for node in self.root.preorder():
            kind = token_type(node)
            if kind == TokenType.OT:
                self._handle_ot(node)
            elif kind == TokenType.NT and node.implicit:
                # Implicit NT with its VT: equality unless an OT governs it.
                raw_parent = node.parent
                governed_by_ot = (
                    raw_parent is not None
                    and token_type(raw_parent) == TokenType.OT
                )
                if not governed_by_ot:
                    self._add_condition(
                        Condition(
                            ("var", self.model.variable_of[id(node)]),
                            "=",
                            ("lit", node.implicit_value),
                            sources=[node] + [
                                child
                                for child in token_children(node)
                                if token_type(child) == TokenType.VT
                            ],
                            pattern=PATTERN_IMPLICIT_VALUE,
                        )
                    )
            elif kind == TokenType.NT and not node.implicit:
                for child in token_children(node):
                    if token_type(child) == TokenType.VT:
                        self._add_condition(
                            Condition(
                                ("var", self.model.variable_of[id(node)]),
                                "=",
                                ("lit", child.value),
                                sources=[node, child],
                                pattern=PATTERN_VALUE,
                            )
                        )

    def _duplicate_condition(self, candidate):
        for existing in self.conditions:
            if (
                existing.op == candidate.op
                and existing.left == candidate.left
                and existing.right == candidate.right
            ):
                return True
        return False

    def _handle_ot(self, ot):
        if id(ot) in self.handled_ots:
            return
        self.handled_ots.add(id(ot))
        operands = [
            child
            for child in token_children(ot)
            if token_type(child) in (TokenType.NT, TokenType.VT, TokenType.FT)
        ]
        negated = any(
            token_type(child) == TokenType.NEG for child in token_children(ot)
        ) or any(
            token_type(child) == TokenType.NEG for child in ot.children
        )
        op = ot.operator
        parent = token_parent(ot)
        parent_operand = (
            parent
            if parent is not None and token_type(parent) in (TokenType.NT, TokenType.FT)
            else None
        )

        if len(operands) >= 2:
            left, right = operands[0], operands[1]
            self.conditions.append(
                Condition(
                    self._operand(left), op, self._operand(right), negated,
                    sources=[ot, left, right],
                    pattern=PATTERN_COMPARISON,
                )
            )
            return
        if len(operands) == 1:
            operand = operands[0]
            if token_type(operand) == TokenType.NT and operand.implicit:
                # GOT + [NT] + GVT (Table 6 line 6): "... after 1991".
                self.conditions.append(
                    Condition(
                        ("var", self.model.variable_of[id(operand)]),
                        op,
                        ("lit", operand.implicit_value),
                        negated,
                        sources=[ot, operand] + [
                            child
                            for child in token_children(operand)
                            if token_type(child) == TokenType.VT
                        ],
                        pattern=PATTERN_IMPLICIT_COMPARISON,
                    )
                )
                return
            if parent_operand is not None:
                self.conditions.append(
                    Condition(
                        self._operand(parent_operand),
                        op,
                        self._operand(operand),
                        negated,
                        sources=[parent_operand, ot, operand],
                        pattern=PATTERN_COMPARISON,
                    )
                )
                return
        raise TranslationError(
            f"comparison {ot.text!r} has no usable operands"
        )

    def _operand(self, node):
        kind = token_type(node)
        if kind == TokenType.NT:
            return ("var", self.model.variable_of[id(node)])
        if kind == TokenType.VT:
            return ("lit", node.value)
        if kind == TokenType.FT:
            return ("agg", self._register_aggregate(node))
        raise TranslationError(f"unsupported operand {node.text!r}")

    def _register_aggregate(self, ft_node):
        for existing in self.aggregates:
            if existing.ft_node is ft_node:
                return existing
        complements = [
            child
            for child in token_children(ft_node)
            if token_type(child) in (TokenType.NT, TokenType.FT)
        ]
        if not complements:
            raise TranslationError(
                f'the function "{ft_node.text}" does not say what it '
                "applies to"
            )
        complement = complements[0]
        if token_type(complement) == TokenType.FT:
            raise TranslationError(
                "nested aggregate functions are not supported yet"
            )
        use = AggregateUse(
            ft_node,
            ft_node.aggregate,
            self.model.variable_of[id(complement)],
        )
        # Fig. 5 pattern: NT + connection marker + FT ("book with the
        # lowest price") — detected from the raw tree shape.
        raw_parent = ft_node.parent
        if (
            raw_parent is not None
            and token_type(raw_parent) == TokenType.CM
            and token_parent(ft_node) is not None
            and token_type(token_parent(ft_node)) == TokenType.NT
        ):
            use.with_marker = True
        self.aggregates.append(use)
        return use

    def collect_order(self):
        for node in self.root.preorder():
            if token_type(node) != TokenType.OBT:
                continue
            keys = [
                child
                for child in token_children(node)
                if token_type(child) in (TokenType.NT, TokenType.FT)
            ]
            if keys:
                for key in keys:
                    operand = self._operand(key)
                    if operand[0] == "var":
                        operand = ("var", self._resolve_order_variable(operand[1]))
                    self.order_keys.append((operand, node.descending))
                    self.order_sources.append([node, key])
            elif self.return_operands:
                self.order_keys.append((self.return_operands[0], node.descending))
                self.order_sources.append([node])

    def _resolve_order_variable(self, variable):
        """A bare sort key ("sorted by title") co-refers with the
        returned variable of the same name when one exists."""
        if any(
            relation is not variable
            for relation in self.model.directly_related_variables(variable)
        ):
            return variable
        for operand in self.return_operands:
            if (
                operand[0] == "var"
                and operand[1] is not variable
                and operand[1].lemma == variable.lemma
                and operand[1].implicit == variable.implicit
            ):
                # Drop the redundant variable entirely.
                self.consumed.add(variable.name)
                return operand[1]
        return variable

    # -- aggregate planning (Figs. 5 and 6) -------------------------------------------------

    def plan_aggregates(self):
        for use in self.aggregates:
            if use.with_marker:
                self._plan_with_marker(use)
            else:
                self._plan_scoped(use)

    def _plan_with_marker(self, use):
        """Fig. 5: equate a fresh related variable with a global aggregate."""
        variable = use.variable
        anchor = self.model.variable_of[id(token_parent(use.ft_node))]
        use.let_name = self.fresh_let_name()
        inner = ast.FLWOR(
            [
                ast.ForClause([(variable.name, self.var_path(variable))]),
                ast.ReturnClause(ast.VarRef(variable.name)),
            ]
        )
        self.lets.append((use.let_name, inner))
        self.let_provenance[use.let_name] = (
            PATTERN_FIG5_LET,
            [use.ft_node] + list(variable.nodes) + list(anchor.nodes),
        )
        self.consumed.add(variable.name)

        var2new = self.fresh_variable(variable)
        use.equated_variable = var2new
        # Outer predicates and sort keys on the aggregated variable would
        # otherwise reference the binding that just moved inside the let
        # (the unbound-variable bug qlint rule QS001 catches); they
        # constrain the anchor's related copy instead: "the book with the
        # lowest price where the price is more than 10" filters the
        # book's price, i.e. the equated variable.
        for condition in self.conditions:
            if condition.inner:
                continue
            if condition.left[0] == "var" and condition.left[1] is variable:
                condition.left = ("var", var2new)
            if condition.right[0] == "var" and condition.right[1] is variable:
                condition.right = ("var", var2new)
        self.order_keys = [
            (
                ("var", var2new)
                if operand[0] == "var" and operand[1] is variable
                else operand,
                descending,
            )
            for operand, descending in self.order_keys
        ]
        self._add_to_group_of(anchor, var2new)
        self.conditions.append(
            Condition(
                ("outer-var", var2new), "=", ("agg", use),
                sources=[use.ft_node] + list(variable.nodes),
                pattern=PATTERN_FIG5_EQUATION,
            )
        )
        self.notes.append(
            f"Fig.5 rule: ${var2new.name} ({variable.lemma}) related to "
            f"${anchor.name}, equated with {use.function}(${use.let_name})"
        )

    def _plan_scoped(self, use):
        """Fig. 6: nesting scope by core relationship."""
        variable = use.variable
        core = self.model.core_variable_related_to(variable)
        if core is None and not variable.is_core:
            core = self._fallback_core(variable)
        if core is not None and core is not variable:
            self._plan_outer_scope(use, variable, core)
        else:
            self._plan_inner_scope(use, variable)

    def _fallback_core(self, variable):
        """Fig. 6's fallback: a variable ``var`` attaches to and is
        directly related to; else any related variable."""
        related = self.model.directly_related_variables(variable)
        usable = [
            candidate for candidate in related
            if candidate.name not in self.consumed
        ]
        if usable:
            return usable[0]
        group = [
            member
            for member in self.model.group_of(variable)
            if member is not variable and member.name not in self.consumed
        ]
        return group[0] if group else None

    def _plan_outer_scope(self, use, variable, core):
        """var is not a core: nest var inside, value-join a core copy."""
        core_copy = self.fresh_variable(core)
        use.let_name = self.fresh_let_name()
        inner_conditions = [
            ast.FunctionCall(
                "mqf", [ast.VarRef(variable.name), ast.VarRef(core_copy.name)]
            ),
            ast.Comparison(
                "=", ast.VarRef(core_copy.name), ast.VarRef(core.name)
            ),
        ]
        let_nodes = (
            [use.ft_node] + list(variable.nodes) + list(core.nodes)
        )
        for condition in self.conditions:
            if condition.inner:
                continue
            involved = condition.variables()
            if involved and all(v is variable for v in involved):
                condition.inner = True
                inner_conditions.append(self.render_condition(condition))
                let_nodes.extend(condition.sources)
        inner = ast.FLWOR(
            [
                ast.ForClause(
                    [
                        (core_copy.name, self.var_path(core)),
                        (variable.name, self.var_path(variable)),
                    ]
                ),
                ast.WhereClause(ast.And(inner_conditions)),
                ast.ReturnClause(ast.VarRef(variable.name)),
            ]
        )
        self.lets.append((use.let_name, inner))
        self.let_provenance[use.let_name] = (PATTERN_FIG6_OUTER, let_nodes)
        self.consumed.add(variable.name)
        self.notes.append(
            f"Fig.6 outer scope: {use.function}(${variable.name}) grouped by "
            f"core ${core.name} via copy ${core_copy.name}"
        )

    def _plan_inner_scope(self, use, variable):
        """var is the core (or nothing else exists): pull the related
        predicates inside the let."""
        use.let_name = self.fresh_let_name()
        pulled = [variable]
        for member in self.model.group_of(variable):
            if member is variable or member.name in self.consumed:
                continue
            if self._used_outside_conditions(member):
                continue
            pulled.append(member)
        bindings = [
            (member.name, self.var_path(member)) for member in pulled
        ]
        inner_conditions = []
        if len(pulled) >= 2:
            inner_conditions.append(
                ast.FunctionCall(
                    "mqf", [ast.VarRef(member.name) for member in pulled]
                )
            )
        let_nodes = [use.ft_node]
        for member in pulled:
            let_nodes.extend(member.nodes)
        for condition in self.conditions:
            if condition.inner:
                continue
            involved = condition.variables()
            if involved and all(v in pulled for v in involved):
                condition.inner = True
                inner_conditions.append(self.render_condition(condition))
                let_nodes.extend(condition.sources)
        clauses = [ast.ForClause(bindings)]
        if inner_conditions:
            clauses.append(
                ast.WhereClause(
                    ast.And(inner_conditions)
                    if len(inner_conditions) > 1
                    else inner_conditions[0]
                )
            )
        clauses.append(ast.ReturnClause(ast.VarRef(variable.name)))
        self.lets.append((use.let_name, ast.FLWOR(clauses)))
        self.let_provenance[use.let_name] = (PATTERN_FIG6_INNER, let_nodes)
        for member in pulled:
            self.consumed.add(member.name)
        self.notes.append(
            f"Fig.6 inner scope: {use.function}(${variable.name}) with "
            f"{len(pulled)} variable(s) nested"
        )

    def _used_outside_conditions(self, variable):
        """Is this variable needed outside the aggregate (returned,
        ordered, or compared against other groups)?"""
        for operand in self.return_operands:
            if operand[0] == "var" and operand[1] is variable:
                return True
        for operand, _descending in self.order_keys:
            if operand[0] == "var" and operand[1] is variable:
                return True
        for condition in self.conditions:
            involved = condition.variables()
            if variable in involved and any(v is not variable for v in involved):
                return True
        return False

    def _add_to_group_of(self, anchor, variable):
        for index, group in enumerate(self.model.related_groups):
            if anchor in group:
                self.extra_group_members.setdefault(index, []).append(variable)
                return
        self.model.related_groups.append([anchor, variable])

    # -- rendering -------------------------------------------------------------------------------

    _DISTINCT_MODIFIERS = {"distinct", "different", "unique"}

    def _wants_distinct(self, variable):
        """"Return every distinct publisher": dedupe the whole answer."""
        from repro.core.semantics import modifier_signature

        return any(
            modifier in self._DISTINCT_MODIFIERS
            for node in variable.nodes
            for modifier in modifier_signature(node)
        )

    def render_operand(self, operand):
        kind, payload = operand
        if kind in ("var", "outer-var"):
            return ast.VarRef(payload.name)
        if kind == "lit":
            return ast.Literal(payload)
        if kind == "agg":
            return ast.FunctionCall(payload.function, [ast.VarRef(payload.let_name)])
        raise TranslationError(f"unknown operand kind {kind!r}")

    def render_condition(self, condition):
        if condition.op == "contains":
            rendered = ast.FunctionCall(
                "contains",
                [
                    self.render_operand(condition.left),
                    self.render_operand(condition.right),
                ],
            )
        else:
            rendered = ast.Comparison(
                condition.op,
                self.render_operand(condition.left),
                self.render_operand(condition.right),
            )
        if condition.negated:
            return ast.Not(rendered)
        return rendered

    # -- assembly -----------------------------------------------------------------------------------

    def outer_variables(self):
        ordered = []
        for variable in self.model.variables:
            if variable.name not in self.consumed:
                ordered.append(variable)
        for members in self.extra_group_members.values():
            for variable in members:
                if variable.name not in self.consumed and variable not in ordered:
                    ordered.append(variable)
        return ordered

    def mqf_clauses(self):
        clauses = []
        for index, group in enumerate(self.model.related_groups):
            members = [
                member for member in group if member.name not in self.consumed
            ]
            for extra in self.extra_group_members.get(index, ()):
                if extra.name not in self.consumed and extra not in members:
                    members.append(extra)
            if len(members) >= 2:
                clauses.append(
                    ast.FunctionCall(
                        "mqf", [ast.VarRef(member.name) for member in members]
                    )
                )
        return clauses

    def assemble(self):
        outer = self.outer_variables()
        clauses = []
        if outer:
            clauses.append(
                ast.ForClause(
                    [(variable.name, self.var_path(variable)) for variable in outer]
                )
            )
            for variable in outer:
                self._record_clause(
                    "for",
                    f"${variable.name} in {self.var_path(variable).to_text()}",
                    PATTERN_BINDING,
                    variable.nodes,
                )
        for name, inner in self.lets:
            clauses.append(ast.LetClause(name, inner))
            pattern, nodes = self.let_provenance.get(
                name, (PATTERN_BINDING, [])
            )
            self._record_clause(
                "let", f"let ${name} := {inner.to_text()}", pattern, nodes
            )
        conjuncts = self.mqf_clauses()
        for conjunct in conjuncts:
            mqf_nodes = []
            for variable in self.outer_variables():
                if any(
                    isinstance(arg, ast.VarRef) and arg.name == variable.name
                    for arg in conjunct.args
                ):
                    mqf_nodes.extend(variable.nodes)
            self._record_clause(
                "where", conjunct.to_text(), PATTERN_MQF, mqf_nodes
            )
        for condition in self.conditions:
            if not condition.inner:
                conjuncts.append(self.render_condition(condition))
                nodes = list(condition.sources)
                for operand in (condition.left, condition.right):
                    nodes.extend(self._operand_nodes(operand))
                self._record_clause(
                    "where",
                    self.render_condition(condition).to_text(),
                    condition.pattern,
                    nodes,
                )
        if conjuncts:
            clauses.append(
                ast.WhereClause(
                    ast.And(conjuncts) if len(conjuncts) > 1 else conjuncts[0]
                )
            )
        if self.order_keys:
            clauses.append(
                ast.OrderByClause(
                    [
                        (self.render_operand(operand), descending)
                        for operand, descending in self.order_keys
                    ]
                )
            )
            for index, (operand, descending) in enumerate(self.order_keys):
                nodes = (
                    list(self.order_sources[index])
                    if index < len(self.order_sources)
                    else []
                )
                nodes.extend(self._operand_nodes(operand))
                self._record_clause(
                    "order by",
                    self.render_operand(operand).to_text()
                    + (" descending" if descending else ""),
                    PATTERN_ORDER_BY,
                    nodes,
                )
        returns = [self.render_operand(operand) for operand in self.return_operands]
        return_nodes = [self.root]
        for operand in self.return_operands:
            return_nodes.extend(self._operand_nodes(operand))
        self._record_clause(
            "return",
            ", ".join(rendered.to_text() for rendered in returns),
            PATTERN_RETURN,
            return_nodes,
        )
        if self.translator.wrap_results:
            return_expr = ast.ElementConstructor(
                self.translator.result_tag, returns
            )
        elif len(returns) == 1:
            return_expr = returns[0]
        else:
            return_expr = ast.Sequence(returns)
        clauses.append(ast.ReturnClause(return_expr))
        if not outer and not self.lets:
            raise TranslationError("the query binds no variables")
        query = ast.FLWOR(clauses)
        if (
            len(self.return_operands) == 1
            and self.return_operands[0][0] == "var"
            and self._wants_distinct(self.return_operands[0][1])
        ):
            return ast.FunctionCall("distinct-values", [query])
        return query

    # -- reporting ------------------------------------------------------------------------------------

    def bindings_table(self):
        """Rows like the paper's Table 3 (variable bindings)."""
        rows = []
        for variable in self.model.variables:
            rows.append(
                {
                    "variable": f"${variable.name}" + ("*" if variable.is_core else ""),
                    "content": variable.lemma,
                    "nodes": [node.node_id for node in variable.nodes],
                    "tags": list(getattr(variable, "tags", [])),
                    "consumed": variable.name in self.consumed,
                }
            )
        for use in self.aggregates:
            rows.append(
                {
                    "variable": f"$cv{self.aggregates.index(use) + 1}",
                    "content": f"{use.function}(${use.let_name})",
                    "nodes": [use.ft_node.node_id],
                    "tags": [],
                    "consumed": False,
                }
            )
        return rows
