"""Token classification (Sec. 3.1, Tables 1 and 2).

Walks the dependency parse tree and annotates every node with a
``token_type`` (and its semantic payload: comparison operator for OTs,
aggregate function for FTs, sort direction for OBTs, parsed literal for
VTs). Terms that fall outside the enumerated vocabulary become UNKNOWN
and are reported by the validator.
"""

from __future__ import annotations

from repro.core.enums import (
    COMMAND_PHRASES,
    CONNECTION_PREPOSITIONS,
    FUNCTION_PHRASES,
    NEGATION_WORDS,
    OPERATOR_PHRASES,
    ORDER_PHRASES,
    QUANTIFIER_WORDS,
)
from repro.core.token_types import TokenType
from repro.nlp.categories import Category


def classify_tree(root):
    """Annotate all nodes of ``root`` in place; returns ``root``.

    Adds to each :class:`~repro.nlp.parse_tree.ParseNode`:

    * ``token_type`` — a :class:`TokenType` constant;
    * ``operator`` (OT), ``aggregate`` (FT), ``descending`` (OBT),
      ``value`` (VT: str, int or float), ``implicit`` (NT) as relevant;
    * ``classification_rule`` — the Table 1/2 rule that assigned the
      type, carried into ``QueryResult.provenance`` for the explain
      engine.
    """
    for node in root.preorder():
        _classify_node(node)
    return root


#: Human-readable classification rules (the provenance vocabulary).
_RULES = {
    TokenType.CMT: "Table 1: command phrase -> RETURN clause",
    TokenType.OBT: "Table 1: order phrase -> ORDER BY clause",
    TokenType.FT: "Table 1: function phrase -> aggregate function",
    TokenType.OT: "Table 1: operator phrase -> comparison operator",
    TokenType.VT: "Table 1: value -> literal in a predicate",
    TokenType.NT: "Table 1: noun -> basic variable (name token)",
    TokenType.QT: "Table 1: quantifier word",
    TokenType.NEG: "Table 1: negation word -> not()",
    TokenType.CM: "Table 2: connection marker (attachment only)",
    TokenType.MM: "Table 2: modifier marker",
    TokenType.PM: "Table 2: pronoun marker",
    TokenType.GM: "Table 2: general marker (no semantics)",
    TokenType.UNKNOWN: "outside the Tables 1-2 vocabulary",
}

#: Public alias consumed by the pipeline-consistency linter
#: (:mod:`repro.analysis.consistency`).
CLASSIFICATION_RULES = _RULES


def _classify_node(node):
    node.implicit = False
    category = node.category
    lemma = node.lemma

    if category in (Category.COMMAND, Category.WH):
        node.token_type = (
            TokenType.CMT if lemma in COMMAND_PHRASES else TokenType.UNKNOWN
        )
    elif category == Category.ORDER:
        node.token_type = TokenType.OBT
        node.descending = ORDER_PHRASES.get(lemma, False)
    elif category == Category.FUNCTION:
        if lemma in FUNCTION_PHRASES:
            node.token_type = TokenType.FT
            node.aggregate = FUNCTION_PHRASES[lemma]
        else:
            node.token_type = TokenType.UNKNOWN
    elif category == Category.COMPARATIVE:
        if lemma in OPERATOR_PHRASES:
            node.token_type = TokenType.OT
            node.operator = OPERATOR_PHRASES[lemma]
        else:
            node.token_type = TokenType.UNKNOWN
    elif category == Category.VALUE:
        node.token_type = TokenType.VT
        node.value = _parse_literal(node)
    elif category == Category.NOUN:
        node.token_type = TokenType.NT
    elif category == Category.QUANTIFIER:
        node.token_type = (
            TokenType.QT if lemma in QUANTIFIER_WORDS else TokenType.UNKNOWN
        )
    elif category == Category.NEGATION:
        node.token_type = (
            TokenType.NEG if lemma in NEGATION_WORDS else TokenType.UNKNOWN
        )
    elif category == Category.PREP:
        node.token_type = (
            TokenType.CM
            if lemma in CONNECTION_PREPOSITIONS
            else TokenType.UNKNOWN
        )
    elif category == Category.VERB:
        # Non-token main verbs are connection markers (Table 2).
        node.token_type = TokenType.CM
    elif category in (Category.DETERMINER, Category.ADJECTIVE):
        node.token_type = TokenType.MM
    elif category == Category.PRONOUN:
        node.token_type = TokenType.PM
    elif category in (
        Category.AUXILIARY,
        Category.SUBORDINATOR,
        Category.BOUNDARY,
        Category.CONJUNCTION,
    ):
        node.token_type = TokenType.GM
    else:
        node.token_type = TokenType.UNKNOWN
    node.classification_rule = _RULES[node.token_type]


def _parse_literal(node):
    """A VT's literal: numeric when unquoted and numeric-looking."""
    text = node.text
    if node.quoted:
        return text
    try:
        if "." in text:
            return float(text)
        return int(text)
    except ValueError:
        return text
