"""Feedback messages: the error/warning vocabulary of Sec. 4.

Every message is generated for the specific query that caused it and,
where possible, carries a concrete rephrasing suggestion — the paper's
mechanism for teaching users the system's linguistic coverage without a
manual.
"""

from __future__ import annotations


class Message:
    """One error or warning.

    ``production`` names the grammar production (Table 6) or paper
    definition whose check generated the message; it is carried into
    ``QueryResult.provenance`` so the explain engine can cite the exact
    rule that fired.
    """

    ERROR = "error"
    WARNING = "warning"

    def __init__(self, kind, code, text, suggestion=None, node=None,
                 production=None):
        self.kind = kind
        self.code = code
        self.text = text
        self.suggestion = suggestion
        self.node = node
        self.production = production

    def render(self):
        prefix = "Error" if self.kind == Message.ERROR else "Warning"
        rendered = f"{prefix}: {self.text}"
        if self.suggestion:
            rendered += f" Suggestion: {self.suggestion}"
        return rendered

    def __repr__(self):
        return f"Message({self.kind}, {self.code}, {self.text!r})"


class Feedback:
    """The collected outcome of validation."""

    def __init__(self):
        self.messages = []

    def error(self, code, text, suggestion=None, node=None, production=None):
        self.messages.append(
            Message(Message.ERROR, code, text, suggestion, node, production)
        )

    def warning(self, code, text, suggestion=None, node=None, production=None):
        self.messages.append(
            Message(Message.WARNING, code, text, suggestion, node, production)
        )

    @property
    def errors(self):
        return [m for m in self.messages if m.kind == Message.ERROR]

    @property
    def warnings(self):
        return [m for m in self.messages if m.kind == Message.WARNING]

    @property
    def ok(self):
        return not self.errors

    def render(self):
        return "\n".join(message.render() for message in self.messages)

    def __repr__(self):
        return (
            f"Feedback({len(self.errors)} errors, {len(self.warnings)} warnings)"
        )
