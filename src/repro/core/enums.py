"""The enumerated phrase sets — NaLIX's "real-world knowledge base".

The paper keeps each set small ("about a dozen elements"); these are the
same sets, written with lemmatised words ("be the same as") so that the
parser's morphology matches every surface inflection. The sets also
carry their semantic payload: operator phrases map to a comparison
symbol, function phrases to an aggregate function, order phrases to a
sort direction.
"""

from __future__ import annotations

from repro.nlp.categories import Category

# -- CMT: command phrases ------------------------------------------------------

COMMAND_PHRASES = {
    "return",
    "find",
    "list",
    "show",
    "display",
    "give",
    "get",
    "retrieve",
    "report",
    "tell",
    "show me",
    "give me",
    "tell me",
    "what",
    "which",
    "who",
}

# -- OBT: order-by phrases -> descending flag ---------------------------------------

ORDER_PHRASES = {
    "sort by": False,
    "sorted by": False,
    "order by": False,
    "ordered by": False,
    "rank by": False,
    "ranked by": False,
    "in alphabetical order of": False,
    "in alphabetic order of": False,
    "in alphabetical order": False,
    "in alphabetic order": False,
    "in ascending order of": False,
    "in ascending order": False,
    "in descending order of": True,
    "in descending order": True,
    "in reverse order of": True,
}

# -- FT: function phrases -> aggregate function ----------------------------------------

FUNCTION_PHRASES = {
    "the number of": "count",
    "the total number of": "count",
    "number of": "count",
    "the count of": "count",
    "how many": "count",
    "the sum of": "sum",
    "the total of": "sum",
    "the average of": "avg",
    "the average": "avg",
    "average": "avg",
    "lowest": "min",
    "the lowest": "min",
    "smallest": "min",
    "minimum": "min",
    "earliest": "min",
    "cheapest": "min",
    "least expensive": "min",
    "highest": "max",
    "the highest": "max",
    "largest": "max",
    "greatest": "max",
    "maximum": "max",
    "latest": "max",
    "most expensive": "max",
    "most recent": "max",
}

# -- OT: operator phrases -> comparison symbol ---------------------------------------------

OPERATOR_PHRASES = {
    # Bare copula: the parser emits it as an operator when it links a
    # clause subject to a value ("... where the director is Ron Howard").
    "be": "=",
    "be the same as": "=",
    "the same as": "=",
    "be equal to": "=",
    "equal to": "=",
    "equal": "=",
    "be different from": "!=",
    "different from": "!=",
    "greater than": ">",
    "more than": ">",
    "larger than": ">",
    "bigger than": ">",
    "higher than": ">",
    "later than": ">",
    "after": ">",
    "over": ">",
    "above": ">",
    "less than": "<",
    "fewer than": "<",
    "smaller than": "<",
    "lower than": "<",
    "earlier than": "<",
    "before": "<",
    "under": "<",
    "below": "<",
    "at least": ">=",
    "no less than": ">=",
    "at most": "<=",
    "no more than": "<=",
    "contain": "contains",
    "containing": "contains",
    "include the word": "contains",
    "contain the word": "contains",
}

# -- CM: connection-marker prepositions (note: "as" is deliberately absent —
# the paper's Query 1 fails on it and the feedback suggests "the same as").

CONNECTION_PREPOSITIONS = {
    "of",
    "by",
    "with",
    "for",
    "from",
    "in",
    "on",
    "about",
    "within",
    "to",
    "whose",
}

# -- QT / NEG --------------------------------------------------------------------------------

QUANTIFIER_WORDS = {"every", "each", "all", "any", "some"}

NEGATION_WORDS = {"not", "never"}

# Articles are vacuous for name-token equivalence (Def. 1).
VACUOUS_MODIFIERS = {"the", "a", "an"}


def parser_vocabulary():
    """Build the vocabulary handed to the dependency parser.

    Maps lemma phrases to parser categories; the classifier later reads
    the same enum sets to attach token types and payloads.
    """
    vocabulary = {}
    for phrase in COMMAND_PHRASES:
        if phrase not in ("what", "which", "who"):
            vocabulary[phrase] = Category.COMMAND
    for phrase in ORDER_PHRASES:
        vocabulary[phrase] = Category.ORDER
    for phrase in FUNCTION_PHRASES:
        vocabulary[phrase] = Category.FUNCTION
    for phrase in OPERATOR_PHRASES:
        vocabulary[phrase] = Category.COMPARATIVE
    return vocabulary


def suggest_replacement(word, category=None):
    """A rephrasing suggestion for an unclassifiable term.

    Mirrors the paper's feedback: for Query 1's "as" the system suggests
    "the same as". The suggestion is the enum phrase containing the
    unknown word, or the closest operator phrase.
    """
    word = word.lower()
    for phrase in OPERATOR_PHRASES:
        if word != phrase and word in phrase.split():
            return phrase
    for phrase in FUNCTION_PHRASES:
        if word != phrase and word in phrase.split():
            return phrase
    for phrase in ORDER_PHRASES:
        if word != phrase and word in phrase.split():
            return phrase
    return None
