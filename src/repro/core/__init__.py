"""NaLIX core: classification, validation, translation, interaction.

This package is the paper's primary contribution, layered exactly as
Sec. 3–4 describe:

* :mod:`token_types` / :mod:`enums` — Tables 1 and 2: the token/marker
  taxonomy and the enumerated phrase sets ("the real-world knowledge
  base for the system", each about a dozen entries);
* :mod:`classifier` — Sec. 3.1: identify tokens and markers in the
  dependency parse tree;
* :mod:`validator` — Sec. 4: check the classified tree against the
  supported grammar (Table 6), insert implicit name tokens (Def. 11),
  expand terms against the database, and produce the error/warning
  feedback that drives interactive reformulation;
* :mod:`semantics` — Sec. 3.2.1: token equivalence, core tokens,
  attachment and relatedness (Defs. 1–10);
* :mod:`translator` — Sec. 3.2.2–3.2.4: variable binding, pattern
  mapping (Fig. 4), connection-marker semantics (Fig. 5),
  grouping/nesting for aggregates (Fig. 6), MQF clauses, and full
  query construction;
* :mod:`interface` — the interactive query interface itself.
"""

from repro.core.errors import NaLIXError, TranslationError, ValidationFailed
from repro.core.feedback import Feedback, Message
from repro.core.interface import NaLIX, QueryResult
from repro.core.token_types import TokenType

__all__ = [
    "Feedback",
    "Message",
    "NaLIX",
    "NaLIXError",
    "QueryResult",
    "TokenType",
    "TranslationError",
    "ValidationFailed",
]
