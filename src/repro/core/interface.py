"""The interactive NaLIX interface.

Wires the full pipeline of the paper's Sec. 3–4 together::

    parse -> classify -> validate (feedback on failure) -> translate ->
    analyze (the qlint gate; see repro.analysis) -> serialize to XQuery
    text -> evaluate on the database

``ask`` never raises on user-input problems: it returns a
:class:`QueryResult` that either carries results or carries the feedback
messages a user (or the simulated participants of the evaluation
harness) would see and react to.

Every ``ask`` call builds a :class:`repro.obs.spans.Trace` with one span
per pipeline stage and attaches it to ``QueryResult.trace``; the span
tree is the single source of truth for the result's per-stage
``*_seconds`` properties and for the ``pipeline.*`` metrics.

Resilience (see DESIGN.md "Resilience"): ``ask`` may carry a
:class:`repro.resilience.QueryBudget` (or a plain ``timeout``); the
engine checks it cooperatively and raises ``BudgetExceeded`` when a
query overruns. Failures on the evaluation path walk a graceful-
degradation ladder — planned FLWOR → naive FLWOR → bounded keyword
search over the query's name/value tokens — and a degraded answer is
visibly marked (``status == "degraded"``, a ``degraded-answer``
warning, per-hop spans and metrics), never silently wrong.  ``ask``
never raises: unexpected exceptions become ``internal-error`` feedback,
and every outcome carries an ``error_class`` from the
``REJECTED``/``DEGRADED``/``EXHAUSTED``/``INTERNAL`` taxonomy plus a
``retryable`` flag.
"""

from __future__ import annotations

import re

from repro.analysis import (
    analyze_query,
    attach_clause_provenance,
    ensure_pipeline_consistent,
)
from repro.analysis.racecheck import note_blocking
from repro.core.classifier import classify_tree
from repro.core.enums import COMMAND_PHRASES, parser_vocabulary
from repro.core.errors import TranslationError
from repro.core.feedback import Feedback
from repro.core.translator import Translator
from repro.core.token_types import TokenType, token_type
from repro.core.validator import Validator
from repro.keyword_search.engine import KeywordSearchEngine
from repro.nlp.dependency import DependencyParser
from repro.nlp.errors import ParseFailure
from repro.obs.answers import answer_digest
from repro.obs.export import LATENCIES
from repro.obs.memory import MemorySpec, MemoryTracker, current_memory_spec
from repro.obs.metrics import METRICS
from repro.obs.plan_stats import PlanStatsCollection, activate_plan_stats
from repro.obs.profiler import (
    ProfileSpec,
    SamplingProfiler,
    current_profile_spec,
)
from repro.obs.provenance import (
    QueryProvenance,
    token_records_from_tree,
    validation_records_from_feedback,
)
from repro.obs.spans import Span, Trace, activate_trace
from repro.ontology.expansion import TermExpander
from repro.resilience.budget import (
    BudgetExceeded,
    QueryBudget,
    activate_budget,
    check_deadline,
)
from repro.resilience.errors import (
    BrownoutDegraded,
    classify_codes,
    describe_failure,
    is_retryable,
)
from repro.resilience.faults import FaultPlan
from repro.xmlstore.model import Node
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_xquery
from repro.xquery.values import string_value

_SENTENCE_SPLIT_RE = re.compile(r"[.!?]\s+")

# A contradictory lexicon/grammar/translator table is a programming
# error, not a user error: fail at import time, before any query can be
# mis-translated (see repro.analysis.consistency).
ensure_pipeline_consistent()

#: Error codes that mean the *system* failed on an accepted query, as
#: opposed to the query being rejected back to the user with feedback.
_FAILURE_CODES = frozenset({"translation-failure", "evaluation-failure",
                            "budget-exhausted", "internal-error",
                            "injected-fault", "invalid-query",
                            "brownout-degraded"})

#: Pipeline stage span names, in execution order.
_STAGES = ("parse", "classify", "validate", "translate", "analyze",
           "xquery-parse", "evaluate")

# Metrics resolved once: _record runs after every query, so it must not
# rebuild metric names per call.
_QUERIES = METRICS.counter("pipeline.queries")
_STATUS_COUNTERS = {
    status: METRICS.counter(f"pipeline.status.{status}")
    for status in ("ok", "degraded", "rejected", "failed")
}
#: Degradation-ladder hops, in fallback order.
_DEGRADATION_HOPS = ("naive-flwor", "keyword-search")
_DEGRADED_COUNTERS = {
    hop: METRICS.counter(f"resilience.degraded.{hop}")
    for hop in _DEGRADATION_HOPS
}
_DEGRADATION_EXHAUSTED = METRICS.counter("resilience.degraded.exhausted")
_STAGE_HISTOGRAMS = {
    stage: METRICS.histogram(f"pipeline.stage.{stage}.seconds")
    for stage in _STAGES
}
_STAGE_ERROR_COUNTERS = {
    stage: METRICS.counter(f"pipeline.stage.{stage}.errors")
    for stage in _STAGES
}
_ANALYSIS_FINDING_COUNTERS = {
    severity: METRICS.counter(f"analysis.findings.{severity}")
    for severity in ("error", "warning")
}
_ANALYSIS_REJECTED = METRICS.counter("analysis.gate.rejected")
_ANALYSIS_UNAVAILABLE = METRICS.counter("analysis.gate.unavailable")
_PEAK_RSS_GAUGE = METRICS.gauge("pipeline.memory.peak_rss_bytes")
_ALLOC_HISTOGRAM = METRICS.histogram("pipeline.memory.alloc_bytes")
_PROFILED_QUERIES = METRICS.counter("pipeline.profiled_queries")


class QueryResult:
    """Outcome of one natural-language query."""

    def __init__(self, sentence):
        self.sentence = sentence
        self.accepted = False       # passed validation & translated
        self.feedback = Feedback()
        self.parse_tree = None
        self.translation = None
        self.xquery_text = None
        self.items = []             # raw evaluation output
        self.analysis = None        # repro.analysis.AnalysisReport
        self.trace = None           # repro.obs.spans.Trace, set by ask()
        self.provenance = None      # repro.obs.provenance.QueryProvenance
        self.plan_stats = None      # repro.obs.plan_stats.PlanStatsCollection
        self.profile = None         # repro.obs.profiler.SamplingProfiler
        self.memory = None          # repro.obs.memory.MemoryTracker
        self.budget = None          # the QueryBudget the query ran under
        self.degraded = False       # served by a fallback hop, not exactly
        self.degradation_path = []  # fallback hops attempted, in order
        self.pre_degrade = None     # brownout-requested fallback hop
        self.answer_digest = None   # canonical answer fingerprint, set by ask()

    @property
    def ok(self):
        return self.accepted

    @property
    def status(self):
        """Audit status: ``ok`` | ``degraded`` | ``rejected`` | ``failed``.

        ``degraded`` — an approximate answer was served by a fallback
        hop; ``rejected`` — the input was turned back with feedback
        before a query was produced (parse/validation stage);
        ``failed`` — a well-formed query died in translation or
        evaluation (including budget exhaustion).
        """
        if self.accepted:
            return "degraded" if self.degraded else "ok"
        if any(message.code in _FAILURE_CODES for message in self.errors):
            return "failed"
        return "rejected"

    @property
    def error_class(self):
        """Taxonomy class of the outcome (None for an exact success).

        One of ``rejected`` / ``degraded`` / ``exhausted`` /
        ``internal`` (see :mod:`repro.resilience.errors`).
        """
        if self.accepted:
            return "degraded" if self.degraded else None
        return classify_codes(message.code for message in self.errors)

    @property
    def retryable(self):
        """True when retrying (possibly with a larger budget) makes sense."""
        return is_retryable(self.error_class)

    @property
    def warnings(self):
        return self.feedback.warnings

    @property
    def errors(self):
        return self.feedback.errors

    # -- per-stage timings (derived from the trace) --------------------------

    def stage_seconds(self, name):
        """Wall time of the named pipeline stage (0.0 when it never ran)."""
        if self.trace is None:
            return 0.0
        return self.trace.stage_seconds(name)

    @property
    def parse_seconds(self):
        return self.stage_seconds("parse")

    @property
    def validation_seconds(self):
        return self.stage_seconds("classify") + self.stage_seconds("validate")

    @property
    def translation_seconds(self):
        return self.stage_seconds("translate")

    @property
    def evaluation_seconds(self):
        return self.stage_seconds("xquery-parse") + self.stage_seconds(
            "evaluate"
        )

    @property
    def total_seconds(self):
        return self.trace.total_seconds() if self.trace is not None else 0.0

    # -- results -------------------------------------------------------------

    def nodes(self):
        """Distinct result nodes, in document order of first appearance."""
        seen = set()
        result = []
        for item in self.items:
            if isinstance(item, Node) and id(item) not in seen:
                seen.add(id(item))
                result.append(item)
        return result

    def distinct_items(self):
        """Result items with duplicate nodes removed (atomics kept).

        Multi-variable binding tuples repeat the returned node once per
        combination; the interface presents each element once, and the
        study's precision/recall is computed over this presentation.
        """
        seen = set()
        result = []
        for item in self.items:
            if isinstance(item, Node):
                if id(item) not in seen:
                    seen.add(id(item))
                    result.append(item)
            else:
                result.append(item)
        return result

    def values(self):
        """String values of all result items (nodes deduplicated)."""
        atoms = [item for item in self.items if not isinstance(item, Node)]
        return [string_value(node) for node in self.nodes()] + [
            string_value(atom) for atom in atoms
        ]

    def render_feedback(self):
        return self.feedback.render()

    def __repr__(self):
        status = "ok" if self.ok else f"rejected({len(self.errors)} errors)"
        return f"QueryResult({self.sentence[:40]!r}..., {status})"


def _looks_multi_sentence(sentence):
    """True when the input holds several sentences (". Return ...").

    Conservative: a sentence boundary only counts when the next fragment
    opens with a command word, so abbreviations ("W. Stevens") and
    punctuation inside values never trigger it.
    """
    parts = [
        part.strip()
        for part in _SENTENCE_SPLIT_RE.split(sentence.strip())
        if part.strip()
    ]
    if len(parts) <= 1:
        return False
    return any(
        part.split()[0].lower() in COMMAND_PHRASES for part in parts[1:]
    )


class NaLIX:
    """A generic natural language interface to an XML database.

    Example::

        nalix = NaLIX(database)
        result = nalix.ask("Return the title of every book.")
        if result.ok:
            print(result.values())
        else:
            print(result.render_feedback())   # rephrasing suggestions

    ``audit_log`` (any object with a ``record(result)`` method, normally
    a :class:`repro.obs.audit.AuditLog`) receives every finished
    :class:`QueryResult`.

    Resilience knobs: ``budget`` is a default
    :class:`repro.resilience.QueryBudget` applied to every ``ask``
    (per-call ``budget=``/``timeout=`` override it); ``fault_plan`` is
    a :class:`repro.resilience.FaultPlan` (or anything
    ``FaultPlan.coerce`` accepts) whose faults fire inside the pipeline
    stages; ``degrade=False`` disables the fallback ladder, turning
    evaluation failures directly into errors.

    ``analysis_suppress`` is an iterable of qlint rule ids (see
    DESIGN.md §8) that the post-translation static-analysis gate must
    not report for this interface.
    """

    def __init__(self, database, document_name=None, thesaurus=None,
                 use_planner=True, wrap_results=False, audit_log=None,
                 budget=None, fault_plan=None, degrade=True,
                 analysis_suppress=()):
        self.database = database
        self.document_name = document_name or next(iter(database.documents), "doc")
        self.parser = DependencyParser(parser_vocabulary())
        self.expander = TermExpander(database, thesaurus=thesaurus)
        self.validator = Validator(database, self.expander)
        self.translator = Translator(
            database, self.document_name, wrap_results=wrap_results
        )
        self.evaluator = Evaluator(database, use_planner=use_planner)
        self.naive_evaluator = Evaluator(database, use_planner=False)
        self.keyword_engine = KeywordSearchEngine(database)
        self.audit_log = audit_log
        self.budget = budget
        self.fault_plan = FaultPlan.coerce(fault_plan)
        self.degrade = degrade
        self.analysis_suppress = tuple(analysis_suppress)

    # -- pipeline stages (each usable on its own for tests/benches) ------------------

    def parse(self, sentence):
        return self.parser.parse(sentence)

    def classify(self, tree):
        return classify_tree(tree)

    def validate(self, classified_tree):
        return self.validator.validate(classified_tree)

    def translate(self, validated_tree):
        return self.translator.translate(validated_tree)

    # -- the interactive entry point ------------------------------------------------------

    def ask(self, sentence, evaluate=True, budget=None, timeout=None,
            profile=None, memory=None, meter=None, pre_degrade=None):
        """Run the full pipeline; never raises.

        ``budget`` (a :class:`repro.resilience.QueryBudget`) bounds the
        query's work; ``timeout`` is a convenience that builds the
        default budget with the given wall-clock deadline in seconds.
        An explicit ``budget`` wins over ``timeout``; with neither, the
        interface-level default budget (if any) applies.  ``meter`` is a
        pre-started :class:`repro.resilience.BudgetMeter` that wins over
        all of them — the serving layer passes one so its stuck-query
        watchdog can force-expire a wedged evaluation from outside.

        ``pre_degrade`` (``"naive-flwor"`` or ``"keyword-search"``)
        skips the full-fidelity evaluation rungs and serves directly
        from the named fallback hop — the serving brownout ladder uses
        it to shed work without shedding requests.  The answer is
        classified ``degraded`` with a ``brownout-degraded`` cause, so
        lower fidelity is always visible to the caller.

        ``profile`` (``True``, an hz number, or a
        :class:`repro.obs.profiler.ProfileSpec`) samples this query's
        stack from a background thread and attaches the stopped
        profiler as ``result.profile``; ``memory`` (``True`` or a
        :class:`repro.obs.memory.MemorySpec`) accounts per-stage
        tracemalloc deltas and top allocation sites on
        ``result.memory``.  Both also honour their context-wide
        activations (``activate_profiling`` /
        ``activate_memory_tracking``), and both are exception-safe:
        the sampler thread is stopped and tracemalloc released on
        every path out of the query.
        """
        # A full query run blocks for up to the budget deadline; under
        # REPRO_RACECHECK=1 flag any caller that reaches it holding a
        # lock (no-op when racecheck is off).
        note_blocking("NaLIX.ask")
        result = QueryResult(sentence)
        trace = Trace()
        result.trace = trace
        result.provenance = QueryProvenance(sentence)
        plan_stats = PlanStatsCollection()
        result.plan_stats = plan_stats
        profile_spec = (ProfileSpec.coerce(profile)
                        if profile is not None and profile is not False
                        else current_profile_spec())
        memory_spec = (MemorySpec.coerce(memory)
                       if memory is not None and memory is not False
                       else current_memory_spec())
        tracker = MemoryTracker.from_spec(memory_spec)
        result.memory = tracker
        profiler = None
        if profile_spec is not None:
            profiler = SamplingProfiler.from_spec(profile_spec, trace=trace)
            result.profile = profiler
        if meter is not None:
            spec = meter.budget
        else:
            spec = budget
            if spec is None and timeout is not None:
                spec = QueryBudget.default(deadline_seconds=timeout)
            if spec is None:
                spec = self.budget
            meter = spec.start() if spec is not None else None
        result.budget = spec
        result.pre_degrade = pre_degrade
        try:
            tracker.start()
            if profiler is not None:
                profiler.start()
            with trace.span("ask") as root, activate_trace(trace), \
                    activate_plan_stats(plan_stats), activate_budget(meter):
                try:
                    self._run_pipeline(sentence, evaluate, result, trace)
                except Exception as error:
                    # Faults and budget trips outside the evaluation
                    # stages, plus genuine bugs: classify, never crash.
                    result.accepted = False
                    self._note_failure(result, error)
                if not result.ok:
                    root.status = Span.ERROR
                root.set("status", result.status)
                if meter is not None:
                    for key, value in meter.snapshot().items():
                        root.set(f"budget.{key}", value)
        finally:
            if profiler is not None:
                profiler.stop()
            tracker.stop()
            trace.finish_open_spans()
            plan_stats.finish_open_operators()
            try:
                # The fingerprint covers the *presented* answer — the
                # same values() list /query returns — so the audit log,
                # flight recorder, canary, and replay all compare the
                # exact artifact a user would see.
                result.answer_digest = answer_digest(result.values())
            except Exception:
                result.answer_digest = None  # never let obs break ask()
            self._record(result)
        return result

    def _run_pipeline(self, sentence, evaluate, result, trace):
        if _looks_multi_sentence(sentence):
            # Multi-sentence queries are the paper's future work; reject
            # with guidance rather than silently mis-reading them.
            result.feedback.error(
                "multi-sentence",
                "The query contains more than one sentence.",
                suggestion="Ask one question at a time; NaLIX does not "
                "support multi-sentence queries yet.",
            )
            return

        memory = result.memory
        with trace.span("parse") as span, memory.stage(span):
            try:
                self._fire_fault("parse")
                check_deadline()
                tree = self.parse(sentence)
            except ParseFailure as failure:
                span.status = Span.ERROR
                result.feedback.error(
                    "parse-failure",
                    f"NaLIX could not parse the sentence: {failure}.",
                    suggestion="State the query as a single imperative "
                    'sentence, e.g. "Return the title of every book."',
                )
                return

        with trace.span("classify") as span, memory.stage(span):
            self._fire_fault("classify")
            self.classify(tree)
        result.parse_tree = tree

        with trace.span("validate") as span, memory.stage(span):
            self._fire_fault("validate")
            check_deadline()
            feedback = self.validate(tree)
            result.feedback = feedback
            # Token ids exist (and implicit NTs are inserted) only after
            # validation, so provenance is harvested here — for rejected
            # queries too, so explain can show why the grammar said no.
            result.provenance.tokens = token_records_from_tree(tree)
            result.provenance.validations = validation_records_from_feedback(
                feedback
            )
            if not feedback.ok:
                span.status = Span.ERROR
                span.set("errors", len(feedback.errors))
                return
            if feedback.warnings:
                span.set("warnings", len(feedback.warnings))

        with trace.span("translate") as span, memory.stage(span):
            try:
                self._fire_fault("translate")
                check_deadline()
                translation = self.translate(tree)
            except TranslationError as error:
                span.status = Span.ERROR
                result.feedback.error(
                    "translation-failure",
                    f"NaLIX could not map the query to XQuery: {error}.",
                    suggestion="Simplify the query, or split it into smaller "
                    "questions.",
                )
                return
        result.translation = translation
        result.xquery_text = translation.text
        result.provenance.clauses = list(translation.provenance)

        # The qlint gate: a malformed translation is a translator bug
        # and must never reach the evaluator (see DESIGN.md §8).
        with trace.span("analyze") as span, memory.stage(span):
            if not self._analyze(result, span):
                return
        result.accepted = True

        if evaluate:
            self._evaluate_with_degradation(result, trace)

    # -- the static-analysis gate --------------------------------------------

    def _analyze(self, result, span):
        """Run the qlint gate on the translated AST; True = proceed.

        Analyzer *errors* mean the translation is malformed (unbound
        variable, bad ``mqf`` call, …): the query is rejected with an
        ``invalid-query`` error — classified ``internal``, because the
        bug is ours, not the user's — and never reaches the evaluator.
        Analyzer *warnings* ride along as ``analysis-<RULE>`` feedback
        and the report is attached as ``result.analysis``.

        The gate fails open: if the analyzer itself crashes (including
        injected faults at the ``analyze`` stage), the query is served
        unchecked with an ``analysis-unavailable`` warning — static
        analysis must never take down query serving.  Budget trips are
        re-raised so they keep their ``exhausted`` classification.
        """
        try:
            self._fire_fault("analyze")
            check_deadline()
            report = analyze_query(
                result.translation.query, suppress=self.analysis_suppress
            )
            attach_clause_provenance(report, result.provenance.clauses)
        except BudgetExceeded:
            raise
        except Exception as error:
            span.status = Span.ERROR
            _ANALYSIS_UNAVAILABLE.inc()
            result.feedback.warning(
                "analysis-unavailable",
                f"Static analysis could not run "
                f"({type(error).__name__}: {error}); the query was "
                "served unchecked.",
            )
            return True
        result.analysis = report
        if report.findings:
            span.set("findings", len(report.findings))
        for finding in report.warnings:
            _ANALYSIS_FINDING_COUNTERS["warning"].inc()
            result.feedback.warning(
                f"analysis-{finding.rule_id}", finding.render()
            )
        if not report.errors:
            return True
        span.status = Span.ERROR
        span.set("errors", len(report.errors))
        _ANALYSIS_REJECTED.inc()
        for _ in report.errors:
            _ANALYSIS_FINDING_COUNTERS["error"].inc()
        details = "; ".join(
            finding.render() for finding in report.errors[:3]
        )
        result.feedback.error(
            "invalid-query",
            f"The translated query failed static analysis: {details}.",
            suggestion="This is a translator defect, not a problem with "
            "the question; please report the rule id(s) above, or "
            "rephrase the query to avoid the pattern.",
        )
        return False

    # -- evaluation and the graceful-degradation ladder ----------------------

    def _fire_fault(self, stage):
        if self.fault_plan is not None:
            self.fault_plan.fire(stage)

    def _evaluate_with_degradation(self, result, trace):
        """Evaluate the translated query, degrading instead of failing.

        The ladder: the configured evaluator (planned FLWOR by
        default), then naive FLWOR, then bounded keyword search over
        the query's name/value tokens. Each hop runs in its own span
        and counts a ``resilience.degraded.*`` metric; a degraded
        answer carries a ``degraded-answer`` warning so it is visibly
        approximate, never silently wrong.
        """
        memory = result.memory
        pre_degrade = result.pre_degrade
        if pre_degrade == "keyword-search" and self.degrade:
            # Brownout floor: skip FLWOR evaluation entirely (the
            # keyword rung needs no AST, so xquery-parse is skipped too).
            self._degrade_to_keyword(
                result, trace, BrownoutDegraded("keyword-search")
            )
            return
        try:
            # Re-parse the serialized text: the emitted query string is
            # the contract, exactly as NaLIX hands text to Timber.
            with trace.span("xquery-parse") as span, memory.stage(span):
                self._fire_fault("xquery-parse")
                expr = parse_xquery(result.xquery_text)
        except Exception as error:
            # Without an AST the FLWOR hops are unreachable; jump
            # straight to the keyword rung.
            if self.degrade:
                self._degrade_to_keyword(result, trace, error)
            else:
                result.accepted = False
                self._note_failure(result, error)
            return

        if pre_degrade == "naive-flwor" and self.degrade:
            # Brownout middle rung: skip the planned evaluator.
            primary = BrownoutDegraded("naive-flwor")
        else:
            try:
                with trace.span("evaluate") as span, memory.stage(span):
                    self._fire_fault("evaluate")
                    result.items = self.evaluator.run(expr)
                    span.set("items", len(result.items))
                return
            except Exception as error:
                primary = error
            if not self.degrade:
                result.accepted = False
                self._note_failure(result, primary)
                return

        if self.evaluator.use_planner:
            result.degradation_path.append("naive-flwor")
            try:
                check_deadline()
                with trace.span("evaluate-naive") as span, \
                        memory.stage(span):
                    span.set("degraded_from", type(primary).__name__)
                    result.items = self.naive_evaluator.run(expr)
                    span.set("items", len(result.items))
                self._mark_degraded(result, "naive-flwor", primary)
                return
            except Exception:
                pass  # fall through to the keyword rung; report `primary`
        self._degrade_to_keyword(result, trace, primary)

    def _degrade_to_keyword(self, result, trace, primary):
        """Last rung: bounded keyword search over name/value tokens."""
        result.degradation_path.append("keyword-search")
        try:
            check_deadline()
            with trace.span("evaluate-keyword") as span, \
                    result.memory.stage(span):
                span.set("degraded_from", type(primary).__name__)
                terms = self._keyword_terms(result)
                span.set("terms", len(terms))
                result.items = (
                    self.keyword_engine.search(" ".join(terms))
                    if terms
                    else []
                )
                span.set("items", len(result.items))
            self._mark_degraded(result, "keyword-search", primary)
        except Exception:
            _DEGRADATION_EXHAUSTED.inc()
            result.items = []
            result.accepted = False
            self._note_failure(result, primary)

    def _keyword_terms(self, result):
        """The query's name/value tokens, for the keyword-search rung."""
        tree = result.parse_tree
        if tree is None:
            return self.keyword_engine.split_terms(result.sentence)
        terms = []
        for node in tree.preorder():
            if token_type(node) in (TokenType.NT, TokenType.VT):
                # Implicit NT insertions are rendered "[name]"; the
                # keyword index knows only the bare element name.
                text = node.text.strip("[]")
                terms.append(f'"{text}"' if node.quoted else text)
        return terms

    def _mark_degraded(self, result, hop, primary):
        result.degraded = True
        result.accepted = True
        _DEGRADED_COUNTERS[hop].inc()
        code, _, _ = describe_failure(primary)
        result.feedback.warning(
            "degraded-answer",
            f"The exact query could not be completed ({code}: {primary}); "
            f"showing approximate results from {hop}.",
            suggestion="Narrow the query or raise the budget/timeout to "
            "get an exact answer.",
        )

    def _note_failure(self, result, error):
        """Turn an evaluation-path exception into classified feedback."""
        code, text, suggestion = describe_failure(error)
        result.feedback.error(code, text, suggestion=suggestion)

    def _record(self, result):
        """Report one finished query to metrics and the audit log."""
        _QUERIES.inc()
        _STATUS_COUNTERS[result.status].inc()
        trace = result.trace
        if trace is not None and trace.roots:
            LATENCIES.observe("total", trace.total_seconds())
            for span in trace.roots[0].children:
                LATENCIES.observe(span.name, span.duration_seconds)
                histogram = _STAGE_HISTOGRAMS.get(span.name)
                if histogram is not None:
                    histogram.observe(span.duration_seconds)
                    if span.status == Span.ERROR:
                        _STAGE_ERROR_COUNTERS[span.name].inc()
        memory = result.memory
        if memory is not None:
            if memory.peak_rss_bytes:
                _PEAK_RSS_GAUGE.set(memory.peak_rss_bytes)
            if memory.alloc_bytes is not None:
                _ALLOC_HISTOGRAM.observe(float(memory.alloc_bytes))
        if result.profile is not None:
            _PROFILED_QUERIES.inc()
        for message in result.errors:
            METRICS.inc(f"pipeline.error.{message.code}")
        if self.audit_log is not None:
            self.audit_log.record(result)
