"""The interactive NaLIX interface.

Wires the full pipeline of the paper's Sec. 3–4 together::

    parse -> classify -> validate (feedback on failure) -> translate ->
    serialize to XQuery text -> evaluate on the database

``ask`` never raises on user-input problems: it returns a
:class:`QueryResult` that either carries results or carries the feedback
messages a user (or the simulated participants of the evaluation
harness) would see and react to.
"""

from __future__ import annotations

import time

from repro.core.classifier import classify_tree
from repro.core.enums import parser_vocabulary
from repro.core.errors import TranslationError
from repro.core.feedback import Feedback
from repro.core.translator import Translator
from repro.core.validator import Validator
from repro.nlp.dependency import DependencyParser
from repro.nlp.errors import ParseFailure
from repro.ontology.expansion import TermExpander
from repro.xmlstore.model import Node
from repro.xquery.errors import XQueryError
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_xquery
from repro.xquery.values import string_value


class QueryResult:
    """Outcome of one natural-language query."""

    def __init__(self, sentence):
        self.sentence = sentence
        self.accepted = False       # passed validation & translated
        self.feedback = Feedback()
        self.parse_tree = None
        self.translation = None
        self.xquery_text = None
        self.items = []             # raw evaluation output
        self.translation_seconds = 0.0
        self.evaluation_seconds = 0.0

    @property
    def ok(self):
        return self.accepted

    @property
    def warnings(self):
        return self.feedback.warnings

    @property
    def errors(self):
        return self.feedback.errors

    def nodes(self):
        """Distinct result nodes, in document order of first appearance."""
        seen = set()
        result = []
        for item in self.items:
            if isinstance(item, Node) and id(item) not in seen:
                seen.add(id(item))
                result.append(item)
        return result

    def distinct_items(self):
        """Result items with duplicate nodes removed (atomics kept).

        Multi-variable binding tuples repeat the returned node once per
        combination; the interface presents each element once, and the
        study's precision/recall is computed over this presentation.
        """
        seen = set()
        result = []
        for item in self.items:
            if isinstance(item, Node):
                if id(item) not in seen:
                    seen.add(id(item))
                    result.append(item)
            else:
                result.append(item)
        return result

    def values(self):
        """String values of all result items (nodes deduplicated)."""
        atoms = [item for item in self.items if not isinstance(item, Node)]
        return [string_value(node) for node in self.nodes()] + [
            string_value(atom) for atom in atoms
        ]

    def render_feedback(self):
        return self.feedback.render()

    def __repr__(self):
        status = "ok" if self.ok else f"rejected({len(self.errors)} errors)"
        return f"QueryResult({self.sentence[:40]!r}..., {status})"


def _looks_multi_sentence(sentence):
    """True when the input holds several sentences (". Return ...").

    Conservative: a sentence boundary only counts when the next fragment
    opens with a command word, so abbreviations ("W. Stevens") and
    punctuation inside values never trigger it.
    """
    import re

    from repro.core.enums import COMMAND_PHRASES

    parts = [
        part.strip()
        for part in re.split(r"[.!?]\s+", sentence.strip())
        if part.strip()
    ]
    if len(parts) <= 1:
        return False
    return any(
        part.split()[0].lower() in COMMAND_PHRASES for part in parts[1:]
    )


class NaLIX:
    """A generic natural language interface to an XML database.

    Example::

        nalix = NaLIX(database)
        result = nalix.ask("Return the title of every book.")
        if result.ok:
            print(result.values())
        else:
            print(result.render_feedback())   # rephrasing suggestions
    """

    def __init__(self, database, document_name=None, thesaurus=None,
                 use_planner=True, wrap_results=False):
        self.database = database
        self.document_name = document_name or next(iter(database.documents), "doc")
        self.parser = DependencyParser(parser_vocabulary())
        self.expander = TermExpander(database, thesaurus=thesaurus)
        self.validator = Validator(database, self.expander)
        self.translator = Translator(
            database, self.document_name, wrap_results=wrap_results
        )
        self.evaluator = Evaluator(database, use_planner=use_planner)

    # -- pipeline stages (each usable on its own for tests/benches) ------------------

    def parse(self, sentence):
        return self.parser.parse(sentence)

    def classify(self, tree):
        return classify_tree(tree)

    def validate(self, classified_tree):
        return self.validator.validate(classified_tree)

    def translate(self, validated_tree):
        return self.translator.translate(validated_tree)

    # -- the interactive entry point ------------------------------------------------------

    def ask(self, sentence, evaluate=True):
        """Run the full pipeline; never raises on user-input problems."""
        result = QueryResult(sentence)
        if _looks_multi_sentence(sentence):
            # Multi-sentence queries are the paper's future work; reject
            # with guidance rather than silently mis-reading them.
            result.feedback.error(
                "multi-sentence",
                "The query contains more than one sentence.",
                suggestion="Ask one question at a time; NaLIX does not "
                "support multi-sentence queries yet.",
            )
            return result
        started = time.perf_counter()
        try:
            tree = self.parse(sentence)
        except ParseFailure as failure:
            result.feedback.error(
                "parse-failure",
                f"NaLIX could not parse the sentence: {failure}.",
                suggestion="State the query as a single imperative "
                'sentence, e.g. "Return the title of every book."',
            )
            return result

        self.classify(tree)
        result.parse_tree = tree
        feedback = self.validate(tree)
        result.feedback = feedback
        if not feedback.ok:
            return result

        try:
            translation = self.translate(tree)
        except TranslationError as error:
            result.feedback.error(
                "translation-failure",
                f"NaLIX could not map the query to XQuery: {error}.",
                suggestion="Simplify the query, or split it into smaller "
                "questions.",
            )
            return result
        result.translation = translation
        result.xquery_text = translation.text
        result.translation_seconds = time.perf_counter() - started
        result.accepted = True

        if evaluate:
            started = time.perf_counter()
            try:
                # Re-parse the serialized text: the emitted query string is
                # the contract, exactly as NaLIX hands text to Timber.
                expr = parse_xquery(result.xquery_text)
                result.items = self.evaluator.run(expr)
            except XQueryError as error:
                result.accepted = False
                result.feedback.error(
                    "evaluation-failure",
                    f"The generated query could not be evaluated: {error}.",
                    suggestion="Add conditions that relate the query's "
                    "elements to each other.",
                )
            result.evaluation_seconds = time.perf_counter() - started
        return result
