"""Parse-tree validation and interactive feedback (Sec. 4).

Checks a classified parse tree against the grammar NaLIX supports
(Table 6), inserts implicit name tokens (Def. 11), expands name tokens
against the database vocabulary, and generates the query-specific error
and warning messages that drive the paper's interactive reformulation
loop.

A tree that passes (no errors) is annotated and ready for translation:

* every NT carries ``tags`` — the database element/attribute names it
  matched (a disjunction when several match);
* implicit NTs are inserted as parents of the VTs that needed them,
  flagged ``implicit`` and carrying ``implicit_value``;
* pronouns and other soft spots produce warnings, not errors.
"""

from __future__ import annotations

from repro.core.enums import suggest_replacement
from repro.core.feedback import Feedback
from repro.core.semantics import token_children, token_parent
from repro.core.token_types import TokenType, token_type
from repro.nlp.categories import Category
from repro.nlp.parse_tree import ParseNode
from repro.obs.metrics import METRICS

_VALIDATIONS = METRICS.counter("validator.validations")
_IMPLICIT_NTS = METRICS.counter("validator.implicit_nt_inserted")
_EXPANSIONS = METRICS.counter("validator.term_expansions")

#: Grammar production / paper definition quoted per feedback code (the
#: validator's provenance vocabulary; Table 6 numbering).
_PRODUCTION_Q = "Table 6 #1: Q -> RETURN PREDICATE* ORDER_BY?"
_PRODUCTION_RETURN = "Table 6 #2: RETURN -> CMT + (RNP | GVT | PREDICATE)"
_PRODUCTION_PREDICATE = (
    "Table 6 #3-7: PREDICATE -> QT? + (RNP|GVT) + GOT + (RNP|GVT)"
)
_PRODUCTION_IMPLICIT_NT = (
    "Def. 11 + Table 6 #6: PREDICATE -> GOT? + [NT] + GVT"
)
_PRODUCTION_ORDER_BY = "Table 6 #8: ORDER_BY -> OBT + RNP"
_PRODUCTION_VOCABULARY = "Tables 1-2: term vocabulary"
_PRODUCTION_EXPANSION = (
    "Sec. 4: name-token expansion against the database vocabulary"
)
_PRODUCTION_PRONOUN = "Table 2: pronoun marker (approximate anaphora)"


class Validator:
    """Validates classified parse trees against one database."""

    def __init__(self, database, expander):
        self.database = database
        self.expander = expander

    # -- public API ----------------------------------------------------------

    def validate(self, root):
        """Validate and annotate ``root``; returns a :class:`Feedback`.

        The tree is modified in place (implicit NT insertion, tag
        annotation). Callers should only translate when ``feedback.ok``.
        """
        feedback = Feedback()
        self._check_command(root, feedback)
        self._check_unknown_terms(root, feedback)
        self._insert_implicit_name_tokens(root, feedback)
        self._expand_name_tokens(root, feedback)
        self._check_values(root, feedback)
        self._check_operators(root, feedback)
        self._check_order_by(root, feedback)
        self._check_pronouns(root, feedback)
        self._check_grammar(root, feedback)
        root.assign_ids()
        _VALIDATIONS.inc()
        for message in feedback.errors:
            METRICS.inc(f"validator.error.{message.code}")
        for message in feedback.warnings:
            METRICS.inc(f"validator.warning.{message.code}")
        return feedback

    def _check_grammar(self, root, feedback):
        """Advisory Table 6 check: unlicensed attachments are warnings
        (the targeted checks above already reject the hard failures),
        pointing the user at the part of the query that may be read
        differently than intended."""
        from repro.core.grammar import check_grammar

        if token_type(root) != TokenType.CMT:
            return  # already an error from _check_command
        for violation in check_grammar(root):
            feedback.warning(
                "grammar",
                violation.reason + ".",
                suggestion="Rephrase that part of the query if the results "
                "look wrong.",
                node=violation.node,
                production=violation.production,
            )

    # -- individual checks ---------------------------------------------------------

    def _check_command(self, root, feedback):
        if token_type(root) != TokenType.CMT:
            feedback.error(
                "no-command",
                "The query must start with a command NaLIX understands "
                "(for example Return, Find, or List) or a wh-question word.",
                suggestion='Begin the query with "Return ..." or "Find ...".',
                production=_PRODUCTION_Q,
            )
            return
        returnable = [
            child
            for child in token_children(root)
            if token_type(child) in (TokenType.NT, TokenType.FT, TokenType.VT)
        ]
        if not returnable:
            feedback.error(
                "empty-return",
                f'The command "{root.text}" is not followed by anything '
                "to return.",
                suggestion="Name the elements you want, e.g. "
                '"Return the title of every book".',
                production=_PRODUCTION_RETURN,
            )

    def _check_unknown_terms(self, root, feedback):
        for node in root.preorder():
            if token_type(node) != TokenType.UNKNOWN:
                continue
            replacement = suggest_replacement(node.lemma)
            if node.lemma in ("or", "nor", "but"):
                suggestion = (
                    "NaLIX does not support disjunction yet; split the "
                    "request into two separate queries."
                )
            elif replacement:
                suggestion = f'Try replacing "{node.text}" with "{replacement}".'
            else:
                suggestion = f'Try rephrasing the query without "{node.text}".'
            feedback.error(
                "unknown-term",
                f'NaLIX cannot understand the term "{node.text}" '
                "in this query.",
                suggestion=suggestion,
                node=node,
                production=_PRODUCTION_VOCABULARY,
            )

    # -- implicit name tokens (Def. 11) -----------------------------------------------

    def _insert_implicit_name_tokens(self, root, feedback):
        for vt in list(root.preorder()):
            if token_type(vt) != TokenType.VT:
                continue
            if self._needs_implicit_nt(vt):
                self._insert_implicit_nt(vt, feedback)

    def _needs_implicit_nt(self, vt):
        """Def. 11, with the value-driven refinement described in
        DESIGN.md.

        "Adjacent to a RNP" is judged on the raw tree: a VT directly
        under an NT node ("the director is Ron Howard", apposition or
        copula) needs no implicit NT, while one reached through a
        connection marker ("movies directed by Ron Howard") does —
        matching where the paper's Figure 2 inserts node 11.
        """
        raw_parent = vt.parent
        if raw_parent is None:
            return True
        raw_kind = token_type(raw_parent)
        if raw_kind == TokenType.NT:
            return False  # "the director is Ron Howard"
        if raw_kind == TokenType.CMT:
            return False  # returned literal; flagged elsewhere
        parent = token_parent(vt)
        if parent is None:
            return True
        kind = token_type(parent)
        if kind == TokenType.CMT:
            return False
        if raw_kind == TokenType.OT or kind == TokenType.OT:
            # "... after 1991": compatible if the NT above the OT can
            # itself carry this value; otherwise the value names an
            # implicit element ([year] here).
            grandparent = token_parent(parent)
            if grandparent is not None and token_type(grandparent) in (
                TokenType.NT,
                TokenType.FT,
            ):
                return not self._value_compatible(grandparent, vt)
            # OT between a subject NT/VT and this VT ("is the same as").
            siblings = [
                child
                for child in token_children(parent)
                if child is not vt
                and token_type(child) in (TokenType.NT, TokenType.FT, TokenType.VT)
            ]
            return not siblings
        return True  # VT under a bare connection marker

    def _value_compatible(self, nt, vt):
        """Can elements named like ``nt`` hold the exact value of ``vt``?"""
        if token_type(nt) == TokenType.FT:
            return True  # comparisons against aggregates are numeric
        tags = set(self.expander.expand(nt.lemma))
        if not tags:
            return False
        value_tags = set(self.expander.value_tags(vt.value))
        if tags & value_tags:
            return True
        # Inequalities over numbers are compatible with numeric elements
        # even when the exact literal is absent from the database.
        if isinstance(vt.value, (int, float)):
            return any(
                self._tag_is_numeric(tag) for tag in tags
            )
        return False

    def _tag_is_numeric(self, tag):
        nodes = self.database.nodes_with_tag(tag)
        probe = nodes[: 5]
        if not probe:
            return False
        for node in probe:
            text = node.string_value().strip()
            try:
                float(text)
            except ValueError:
                return False
        return True

    def _insert_implicit_nt(self, vt, feedback):
        tags = self.expander.value_tags(vt.value)
        if not tags and isinstance(vt.value, (int, float)):
            tags = sorted(
                tag
                for tag in self.database.tags()
                if self._tag_is_numeric(tag)
            )
        if not tags:
            feedback.error(
                "unknown-value",
                f'No element or attribute in the database has the value '
                f'"{vt.value}".',
                suggestion="Check the spelling of the value, or quote it "
                "exactly as it appears in the database.",
                node=vt,
                production=_PRODUCTION_IMPLICIT_NT,
            )
            return
        implicit = ParseNode(
            f"[{'|'.join(tags).replace('@', '')}]",
            tags[0].lstrip("@"),
            Category.NOUN,
            vt.index,
        )
        implicit.token_type = TokenType.NT
        implicit.classification_rule = (
            "Def. 11: implicit name token inserted for an unattached value"
        )
        implicit.implicit = True
        implicit.implicit_value = vt.value
        implicit.tags = list(tags)
        _IMPLICIT_NTS.inc()
        parent = vt.parent
        position = parent.children.index(vt)
        parent.children[position] = implicit
        implicit.parent = parent
        implicit.attach(vt)

    # -- term expansion --------------------------------------------------------------------

    def _expand_name_tokens(self, root, feedback):
        for node in root.preorder():
            if token_type(node) != TokenType.NT or node.implicit:
                continue
            tags = self.expander.expand(node.lemma)
            node.tags = tags
            if len(tags) > 1:
                # A name token matching several element/attribute names
                # becomes a disjunction (Sec. 4's term expansion).
                _EXPANSIONS.inc()
            if not tags:
                known = ", ".join(
                    tag for tag in self.database.tags()[:12] if not tag.startswith("@")
                )
                feedback.error(
                    "unknown-name",
                    f'No element or attribute in the database matches '
                    f'"{node.text}".',
                    suggestion=f"Elements available include: {known}.",
                    node=node,
                    production=_PRODUCTION_EXPANSION,
                )

    # -- value sanity -------------------------------------------------------------------------

    def _check_values(self, root, feedback):
        for node in root.preorder():
            if token_type(node) != TokenType.VT:
                continue
            parent = token_parent(node)
            if parent is not None and token_type(parent) == TokenType.CMT:
                feedback.error(
                    "returned-value",
                    f'"{node.text}" looks like a value, but the query asks '
                    "to return it directly.",
                    suggestion="Name the kind of element you want instead, "
                    'e.g. "Return the movie whose title is ..."',
                    node=node,
                    production=_PRODUCTION_RETURN,
                )

    def _check_operators(self, root, feedback):
        for node in root.preorder():
            if token_type(node) != TokenType.OT:
                continue
            operands = [
                child
                for child in token_children(node)
                if token_type(child)
                in (TokenType.NT, TokenType.VT, TokenType.FT)
            ]
            parent = token_parent(node)
            parent_is_operand = parent is not None and token_type(parent) in (
                TokenType.NT,
                TokenType.FT,
            )
            if not operands or (len(operands) < 2 and not parent_is_operand):
                feedback.error(
                    "dangling-operator",
                    f'The comparison "{node.text}" is missing something to '
                    "compare.",
                    suggestion="State both sides of the comparison, e.g. "
                    '"... where the price of the book is greater than 50".',
                    node=node,
                    production=_PRODUCTION_PREDICATE,
                )

    def _check_order_by(self, root, feedback):
        for node in root.preorder():
            if token_type(node) != TokenType.OBT:
                continue
            keys = [
                child
                for child in token_children(node)
                if token_type(child) in (TokenType.NT, TokenType.FT)
            ]
            if not keys:
                feedback.warning(
                    "implied-sort-key",
                    f'"{node.text}" does not name a sort key; the returned '
                    "elements themselves will be used.",
                    suggestion='Name the key explicitly, e.g. "sorted by '
                    'title".',
                    node=node,
                    production=_PRODUCTION_ORDER_BY,
                )

    def _check_pronouns(self, root, feedback):
        for node in root.preorder():
            if token_type(node) == TokenType.PM or (
                node.category == Category.PRONOUN
            ):
                feedback.warning(
                    "pronoun",
                    f'The pronoun "{node.text}" may be resolved incorrectly '
                    "(anaphora resolution is approximate).",
                    suggestion="Repeat the element name instead of the "
                    "pronoun if results look wrong.",
                    node=node,
                    production=_PRODUCTION_PRONOUN,
                )
