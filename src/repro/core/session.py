"""Interactive query sessions.

The paper's usage model is a dialogue: the user submits a query, reads
feedback or results, and reformulates. :class:`QuerySession` captures
that dialogue: it tracks every turn, counts reformulation iterations the
way the study does (a turn is a reformulation when the previous turn was
rejected or its results were not accepted by the user), and renders a
transcript.
"""

from __future__ import annotations


class Turn:
    """One submit/response exchange."""

    def __init__(self, number, sentence, result):
        self.number = number
        self.sentence = sentence
        self.result = result

    @property
    def accepted(self):
        return self.result.ok

    def render(self):
        lines = [f"[{self.number}] user: {self.sentence}"]
        if self.result.ok:
            values = self.result.values()
            preview = ", ".join(values[:5])
            if len(values) > 5:
                preview += ", ..."
            lines.append(f"    nalix: {len(values)} result(s): {preview}")
            for warning in self.result.warnings:
                lines.append(f"    nalix: {warning.render()}")
        else:
            for error in self.result.errors:
                lines.append(f"    nalix: {error.render()}")
        return "\n".join(lines)


class QuerySession:
    """A stateful dialogue with one NaLIX instance.

    Example::

        session = QuerySession(nalix)
        result = session.submit("Return every director who has directed "
                                "as many movies as has Ron Howard.")
        if not result.ok:
            print(session.suggestions())      # how to rephrase
        result = session.submit("Return every director, where ...")
        print(session.iterations)             # 1 reformulation
    """

    def __init__(self, nalix):
        self.nalix = nalix
        self.turns = []

    def submit(self, sentence):
        """Run one query; the result is recorded as a turn."""
        result = self.nalix.ask(sentence)
        self.turns.append(Turn(len(self.turns) + 1, sentence, result))
        return result

    # -- introspection ---------------------------------------------------------

    @property
    def last_turn(self):
        return self.turns[-1] if self.turns else None

    @property
    def iterations(self):
        """Reformulations so far: turns after the first (study counting:
        a first-try success is zero iterations)."""
        return max(0, len(self.turns) - 1)

    @property
    def succeeded(self):
        return bool(self.turns) and self.turns[-1].accepted

    def suggestions(self):
        """The rephrasing suggestions from the most recent turn."""
        if not self.turns:
            return []
        return [
            message.suggestion
            for message in self.turns[-1].result.feedback.messages
            if message.suggestion
        ]

    def transcript(self):
        return "\n".join(turn.render() for turn in self.turns)

    def reset(self):
        self.turns = []

    def __repr__(self):
        status = "ok" if self.succeeded else "open"
        return f"QuerySession({len(self.turns)} turns, {status})"
