"""Token and marker types (the paper's Tables 1 and 2)."""


class TokenType:
    """Namespace of token/marker type constants.

    Tokens (Table 1) map to XQuery components; markers (Table 2) carry
    little or no direct semantics but shape attachment and feedback.
    """

    # tokens
    CMT = "CMT"    # command token -> RETURN clause
    OBT = "OBT"    # order-by token -> ORDER BY clause
    FT = "FT"      # function token -> aggregate function
    OT = "OT"      # operator token -> comparison operator
    VT = "VT"      # value token -> literal value
    NT = "NT"      # name token -> basic variable
    NEG = "NEG"    # negation -> not()
    QT = "QT"      # quantifier

    # markers
    CM = "CM"      # connection marker (preposition / non-token verb)
    MM = "MM"      # modifier marker (determiner/adjective)
    PM = "PM"      # pronoun marker
    GM = "GM"      # general marker (auxiliaries, articles, punctuation)

    UNKNOWN = "UNKNOWN"  # unclassifiable term -> validation error

    TOKENS = (CMT, OBT, FT, OT, VT, NT, NEG, QT)
    MARKERS = (CM, MM, PM, GM)


def is_token(node):
    """True if the classified parse node is a token (not a marker)."""
    return getattr(node, "token_type", None) in TokenType.TOKENS


def is_marker(node):
    return getattr(node, "token_type", None) in TokenType.MARKERS


def token_type(node):
    return getattr(node, "token_type", None)
