"""Errors raised by the NaLIX core."""


class NaLIXError(Exception):
    """Base class for core-layer errors."""


class ValidationFailed(NaLIXError):
    """The classified parse tree was rejected; carries the feedback."""

    def __init__(self, feedback):
        super().__init__("; ".join(message.text for message in feedback.errors))
        self.feedback = feedback


class TranslationError(NaLIXError):
    """A validated tree could not be mapped to XQuery (internal bug or an
    unsupported construct that slipped past validation)."""
