"""Semantic analysis of the classified parse tree (Defs. 1–10).

Produces a :class:`SemanticModel`: the name tokens grouped into
variables (Definitions 1, 3, 8), the core tokens (Def. 3), and the
relatedness partition over variables (Defs. 4–6, 9–10) that decides
which variables share an ``mqf`` call.
"""

from __future__ import annotations

from repro.core.enums import VACUOUS_MODIFIERS
from repro.core.token_types import TokenType, token_type


# -- structural helpers over the classified tree ---------------------------------


def is_marker_node(node):
    return token_type(node) in (
        TokenType.CM,
        TokenType.MM,
        TokenType.PM,
        TokenType.GM,
    )


def token_children(node):
    """Direct token children, looking through marker nodes."""
    result = []
    for child in sorted(node.children, key=lambda n: n.index):
        if is_marker_node(child):
            result.extend(token_children(child))
        elif token_type(child) is not None and token_type(child) != TokenType.GM:
            result.append(child)
    return result


def token_parent(node):
    """Nearest token ancestor, looking through marker nodes."""
    ancestor = node.parent
    while ancestor is not None and is_marker_node(ancestor):
        ancestor = ancestor.parent
    return ancestor


def _operand_children(node):
    """Token children that act as operands (NT/VT/FT)."""
    return [
        child
        for child in token_children(node)
        if token_type(child) in (TokenType.NT, TokenType.VT, TokenType.FT)
    ]


def is_sub_parse_tree_root(node):
    """Def. 2: an OT node with at least two (token) children."""
    return token_type(node) == TokenType.OT and len(_operand_children(node)) >= 2


def _transparent_for_direct_relation(node):
    """Def. 4 ignores markers and FT/OT nodes with a single child."""
    if is_marker_node(node):
        return True
    if token_type(node) in (TokenType.FT, TokenType.OT):
        return len(_operand_children(node)) <= 1
    return False


def nt_effective_parent(node):
    """The nearest NT above ``node`` through transparent nodes, or None."""
    ancestor = node.parent
    while ancestor is not None:
        if token_type(ancestor) == TokenType.NT:
            return ancestor
        if not _transparent_for_direct_relation(ancestor):
            return None
        ancestor = ancestor.parent
    return None


def directly_related(a, b):
    """Def. 4: parent-child, ignoring markers and 1-child FT/OT nodes.

    Coordination ("the year and title of each book") extends direct
    relations across conjuncts: a conjunct inherits its partner's
    relations, since grammatically the two form one RNP (Table 6 line 9).
    """
    if nt_effective_parent(a) is b or nt_effective_parent(b) is a:
        return True
    for first, second in ((a, b), (b, a)):
        partner = first.conjunct_of
        if partner is not None and partner is not second:
            if nt_effective_parent(partner) is second:
                return True
            if nt_effective_parent(second) is partner:
                return True
    return False


# -- equivalence and core tokens -----------------------------------------------------


def modifier_signature(node):
    """The equivalence-relevant modifiers of an NT (Def. 1, footnote 4).

    Articles and quantifier tokens are vacuous ("every director" and
    "the director" co-refer); remaining modifier/pronoun markers count
    ("first book" differs from "second book").
    """
    signature = set()
    for child in node.children:
        if token_type(child) in (TokenType.MM, TokenType.PM):
            if child.lemma not in VACUOUS_MODIFIERS:
                signature.add(child.lemma)
    return frozenset(signature)


def equivalent_name_tokens(a, b):
    """Def. 1: name-token equivalence."""
    if a.implicit != b.implicit:
        return False
    if a.implicit:
        value_a = getattr(a, "implicit_value", None)
        value_b = getattr(b, "implicit_value", None)
        return value_a is not None and value_a == value_b
    return a.lemma == b.lemma and modifier_signature(a) == modifier_signature(b)


def _has_nt_descendant(node):
    return any(
        token_type(descendant) == TokenType.NT for descendant in node.descendants()
    )


def find_core_tokens(root):
    """Def. 3: NTs in a sub-parse tree with no NT descendants, closed
    under equivalence."""
    nts = [node for node in root.preorder() if token_type(node) == TokenType.NT]
    sub_parse_roots = [
        node for node in root.preorder() if is_sub_parse_tree_root(node)
    ]
    cores = set()
    for nt in nts:
        inside = any(
            sub_root is nt or nt in set(sub_root.descendants())
            for sub_root in sub_parse_roots
        )
        if inside and not _has_nt_descendant(nt):
            cores.add(id(nt))
    changed = True
    while changed:
        changed = False
        for nt in nts:
            if id(nt) in cores:
                continue
            if any(
                id(core) in cores and equivalent_name_tokens(nt, core)
                for core in nts
            ):
                cores.add(id(nt))
                changed = True
    return [nt for nt in nts if id(nt) in cores]


# -- variables and relatedness --------------------------------------------------------


class Variable:
    """A basic variable: one or more NT nodes bound together."""

    def __init__(self, name, nodes):
        self.name = name
        self.nodes = nodes
        self.is_core = False
        self.tags = []

    @property
    def lemma(self):
        return self.nodes[0].lemma

    @property
    def implicit(self):
        return self.nodes[0].implicit

    def __repr__(self):
        ids = ",".join(str(node.node_id) for node in self.nodes)
        marker = "*" if self.is_core else ""
        return f"${self.name}{marker}({self.lemma}:{ids})"


class SemanticModel:
    """The result of :func:`analyze`."""

    def __init__(self, root):
        self.root = root
        self.name_tokens = [
            node for node in root.preorder() if token_type(node) == TokenType.NT
        ]
        self.core_tokens = find_core_tokens(root)
        self.variables = []
        self.variable_of = {}  # id(node) -> Variable
        self._bind_variables()
        self.related_groups = self._compute_related_groups()

    # -- variable binding (Sec. 3.2.2) ------------------------------------------

    def _bind_variables(self):
        core_ids = {id(node) for node in self.core_tokens}
        clusters = []  # list of node lists
        for node in self.name_tokens:
            placed = None
            for cluster in clusters:
                representative = cluster[0]
                same_core = (
                    id(node) in core_ids
                    and id(representative) in core_ids
                    and equivalent_name_tokens(node, representative)
                )
                if same_core or self._identical(node, representative):
                    placed = cluster
                    break
            if placed is not None:
                placed.append(node)
            else:
                clusters.append([node])

        for number, cluster in enumerate(clusters, start=1):
            variable = Variable(f"v{number}", cluster)
            variable.is_core = any(id(node) in core_ids for node in cluster)
            self.variables.append(variable)
            for node in cluster:
                self.variable_of[id(node)] = variable

    def _identical(self, a, b):
        """Def. 8: identical NTs — merged into one variable."""
        if a is b:
            return True
        if not equivalent_name_tokens(a, b):
            return False
        if directly_related(a, b):
            return False
        for node in (a, b):
            for child in token_children(node):
                if token_type(child) in (TokenType.FT, TokenType.QT):
                    return False
            parent = token_parent(node)
            if parent is not None and token_type(parent) == TokenType.FT:
                return False
        return self._direct_relation_signature(a) == self._direct_relation_signature(b)

    def _direct_relation_signature(self, node):
        """Lemmas of the NTs directly related to ``node`` (Def. 8 (ii),
        approximated by lemma comparison instead of full recursion)."""
        related = set()
        for other in self.name_tokens:
            if other is not node and directly_related(node, other):
                related.add((other.lemma, other.implicit))
        return frozenset(related)

    # -- relatedness (Defs. 4-6, 9-10) ----------------------------------------------

    def _compute_related_groups(self):
        """Partition variables into related groups (one mqf per group)."""
        if not self.core_tokens:
            return [list(self.variables)] if self.variables else []

        parent = {variable.name: variable.name for variable in self.variables}

        def find(name):
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(first, second):
            parent[find(first.name)] = find(second.name)

        nts = self.name_tokens
        for i, a in enumerate(nts):
            for b in nts[i + 1 :]:
                if directly_related(a, b):
                    union(self.variable_of[id(a)], self.variable_of[id(b)])

        groups = {}
        for variable in self.variables:
            groups.setdefault(find(variable.name), []).append(variable)
        return list(groups.values())

    def group_of(self, variable):
        for group in self.related_groups:
            if variable in group:
                return group
        return [variable]

    def core_variable_related_to(self, variable):
        """The core-token variable in ``variable``'s group (Fig. 6's
        'core'), or None."""
        if variable.is_core:
            return None
        for member in self.group_of(variable):
            if member.is_core and member is not variable:
                return member
        return None

    def directly_related_variables(self, variable):
        """Def. 9 projected onto variables."""
        related = []
        for other in self.variables:
            if other is variable:
                continue
            if any(
                directly_related(a, b)
                for a in variable.nodes
                for b in other.nodes
            ):
                related.append(other)
        return related


def analyze(root):
    """Run the full semantic analysis on a classified, validated tree."""
    return SemanticModel(root)
