"""The supported grammar (the paper's Table 6) as a checkable object.

Table 6 licenses *attachment relations* between token types ("+"
represents attachment). This module checks a classified parse tree
against those productions and reports each unlicensed attachment with
the production context, giving the validator precise diagnostics:

    1.  Q         -> RETURN PREDICATE* ORDER_BY?
    2.  RETURN    -> CMT + (RNP | GVT | PREDICATE)
    3-7. PREDICATE-> QT? + ((RNP|GVT) + GOT + (RNP|GVT))
                   | (GOT? + RNP + GVT) | (GOT? + GVT + RNP)
                   | (GOT? + [NT] + GVT) | RNP
    8.  ORDER_BY  -> OBT + RNP
    9.  RNP       -> NT | (QT+RNP) | (FT+RNP) | (RNP and RNP)
    10. GOT       -> OT | (NEG+OT) | (GOT and GOT)
    11. GVT       -> VT | (GVT and GVT)

Markers are transparent throughout (attachment ignores them).
"""

from __future__ import annotations

from repro.core.semantics import token_parent
from repro.core.token_types import TokenType, token_type


class GrammarViolation:
    """One unlicensed attachment, with the production it violates."""

    def __init__(self, node, reason, production=None):
        self.node = node
        self.reason = reason
        self.production = production

    def __repr__(self):
        return f"GrammarViolation({self.node.text!r}: {self.reason})"


# For each token type: the token types its (token-)parent may have.
# ``None`` in the set means "may be the root".
_ALLOWED_PARENTS = {
    TokenType.CMT: {None},
    TokenType.NT: {
        TokenType.CMT,   # RETURN -> CMT + RNP
        TokenType.NT,    # RNP chains ("title of movie")
        TokenType.OT,    # predicate operand
        TokenType.FT,    # FT + RNP
        TokenType.OBT,   # ORDER_BY -> OBT + RNP
    },
    TokenType.VT: {
        TokenType.NT,    # RNP + GVT, [NT] + GVT
        TokenType.OT,    # GOT + GVT
        TokenType.CMT,   # caught separately with a better message
    },
    TokenType.FT: {
        TokenType.CMT,
        TokenType.OT,
        TokenType.NT,    # Fig. 5: NT + connection marker + FT
    },
    TokenType.OT: {
        TokenType.CMT,   # clause-level predicate
        TokenType.NT,    # restrictive comparison on an RNP
        TokenType.FT,
    },
    TokenType.OBT: {TokenType.CMT},
    TokenType.QT: {TokenType.NT, TokenType.FT, TokenType.CMT},
    TokenType.NEG: {TokenType.OT, TokenType.NT, TokenType.CMT},
}

#: The Table 6 production each token type's attachment is licensed by —
#: quoted in validator provenance so feedback cites the grammar line
#: that failed, not just the word.
PRODUCTIONS = {
    TokenType.CMT: "Table 6 #1: Q -> RETURN PREDICATE* ORDER_BY?",
    TokenType.NT: "Table 6 #9: RNP -> NT | QT+RNP | FT+RNP | RNP and RNP",
    TokenType.VT: "Table 6 #11: GVT -> VT | GVT and GVT",
    TokenType.FT: "Table 6 #9: RNP -> FT+RNP",
    TokenType.OT: "Table 6 #10: GOT -> OT | NEG+OT | GOT and GOT",
    TokenType.OBT: "Table 6 #8: ORDER_BY -> OBT+RNP",
    TokenType.QT: "Table 6 #9: RNP -> QT+RNP",
    TokenType.NEG: "Table 6 #10: GOT -> NEG+OT",
}

_HUMAN_NAMES = {
    TokenType.CMT: "command",
    TokenType.NT: "name",
    TokenType.VT: "value",
    TokenType.FT: "function",
    TokenType.OT: "comparison",
    TokenType.OBT: "sort phrase",
    TokenType.QT: "quantifier",
    TokenType.NEG: "negation",
}

#: Public aliases consumed by the pipeline-consistency linter
#: (:mod:`repro.analysis.consistency`), which cross-checks these tables
#: against the classifier and lexicon at import time.
ALLOWED_PARENTS = _ALLOWED_PARENTS
HUMAN_NAMES = _HUMAN_NAMES


def check_grammar(root):
    """All grammar violations in a classified tree (empty when valid).

    UNKNOWN nodes are skipped — the validator reports those with their
    own, more helpful messages.
    """
    violations = []
    root_type = token_type(root)
    if root_type != TokenType.CMT:
        violations.append(
            GrammarViolation(
                root,
                "the query does not start with a command (Q -> RETURN)",
                production=PRODUCTIONS[TokenType.CMT],
            )
        )
    for node in root.preorder():
        kind = token_type(node)
        if kind not in _ALLOWED_PARENTS or node is root:
            continue
        parent = token_parent(node)
        parent_kind = token_type(parent) if parent is not None else None
        if parent_kind == TokenType.UNKNOWN:
            continue  # the unknown term is the real problem
        if parent_kind not in _ALLOWED_PARENTS[kind]:
            attached = (
                f'attached to the {_HUMAN_NAMES.get(parent_kind, "unknown")} '
                f'"{parent.text}"'
                if parent is not None
                else "attached to nothing"
            )
            violations.append(
                GrammarViolation(
                    node,
                    f'the {_HUMAN_NAMES[kind]} "{node.text}" cannot be '
                    f"{attached} in the supported grammar",
                    production=PRODUCTIONS.get(kind),
                )
            )
    return violations


def conforms(root):
    """True when the classified tree is inside the Table 6 grammar."""
    return not check_grammar(root)
