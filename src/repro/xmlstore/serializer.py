"""XML serialization: compact and pretty-printed forms.

``serialize`` produces a string that round-trips through
:func:`repro.xmlstore.parser.parse_fragment` back to an equivalent tree;
the property-based tests in ``tests/xmlstore`` verify this invariant.
"""

from __future__ import annotations

from repro.xmlstore.model import ElementNode, TextNode


def escape_text(text):
    """Escape character data for element content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text):
    """Escape an attribute value for a double-quoted attribute."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _open_tag(element):
    parts = [element.tag]
    for attribute in element.attributes:
        parts.append(f'{attribute.name}="{escape_attribute(attribute.value)}"')
    return "<" + " ".join(parts)


def serialize(node, parts=None):
    """Serialize an element (or text node) to a compact string."""
    own_buffer = parts is None
    if own_buffer:
        parts = []
    if isinstance(node, TextNode):
        parts.append(escape_text(node.text))
    elif isinstance(node, ElementNode):
        open_tag = _open_tag(node)
        if node.children:
            parts.append(open_tag + ">")
            for child in node.children:
                serialize(child, parts)
            parts.append(f"</{node.tag}>")
        else:
            parts.append(open_tag + "/>")
    else:
        raise TypeError(f"cannot serialize {type(node).__name__}")
    if own_buffer:
        return "".join(parts)
    return None


def to_pretty_string(node, indent="  ", _level=0, parts=None):
    """Serialize with indentation for human inspection.

    Elements whose content is a single text node are kept on one line
    (``<title>Traffic</title>``); mixed or element content is indented.
    """
    own_buffer = parts is None
    if own_buffer:
        parts = []
    pad = indent * _level
    if isinstance(node, TextNode):
        parts.append(f"{pad}{escape_text(node.text)}\n")
    elif isinstance(node, ElementNode):
        open_tag = _open_tag(node)
        if not node.children:
            parts.append(f"{pad}{open_tag}/>\n")
        elif len(node.children) == 1 and isinstance(node.children[0], TextNode):
            text = escape_text(node.children[0].text)
            parts.append(f"{pad}{open_tag}>{text}</{node.tag}>\n")
        else:
            parts.append(f"{pad}{open_tag}>\n")
            for child in node.children:
                to_pretty_string(child, indent, _level + 1, parts)
            parts.append(f"{pad}</{node.tag}>\n")
    else:
        raise TypeError(f"cannot serialize {type(node).__name__}")
    if own_buffer:
        return "".join(parts)
    return None
