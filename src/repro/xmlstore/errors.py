"""Errors raised by the XML substrate."""


class XMLError(Exception):
    """Base class for all errors raised by :mod:`repro.xmlstore`."""


class XMLParseError(XMLError):
    """Raised when a document is not well-formed.

    Carries the character ``position`` in the input (0-based) and the
    1-based ``line``/``column`` derived from it, so error messages can
    point at the offending character.
    """

    def __init__(self, message, position=None, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}, column {column}"
        super().__init__(f"{message}{location}")
        self.position = position
        self.line = line
        self.column = column
