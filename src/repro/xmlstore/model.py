"""Ordered, parent-linked XML tree model.

The model deliberately mirrors what a native XML database (Timber, in the
paper) keeps per node: a preorder identifier, the preorder identifier of
the last node in its subtree, and its depth. Those three integers are
enough to answer every structural question the upper layers ask
(ancestor/descendant tests in O(1), LCA by parent walking, subtree range
scans), which is what makes the MQF structural join and the Meet operator
efficient.
"""

from __future__ import annotations


class Node:
    """Base class of all tree nodes.

    Attributes:
        parent: The parent :class:`ElementNode`, or ``None`` for a root.
        node_id: Preorder position in the document, assigned by
            :meth:`Document.reindex`. ``-1`` until indexed.
        depth: Distance from the document root (root has depth 0).
        subtree_end: The largest ``node_id`` in this node's subtree;
            equals ``node_id`` for leaves.
    """

    __slots__ = ("parent", "node_id", "depth", "subtree_end")

    def __init__(self):
        self.parent = None
        self.node_id = -1
        self.depth = -1
        self.subtree_end = -1

    def is_ancestor_of(self, other):
        """Return True if this node is a proper ancestor of ``other``."""
        return self.node_id < other.node_id <= self.subtree_end

    def is_descendant_of(self, other):
        """Return True if this node is a proper descendant of ``other``."""
        return other.is_ancestor_of(self)

    def ancestors(self):
        """Yield proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self):
        """Return the topmost node reachable through parent links."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node


class TextNode(Node):
    """A run of character data inside an element."""

    __slots__ = ("text",)

    def __init__(self, text):
        super().__init__()
        self.text = text

    def string_value(self):
        return self.text

    def __repr__(self):
        snippet = self.text if len(self.text) <= 24 else self.text[:21] + "..."
        return f"TextNode({snippet!r})"


class AttributeNode(Node):
    """An attribute. Modelled as a node so queries can return attributes.

    Attribute nodes take part in the preorder numbering (immediately after
    their owner element, before its children), so structural predicates
    treat them like very shallow children — the convention Timber and the
    XPath data model share.
    """

    __slots__ = ("name", "value")

    def __init__(self, name, value):
        super().__init__()
        self.name = name
        self.value = value

    def string_value(self):
        return self.value

    @property
    def tag(self):
        """Attributes answer to ``tag`` so tag indexes can cover them."""
        return "@" + self.name

    def __repr__(self):
        return f"AttributeNode({self.name}={self.value!r})"


class ElementNode(Node):
    """An element with ordered children and attributes."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag, attributes=None, children=None):
        super().__init__()
        self.tag = tag
        self.attributes = []
        self.children = []
        for name, value in (attributes or {}).items():
            self.set_attribute(name, value)
        for child in children or []:
            self.append(child)

    # -- construction -----------------------------------------------------

    def append(self, child):
        """Attach ``child`` (element or text node) as the last child."""
        child.parent = self
        self.children.append(child)
        return child

    def append_element(self, tag, text=None, attributes=None):
        """Convenience: create, attach and return a child element."""
        element = ElementNode(tag, attributes=attributes)
        if text is not None:
            element.append(TextNode(str(text)))
        return self.append(element)

    def set_attribute(self, name, value):
        """Set (or replace) an attribute; returns the attribute node."""
        for existing in self.attributes:
            if existing.name == name:
                existing.value = str(value)
                return existing
        attribute = AttributeNode(name, str(value))
        attribute.parent = self
        self.attributes.append(attribute)
        return attribute

    def get_attribute(self, name, default=None):
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute.value
        return default

    # -- navigation -------------------------------------------------------

    def child_elements(self, tag=None):
        """Return child elements, optionally filtered by tag."""
        return [
            child
            for child in self.children
            if isinstance(child, ElementNode) and (tag is None or child.tag == tag)
        ]

    def iter_descendants(self):
        """Yield all descendant nodes (elements, attributes, text) in preorder."""
        for attribute in self.attributes:
            yield attribute
        for child in self.children:
            yield child
            if isinstance(child, ElementNode):
                yield from child.iter_descendants()

    def iter_descendant_elements(self):
        for child in self.children:
            if isinstance(child, ElementNode):
                yield child
                yield from child.iter_descendant_elements()

    def string_value(self):
        """Concatenated text of all descendant text nodes (XPath semantics)."""
        parts = []
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, TextNode):
                parts.append(node.text)
            elif isinstance(node, ElementNode):
                stack.extend(reversed(node.children))
        return "".join(parts)

    def __repr__(self):
        return f"ElementNode(<{self.tag}> id={self.node_id})"


class Document:
    """A rooted XML document with preorder numbering.

    Build a tree of :class:`ElementNode`/:class:`TextNode`, hand the root
    to the constructor, and the document indexes it. After any structural
    mutation, call :meth:`reindex` before relying on node ids again.
    """

    def __init__(self, root, name="doc"):
        if not isinstance(root, ElementNode):
            raise TypeError("document root must be an ElementNode")
        self.root = root
        self.name = name
        self.nodes = []
        self.reindex()

    def reindex(self):
        """(Re)assign preorder ids, depths and subtree extents."""
        self.nodes = []
        self._number(self.root, 0)
        return self

    def _number(self, node, depth):
        node.node_id = len(self.nodes)
        node.depth = depth
        self.nodes.append(node)
        if isinstance(node, ElementNode):
            for attribute in node.attributes:
                attribute.node_id = len(self.nodes)
                attribute.depth = depth + 1
                attribute.subtree_end = attribute.node_id
                self.nodes.append(attribute)
            for child in node.children:
                self._number(child, depth + 1)
        node.subtree_end = len(self.nodes) - 1

    def node_count(self):
        return len(self.nodes)

    def iter_elements(self):
        """Yield every element in the document in preorder."""
        for node in self.nodes:
            if isinstance(node, ElementNode):
                yield node

    def __repr__(self):
        return f"Document({self.name!r}, {self.node_count()} nodes)"


def lowest_common_ancestor(a, b):
    """Return the lowest common ancestor of two nodes in the same document.

    Attribute and text nodes are treated as children of their owner
    element. The LCA of a node with itself is the node.
    """
    if a is b:
        return a
    while a.depth > b.depth:
        a = a.parent
    while b.depth > a.depth:
        b = b.parent
    while a is not b:
        a = a.parent
        b = b.parent
        if a is None or b is None:
            raise ValueError("nodes do not share a root")
    return a
