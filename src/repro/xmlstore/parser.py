"""A from-scratch, dependency-free XML parser.

Supports the subset of XML 1.0 that real bibliographic/movie documents
use: elements, attributes (single- or double-quoted), character data,
CDATA sections, comments, processing instructions, the XML declaration,
an (ignored) DOCTYPE, the five predefined entities, and decimal/hex
character references. Namespace prefixes are kept verbatim as part of
tag names.

Whitespace-only text between elements is dropped by default (the
databases we model are data-centric, not document-centric); pass
``keep_whitespace=True`` to preserve it.
"""

from __future__ import annotations

from repro.obs.metrics import METRICS
from repro.xmlstore.errors import XMLParseError
from repro.xmlstore.model import Document, ElementNode, TextNode

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Character scanner with position tracking for error reporting."""

    def __init__(self, text):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def error(self, message):
        line = self.text.count("\n", 0, self.pos) + 1
        last_newline = self.text.rfind("\n", 0, self.pos)
        column = self.pos - last_newline
        return XMLParseError(message, position=self.pos, line=line, column=column)

    def at_end(self):
        return self.pos >= self.length

    def peek(self, offset=0):
        index = self.pos + offset
        if index < self.length:
            return self.text[index]
        return ""

    def startswith(self, prefix):
        return self.text.startswith(prefix, self.pos)

    def advance(self, count=1):
        self.pos += count

    def skip_whitespace(self):
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, literal):
        if not self.startswith(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_until(self, terminator):
        index = self.text.find(terminator, self.pos)
        if index < 0:
            raise self.error(f"unterminated construct; expected {terminator!r}")
        chunk = self.text[self.pos : index]
        self.pos = index + len(terminator)
        return chunk

    def read_name(self):
        if self.at_end() or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        start = self.pos
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]


def _decode_entities(text, scanner):
    """Resolve entity and character references in ``text``."""
    if "&" not in text:
        return text
    parts = []
    pos = 0
    while True:
        amp = text.find("&", pos)
        if amp < 0:
            parts.append(text[pos:])
            break
        parts.append(text[pos:amp])
        semi = text.find(";", amp)
        if semi < 0:
            raise scanner.error("unterminated entity reference")
        entity = text[amp + 1 : semi]
        if entity.startswith("#x") or entity.startswith("#X"):
            parts.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            parts.append(chr(int(entity[1:])))
        elif entity in _PREDEFINED_ENTITIES:
            parts.append(_PREDEFINED_ENTITIES[entity])
        else:
            raise scanner.error(f"unknown entity &{entity};")
        pos = semi + 1
    return "".join(parts)


def _parse_attributes(scanner):
    attributes = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/", "?", ""):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        raw = scanner.read_until(quote)
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}")
        attributes[name] = _decode_entities(raw, scanner)


def _skip_misc(scanner):
    """Skip whitespace, comments, PIs, XML declaration and DOCTYPE."""
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<!--"):
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.startswith("<?"):
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.startswith("<!DOCTYPE"):
            # Consume through the matching '>', honouring an internal subset.
            depth = 0
            while not scanner.at_end():
                ch = scanner.peek()
                scanner.advance()
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == ">" and depth <= 0:
                    break
            else:
                raise scanner.error("unterminated DOCTYPE")
        else:
            return


def _parse_element(scanner, keep_whitespace):
    scanner.expect("<")
    tag = scanner.read_name()
    attributes = _parse_attributes(scanner)
    element = ElementNode(tag, attributes=attributes)
    scanner.skip_whitespace()
    if scanner.startswith("/>"):
        scanner.advance(2)
        return element
    scanner.expect(">")
    _parse_content(scanner, element, keep_whitespace)
    closing = scanner.read_name()
    if closing != tag:
        raise scanner.error(f"mismatched end tag </{closing}>; expected </{tag}>")
    scanner.skip_whitespace()
    scanner.expect(">")
    return element


def _parse_content(scanner, element, keep_whitespace):
    text_parts = []

    def flush_text():
        if not text_parts:
            return
        text = "".join(text_parts)
        text_parts.clear()
        if keep_whitespace or text.strip():
            element.append(TextNode(text))

    while True:
        if scanner.at_end():
            raise scanner.error(f"unterminated element <{element.tag}>")
        if scanner.startswith("</"):
            flush_text()
            scanner.advance(2)
            return
        if scanner.startswith("<!--"):
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.startswith("<![CDATA["):
            scanner.advance(9)
            text_parts.append(scanner.read_until("]]>"))
        elif scanner.startswith("<?"):
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.peek() == "<":
            flush_text()
            element.append(_parse_element(scanner, keep_whitespace))
        else:
            start = scanner.pos
            next_tag = scanner.text.find("<", start)
            if next_tag < 0:
                raise scanner.error(f"unterminated element <{element.tag}>")
            raw = scanner.text[start:next_tag]
            scanner.pos = next_tag
            text_parts.append(_decode_entities(raw, scanner))


def parse_fragment(text, keep_whitespace=False):
    """Parse ``text`` and return the root :class:`ElementNode`."""
    scanner = _Scanner(text)
    _skip_misc(scanner)
    if scanner.peek() != "<":
        raise scanner.error("document must start with an element")
    root = _parse_element(scanner, keep_whitespace)
    _skip_misc(scanner)
    if not scanner.at_end():
        raise scanner.error("content after document root")
    return root


def parse_document(text, name="doc", keep_whitespace=False):
    """Parse ``text`` into an indexed :class:`Document`."""
    document = Document(
        parse_fragment(text, keep_whitespace=keep_whitespace), name=name
    )
    METRICS.inc("xmlstore.parse.documents")
    METRICS.observe("xmlstore.parse.characters", len(text))
    METRICS.observe("xmlstore.parse.nodes", document.node_count())
    METRICS.set_gauge("xmlstore.parse.last_nodes", document.node_count())
    return document
