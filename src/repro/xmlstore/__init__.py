"""In-memory XML substrate: node model, parser, serializer.

This package is the storage-model foundation of the reproduction. It
provides an ordered, parent-linked XML tree whose nodes carry preorder
identifiers and depths, which is what the structural machinery upstream
(LCA computation, the MQF structural join, the Meet keyword baseline)
operates on.

The parser is written from scratch (no ``xml.etree`` dependency) and
covers the XML subset any realistic bibliographic/movie document uses:
elements, attributes, character data, CDATA, comments, processing
instructions, the XML declaration, and the five predefined entities plus
numeric character references.
"""

from repro.xmlstore.errors import XMLParseError
from repro.xmlstore.model import (
    AttributeNode,
    Document,
    ElementNode,
    Node,
    TextNode,
    lowest_common_ancestor,
)
from repro.xmlstore.parser import parse_document, parse_fragment
from repro.xmlstore.serializer import serialize, to_pretty_string

__all__ = [
    "AttributeNode",
    "Document",
    "ElementNode",
    "Node",
    "TextNode",
    "XMLParseError",
    "lowest_common_ancestor",
    "parse_document",
    "parse_fragment",
    "serialize",
    "to_pretty_string",
]
