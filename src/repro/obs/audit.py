"""JSONL query audit trail.

One line per query, modelled on production NLQ audit tables: what was
asked, what the system decided (``ok`` / ``rejected`` / ``failed``),
which error categories fired, the emitted XQuery text, the result
count, per-stage wall times taken from the query's trace, and the
query's memory account (``peak_rss_bytes`` always; ``alloc_bytes`` /
``peak_alloc_bytes`` when the query ran with tracemalloc tracking on).

The log is append-only and flushed per record, so a crash loses at most
the in-flight query.  ``audit_entry`` is duck-typed over
``QueryResult`` (this module imports nothing from the rest of the
package), and :func:`iter_records` / :func:`read_audit_log` round-trip
the file back into dicts for analysis.  Reading is hardened for logs
that crossed a crash or a rotation boundary: :func:`iter_records`
transparently chains the rotated ``<path>.1`` file first (so records
come back in write order), tolerates a truncated final line (the one
write a crash can lose), and skips corrupt interior rows while
counting them — every consumer (``repro stats``, ``repro replay``)
shares this one parser instead of ad-hoc ``json.loads`` loops.

Thread safety: one :class:`AuditLog` may be shared by concurrent
``NaLIX.ask`` calls (the ``repro serve`` worker threads all record into
the same file).  ``record`` serializes the whole rotate-check + write +
flush sequence under a lock and writes each record as a single
``write()`` call, so concurrent queries can never interleave fragments
of two JSONL lines or race the rotation rename.
"""

from __future__ import annotations

import json
import os
import time
from repro.analysis.racecheck import named_lock

#: Pipeline stage span names recorded per audit entry.  The two
#: ``evaluate-*`` stages are the graceful-degradation hops; they only
#: appear in traces of degraded queries.
STAGES = ("parse", "classify", "validate", "translate", "analyze",
          "xquery-parse", "evaluate", "evaluate-naive", "evaluate-keyword")


def audit_entry(result, actor=None, extra=None):
    """Build the audit record (a plain dict) for one query result.

    ``extra`` (an optional dict) is merged into the record last; the
    serving layer uses it to stamp access-log fields — tenant, endpoint,
    request id, HTTP status — onto the same JSONL trail.
    """
    entry = {
        "timestamp": time.time(),
        "sentence": result.sentence,
        "status": result.status,
        "errors": [message.code for message in result.errors],
        "warnings": [message.code for message in result.warnings],
        "xquery": result.xquery_text,
        "results": len(result.items),
    }
    answer_digest = getattr(result, "answer_digest", None)
    if answer_digest is not None:
        entry["answer_digest"] = answer_digest
    error_class = getattr(result, "error_class", None)
    if error_class is not None:
        entry["error_class"] = error_class
        entry["retryable"] = bool(getattr(result, "retryable", False))
    degradation_path = getattr(result, "degradation_path", None)
    if degradation_path:
        entry["degradation_path"] = list(degradation_path)
    memory = getattr(result, "memory", None)
    if memory is not None:
        # Peak RSS is recorded for every query; the traced-allocation
        # total only exists when the query ran with memory tracking on.
        entry["peak_rss_bytes"] = memory.peak_rss_bytes
        if memory.alloc_bytes is not None:
            entry["alloc_bytes"] = memory.alloc_bytes
            entry["peak_alloc_bytes"] = memory.peak_alloc_bytes
    trace = getattr(result, "trace", None)
    if trace is not None:
        entry["total_seconds"] = trace.total_seconds()
        entry["stage_seconds"] = {
            stage: seconds
            for stage in STAGES
            if (seconds := trace.stage_seconds(stage)) > 0.0
        }
    provenance = getattr(result, "provenance", None)
    if provenance is not None:
        summary = provenance.summary()
        if summary:
            entry["provenance"] = summary
    analysis = getattr(result, "analysis", None)
    if analysis is not None and analysis.findings:
        # Static-analysis findings (repro.analysis): counts plus the
        # rule ids that fired, so failures are greppable by rule.
        entry["analysis"] = analysis.summary()
    if actor is not None:
        entry["actor"] = actor
    if extra:
        entry.update(extra)
    return entry


class AuditLog:
    """Append-only JSONL writer; usable as a context manager.

    ``max_bytes`` (optional) turns on size-based rotation: when
    appending a record would grow the file past the limit, the current
    file is renamed to ``<path>.1`` (replacing any previous rollover)
    and a fresh file is started — the simplest rotation that bounds
    disk use at roughly twice ``max_bytes``.

    ``record`` and ``close`` are thread-safe (see the module docstring).
    """

    def __init__(self, path, actor=None, max_bytes=None):
        self.path = path
        self.actor = actor
        self.max_bytes = max_bytes
        self._handle = None
        self._lock = named_lock("obs.audit")

    def record(self, result, extra=None):
        """Append one audit line for ``result`` and flush.

        ``extra`` fields are merged into the record (see
        :func:`audit_entry`).  The entire check-rotate-write-flush
        sequence holds the log's lock, so records from concurrent
        threads land whole, one per line, in some serial order.
        """
        entry = audit_entry(result, actor=self.actor, extra=extra)
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            if self.max_bytes is not None:
                self._rotate_if_needed(len(line.encode("utf-8")))
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()
        return entry

    def record_event(self, event, **fields):
        """Append one non-query event line (watchdog dumps, ops notes).

        The entry carries ``event`` (a short kebab-case kind, e.g.
        ``watchdog-stuck``), a timestamp, the log's actor, and any
        extra fields — same file, same rotation, same thread-safety as
        query records, so one JSONL trail tells the whole story.
        """
        entry = {"timestamp": time.time(), "event": event}
        if self.actor is not None:
            entry["actor"] = self.actor
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            if self.max_bytes is not None:
                self._rotate_if_needed(len(line.encode("utf-8")))
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()
        return entry

    def _rotate_if_needed(self, incoming_bytes):
        if self._handle is not None:
            current = self._handle.tell()
        elif os.path.exists(self.path):
            current = os.path.getsize(self.path)
        else:
            current = 0
        if current and current + incoming_bytes > self.max_bytes:
            self._close_handle()
            os.replace(self.path, self.path + ".1")

    def _close_handle(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self):
        with self._lock:
            self._close_handle()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()

    def __repr__(self):
        return f"AuditLog({self.path!r})"


class ReadStats:
    """Counters from one :func:`iter_records` pass.

    ``records`` lines parsed, ``skipped`` corrupt rows dropped,
    ``truncated`` 1 when the final line was a partial write, ``files``
    files read (2 when the rotated ``.1`` was chained).
    """

    __slots__ = ("records", "skipped", "truncated", "files")

    def __init__(self):
        self.records = 0
        self.skipped = 0
        self.truncated = 0
        self.files = 0

    def __repr__(self):
        return (
            f"ReadStats(records={self.records}, skipped={self.skipped}, "
            f"truncated={self.truncated}, files={self.files})"
        )


def iter_records(path, rotated=True, stats=None):
    """Yield records from a JSONL audit/access log, hardened.

    The one parser every log consumer shares:

    * with ``rotated=True`` the rotation sibling ``<path>.1`` is read
      first when it exists, so records come back in write order across
      the rollover;
    * a truncated final line — the single in-flight write a crash or a
      live scrape can lose, recognizable by the missing trailing
      newline — is tolerated silently (counted in ``stats.truncated``);
    * any other corrupt row is skipped, counted in ``stats.skipped``.

    Pass a :class:`ReadStats` as ``stats`` to observe the counters
    (the generator mutates it as it goes).
    """
    if stats is None:
        stats = ReadStats()
    paths = []
    if rotated and os.path.exists(path + ".1"):
        paths.append(path + ".1")
    if os.path.exists(path) or not paths:
        paths.append(path)
    for position, file_path in enumerate(paths):
        final_file = position == len(paths) - 1
        with open(file_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        stats.files += 1
        lines = text.split("\n")
        complete = text.endswith("\n")
        for line_number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if (final_file and not complete
                        and line_number == len(lines) - 1):
                    stats.truncated += 1
                else:
                    stats.skipped += 1
                continue
            stats.records += 1
            yield record


def read_audit_log(path, rotated=False, stats=None):
    """Parse a JSONL audit file back into a list of dicts.

    A list-building wrapper over :func:`iter_records`.  ``rotated``
    defaults off to preserve the historical contract (exactly the file
    named); pass ``rotated=True`` to chain ``<path>.1`` first.
    """
    return list(iter_records(path, rotated=rotated, stats=stats))
