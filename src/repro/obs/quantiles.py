"""Shared order statistics: nearest-rank percentiles and MAD.

Every percentile in the repo — histogram summaries, the sliding
latency window, the ``stats`` CLI table, and the benchmark harness —
goes through :func:`nearest_rank`, so they all agree on what "p95"
means.  Before this module existed each call site carried its own
``ordered[int(fraction * n)]`` copy, which reads one element *high*
whenever ``fraction * n`` lands on an integer (the p50 of four samples
came back as the third-smallest, and the p95 of a 20-sample window as
the maximum), so small benchmark repeats reported biased percentiles.

:func:`median_abs_deviation` is the robust spread estimate used by the
perf-regression watchdog (:mod:`repro.obs.regression`): unlike the
standard deviation it ignores a single wild outlier run, which is
exactly the noise profile of wall-clock benchmarks on shared CI
machines.
"""

from __future__ import annotations

import math


def nearest_rank(samples, fraction):
    """The nearest-rank percentile of ``samples`` (any iterable).

    Standard definition: the smallest value such that at least
    ``fraction`` of the samples are less than or equal to it, i.e.
    ``sorted(samples)[ceil(fraction * n) - 1]``.  ``fraction`` is in
    ``[0, 1]``; returns 0.0 for an empty sample set.  ``samples`` need
    not be pre-sorted.
    """
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = math.ceil(fraction * len(ordered))
    return ordered[min(len(ordered) - 1, max(rank - 1, 0))]


def median(samples):
    """The nearest-rank median (lower of the two middles for even n)."""
    return nearest_rank(samples, 0.5)


def median_abs_deviation(samples):
    """Median of absolute deviations from the median (0.0 when empty).

    A robust spread estimate: one outlier among five benchmark repeats
    moves the MAD far less than it moves the standard deviation.
    """
    values = list(samples)
    if not values:
        return 0.0
    center = median(values)
    return median(abs(value - center) for value in values)
