"""Per-query memory accounting: tracemalloc deltas and peak RSS.

Two cost tiers, because the two signals cost wildly different amounts:

* **Peak RSS** (``resource.getrusage``) is a couple of microseconds, so
  every ``ask`` records it unconditionally — each query result and
  audit record carries ``peak_rss_bytes``, the process high-water mark
  after the query finished.
* **Allocation tracking** (``tracemalloc``) multiplies allocation cost
  by 2–4×, so it is opt-in: ``ask(..., memory=True)``, the ``--memory``
  CLI flag, or a context-wide :func:`activate_memory_tracking` block.
  When enabled, a :class:`MemoryTracker` snapshots the traced heap
  around every pipeline-stage span (``alloc_bytes`` /
  ``peak_alloc_bytes`` span attributes), accumulates per-stage deltas,
  and finishes with a top-N allocation-site table that ``explain``
  renders alongside the plan statistics.

``tracemalloc`` is process-global, so concurrent trackers are
refcounted: the first ``start()`` begins tracing (unless something else
already did), the last ``stop()`` ends it.  On platforms without the
``resource`` module (Windows) RSS reads degrade to 0 rather than
failing — the tracker never raises into the query path.

Concurrency caveat: the traced heap is one process-wide number, so when
several *tracked* queries run at once (``repro serve`` with
``--memory``-style activation), per-stage deltas attribute the whole
process's allocations to whichever stage happened to be measuring —
the numbers are blended, not wrong per line, and the refcount keeps
start/stop correct.  Peak RSS is likewise process-global by nature.
For per-query isolation under concurrency, track one query at a time;
the serving layer leaves allocation tracking off by default for
exactly this reason.
"""

from __future__ import annotations

import sys
import tracemalloc
from contextvars import ContextVar
from repro.analysis.racecheck import named_lock

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

#: Allocation sites kept in the top-N table.
DEFAULT_TOP_SITES = 10


def peak_rss_bytes():
    """The process peak-RSS high-water mark in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the value
    is monotonic for the process lifetime, so per-query growth is the
    difference between readings, and "after" is the interesting number.
    """
    if resource is None:
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(usage)
    return int(usage) * 1024


class MemorySpec:
    """Memory-tracking parameters, coercible from ``memory=``."""

    __slots__ = ("top_sites",)

    def __init__(self, top_sites=DEFAULT_TOP_SITES):
        self.top_sites = top_sites

    @classmethod
    def coerce(cls, value):
        """``True`` / a spec -> :class:`MemorySpec`; falsy -> ``None``."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"memory must be bool or MemorySpec; got {type(value).__name__}"
        )

    def __repr__(self):
        return f"MemorySpec(top_sites={self.top_sites})"


# -- process-global tracemalloc refcount ------------------------------------

_TRACEMALLOC_LOCK = named_lock("obs.memory.tracemalloc")
_TRACEMALLOC_USERS = 0
_TRACEMALLOC_OURS = False


def _acquire_tracemalloc():
    global _TRACEMALLOC_USERS, _TRACEMALLOC_OURS
    with _TRACEMALLOC_LOCK:
        _TRACEMALLOC_USERS += 1
        if _TRACEMALLOC_USERS == 1:
            _TRACEMALLOC_OURS = not tracemalloc.is_tracing()
            if _TRACEMALLOC_OURS:
                tracemalloc.start()


def _release_tracemalloc():
    global _TRACEMALLOC_USERS, _TRACEMALLOC_OURS
    with _TRACEMALLOC_LOCK:
        _TRACEMALLOC_USERS -= 1
        if _TRACEMALLOC_USERS == 0 and _TRACEMALLOC_OURS:
            tracemalloc.stop()
            _TRACEMALLOC_OURS = False


class _NoopStage:
    """Stand-in stage context when allocation tracking is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False


_NOOP_STAGE = _NoopStage()


class _StageMeasurement:
    """Measures one pipeline stage's traced-heap delta onto its span."""

    __slots__ = ("_tracker", "_span", "_before")

    def __init__(self, tracker, span):
        self._tracker = tracker
        self._span = span
        self._before = None

    def __enter__(self):
        current, _ = tracemalloc.get_traced_memory()
        self._before = current
        tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        current, peak = tracemalloc.get_traced_memory()
        delta = current - self._before
        stage_peak = max(0, peak - self._before)
        span = self._span
        span.set("alloc_bytes", delta)
        span.set("peak_alloc_bytes", stage_peak)
        self._tracker._note_stage(span.name, delta, stage_peak, peak)
        return False


class MemoryTracker:
    """One query's memory account; attached as ``QueryResult.memory``.

    Always records ``peak_rss_bytes`` (cheap).  With ``tracked=True``
    (built from a :class:`MemorySpec`) it also records the net and peak
    traced-heap deltas for the whole query and per stage, plus the
    top-N allocation sites by retained size.
    """

    def __init__(self, tracked=False, top_sites=DEFAULT_TOP_SITES):
        self.tracked = tracked
        self.top_sites_limit = top_sites
        self.stages = {}          # name -> {"alloc_bytes", "peak_alloc_bytes", "calls"}
        self.alloc_bytes = None   # net traced-heap delta over the query
        self.peak_alloc_bytes = None
        self.peak_rss_bytes = 0   # process high-water after the query
        self.rss_before_bytes = 0
        self.top_sites = []
        self._base = 0
        self._peak_watermark = 0
        self._started = False

    @classmethod
    def from_spec(cls, spec):
        """Build a tracker; ``spec=None`` means RSS-only accounting."""
        if spec is None:
            return cls(tracked=False)
        return cls(tracked=True, top_sites=spec.top_sites)

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        self.rss_before_bytes = peak_rss_bytes()
        if self.tracked and not self._started:
            _acquire_tracemalloc()
            self._started = True
            current, _ = tracemalloc.get_traced_memory()
            self._base = current
            self._peak_watermark = current
            tracemalloc.reset_peak()
        return self

    def stop(self):
        """Finalize totals and the top-site table (idempotent)."""
        self.peak_rss_bytes = peak_rss_bytes()
        if not self._started:
            return self
        current, peak = tracemalloc.get_traced_memory()
        self._peak_watermark = max(self._peak_watermark, peak, current)
        self.alloc_bytes = current - self._base
        self.peak_alloc_bytes = max(0, self._peak_watermark - self._base)
        try:
            snapshot = tracemalloc.take_snapshot()
            stats = snapshot.statistics("lineno")[: self.top_sites_limit]
            self.top_sites = [
                {
                    "site": f"{stat.traceback[0].filename}:"
                            f"{stat.traceback[0].lineno}",
                    "size_bytes": stat.size,
                    "count": stat.count,
                }
                for stat in stats
            ]
        finally:
            self._started = False
            _release_tracemalloc()
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False

    # -- per-stage measurement ---------------------------------------------

    def stage(self, span):
        """Context manager measuring one stage span's heap delta.

        No-op (a shared empty context) when allocation tracking is off,
        so the instrumented pipeline pays nothing by default.
        """
        if not self._started:
            return _NOOP_STAGE
        return _StageMeasurement(self, span)

    def _note_stage(self, name, delta, stage_peak, peak):
        entry = self.stages.get(name)
        if entry is None:
            entry = self.stages[name] = {
                "alloc_bytes": 0, "peak_alloc_bytes": 0, "calls": 0
            }
        entry["alloc_bytes"] += delta
        entry["peak_alloc_bytes"] = max(entry["peak_alloc_bytes"], stage_peak)
        entry["calls"] += 1
        # reset_peak() per stage clobbers the interpreter's query-level
        # peak, so keep our own absolute watermark (``peak`` is absolute
        # since the last reset, which is always >= the stage-start level).
        self._peak_watermark = max(self._peak_watermark, peak)

    # -- export ------------------------------------------------------------

    @property
    def rss_growth_bytes(self):
        """Peak-RSS growth across the query (0 when the peak predates it)."""
        return max(0, self.peak_rss_bytes - self.rss_before_bytes)

    def to_dict(self):
        entry = {
            "tracked": self.tracked,
            "peak_rss_bytes": self.peak_rss_bytes,
            "rss_growth_bytes": self.rss_growth_bytes,
        }
        if self.alloc_bytes is not None:
            entry["alloc_bytes"] = self.alloc_bytes
            entry["peak_alloc_bytes"] = self.peak_alloc_bytes
        if self.stages:
            entry["stages"] = {
                name: dict(stats) for name, stats in self.stages.items()
            }
        if self.top_sites:
            entry["top_sites"] = [dict(site) for site in self.top_sites]
        return entry

    def __repr__(self):
        if self.alloc_bytes is None:
            return f"MemoryTracker(rss={self.peak_rss_bytes})"
        return (
            f"MemoryTracker(alloc={self.alloc_bytes}, "
            f"peak={self.peak_alloc_bytes}, rss={self.peak_rss_bytes})"
        )


# -- context activation (mirrors plan_stats / profiler) ---------------------

_CURRENT_MEMORY_SPEC: ContextVar[MemorySpec | None] = ContextVar(
    "repro_obs_memory_spec", default=None
)


def current_memory_spec():
    """The :class:`MemorySpec` active in this context, or None."""
    return _CURRENT_MEMORY_SPEC.get()


class _MemoryActivation:
    __slots__ = ("_spec", "_tokens")

    def __init__(self, spec):
        self._spec = spec
        self._tokens = []  # LIFO: safe under re-entrant use

    def __enter__(self):
        self._tokens.append(_CURRENT_MEMORY_SPEC.set(self._spec))
        return self._spec

    def __exit__(self, exc_type, exc_value, traceback):
        _CURRENT_MEMORY_SPEC.reset(self._tokens.pop())
        return False


def activate_memory_tracking(spec=True):
    """Track allocations for every ``ask`` inside the ``with`` block."""
    return _MemoryActivation(MemorySpec.coerce(spec))
