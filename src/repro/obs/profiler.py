"""Dependency-free sampling profiler with trace-span attribution.

A :class:`SamplingProfiler` runs a background daemon thread that wakes
``hz`` times per second, grabs the target thread's current Python stack
via ``sys._current_frames()``, and records it together with the name of
the innermost open span of the query's :class:`~repro.obs.spans.Trace`.
That one extra field is what makes the output actionable: a collapsed
stack does not just say "``_structural_join`` is hot", it says
"``_structural_join`` is hot *inside the evaluate stage*", so profile
data lines up with the per-stage timings in traces, audit records, and
``BENCH_RESULTS.json``.

Output formats (both renderable without any third-party package):

* :meth:`SamplingProfiler.collapsed_text` — Brendan Gregg's collapsed
  stack format, one ``frame;frame;... count`` line per distinct stack,
  consumable by ``flamegraph.pl`` and https://www.speedscope.app;
* :meth:`SamplingProfiler.speedscope` — a speedscope JSON document
  (``type: sampled``), which Perfetto also imports.

Activation mirrors :mod:`repro.obs.plan_stats`: pass
``ask(..., profile=True)`` for one query, or activate a
:class:`ProfileSpec` on the context so every ``ask`` inside the block
is profiled::

    with activate_profiling(ProfileSpec(hz=499)):
        nalix.ask(...)        # result.profile is a stopped profiler

Safety: the sampler is a daemon thread, ``stop()`` is idempotent, and
the context-manager form stops the thread on exception paths; a failed
sample (a thread that exited mid-walk) is counted in ``errors`` and
never kills the sampling loop.  Overhead is bounded by construction —
the sampler only *reads* frames under the GIL, so the profiled query
pays roughly one stack walk per sample tick (see
``tests/obs/test_profiler.py`` for the pinned overhead bound).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextvars import ContextVar
from repro.analysis.racecheck import named_lock

#: Default sampling rate.  Prime, so the sampler does not phase-lock
#: with millisecond-granular work loops; high enough that a ~10 ms
#: pipeline stage still collects a handful of samples.
DEFAULT_HZ = 997

#: Hard ceiling on recorded samples (a runaway query at 997 Hz takes
#: ~3.5 minutes to hit it); further ticks count ``dropped``.
DEFAULT_MAX_SAMPLES = 200_000

#: Deepest stack recorded per sample.
MAX_STACK_DEPTH = 128

#: Root frame used when a sample lands outside any open span.
NO_SPAN = "(no-span)"

# -- process-global switch-interval tuning ----------------------------------
#
# ``sys.setswitchinterval`` is process-wide, so concurrent profilers
# (several served queries profiled at once) must not save/restore it
# independently — the last one to stop would reinstate whatever value
# an *earlier* profiler had temporarily installed.  Mirror the
# tracemalloc refcount in ``repro.obs.memory``: the first profiler to
# need a shorter interval saves the original and installs the minimum
# requested; later profilers only ratchet it downward; the last one
# out restores the original.

_SWITCH_LOCK = named_lock("obs.profiler.switch")
_SWITCH_USERS = 0
_SWITCH_SAVED = None


def _acquire_switch_interval(wanted):
    global _SWITCH_USERS, _SWITCH_SAVED
    with _SWITCH_LOCK:
        _SWITCH_USERS += 1
        current = sys.getswitchinterval()
        if _SWITCH_USERS == 1:
            _SWITCH_SAVED = current
        if wanted < current:
            sys.setswitchinterval(wanted)


def _release_switch_interval():
    global _SWITCH_USERS, _SWITCH_SAVED
    with _SWITCH_LOCK:
        _SWITCH_USERS -= 1
        if _SWITCH_USERS == 0 and _SWITCH_SAVED is not None:
            sys.setswitchinterval(_SWITCH_SAVED)
            _SWITCH_SAVED = None


class ProfileSpec:
    """Sampling parameters, coercible from the ``profile=`` argument."""

    __slots__ = ("hz", "max_samples")

    def __init__(self, hz=DEFAULT_HZ, max_samples=DEFAULT_MAX_SAMPLES):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz!r}")
        self.hz = hz
        self.max_samples = max_samples

    @classmethod
    def coerce(cls, value):
        """``True`` / an hz number / a spec -> :class:`ProfileSpec`.

        ``None`` and ``False`` coerce to ``None`` (profiling off).
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, (int, float)):
            return cls(hz=value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"profile must be bool, a sampling rate, or ProfileSpec; "
            f"got {type(value).__name__}"
        )

    def __repr__(self):
        return f"ProfileSpec(hz={self.hz})"


def _frame_label(filename, function):
    """``file.py:function`` with characters the collapsed format reserves
    (semicolons, spaces) squashed out."""
    base = os.path.basename(filename) or filename
    return f"{base}:{function}".replace(";", ",").replace(" ", "_")


class SamplingProfiler:
    """Samples one thread's Python stack from a background thread.

    ``trace`` (optional) is the query's :class:`~repro.obs.spans.Trace`;
    at each tick the profiler reads the innermost open span's name and
    stores it with the sample, attributing wall time to pipeline
    stages.  ``thread_ident`` defaults to the thread that calls
    :meth:`start`.

    Samples are ``(span_path, frames)`` tuples: ``span_path`` is the
    root-first tuple of open span names at the tick (``("ask",
    "evaluate")``), empty when no span was open, and ``frames`` is a
    root-first tuple of ``(filename, function, lineno)``.  Keeping the
    whole path means the flamegraph's first levels mirror the span
    tree, and :meth:`span_sample_counts` can attribute by *pipeline
    stage* (the span directly under the root) even while inner code
    has its own finer-grained spans open.
    """

    def __init__(self, hz=DEFAULT_HZ, trace=None, thread_ident=None,
                 max_samples=DEFAULT_MAX_SAMPLES):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz!r}")
        self.hz = hz
        self.interval = 1.0 / hz
        self.trace = trace
        self.thread_ident = thread_ident
        self.max_samples = max_samples
        self.samples = []
        self.dropped = 0
        self.errors = 0
        self.started_at = None
        self.stopped_at = None
        self._stop_event = threading.Event()
        self._thread = None
        self._saved_switch_interval = None

    @classmethod
    def from_spec(cls, spec, trace=None):
        return cls(hz=spec.hz, trace=trace, max_samples=spec.max_samples)

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Start sampling the calling thread (or ``thread_ident``)."""
        if self._thread is not None:
            raise RuntimeError("profiler is already running")
        if self.thread_ident is None:
            self.thread_ident = threading.get_ident()
        self._stop_event.clear()
        # A CPU-bound target only yields the GIL every
        # ``sys.getswitchinterval()`` seconds (5 ms by default), which
        # caps the *effective* sampling rate at ~200 Hz no matter what
        # ``hz`` asks for.  Drop the switch interval below the sampling
        # period while the profiler runs; the adjustment is refcounted
        # process-wide (see ``_acquire_switch_interval``) so concurrent
        # profilers restore the pre-profiling value exactly once.
        _acquire_switch_interval(self.interval / 2.0)
        self._saved_switch_interval = True
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        """Stop the sampler thread and join it (idempotent)."""
        thread = self._thread
        if thread is None:
            return self
        self._stop_event.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.stopped_at = time.perf_counter()
        if self._saved_switch_interval is not None:
            _release_switch_interval()
            self._saved_switch_interval = None
        return self

    @property
    def running(self):
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def duration_seconds(self):
        if self.started_at is None:
            return 0.0
        end = self.stopped_at
        if end is None:
            end = time.perf_counter()
        return end - self.started_at

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False

    # -- the sampling loop -------------------------------------------------

    def _run(self):
        wait = self._stop_event.wait
        while not wait(self.interval):
            try:
                self._sample_once()
            except Exception:
                # A thread that exited mid-walk, an interpreter that is
                # shutting down: never let one bad tick kill the loop.
                self.errors += 1

    def _sample_once(self):
        frame = sys._current_frames().get(self.thread_ident)
        if frame is None:
            return
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        frames = []
        depth = 0
        while frame is not None and depth < MAX_STACK_DEPTH:
            code = frame.f_code
            frames.append((code.co_filename, code.co_name, frame.f_lineno))
            frame = frame.f_back
            depth += 1
        frames.reverse()
        self.samples.append((self._current_span_path(), tuple(frames)))

    def _current_span_path(self):
        trace = self.trace
        if trace is None:
            return ()
        # The profiled thread pushes/pops concurrently; a torn read at
        # worst misattributes this one sample.
        try:
            return tuple(span.name for span in trace._stack)
        except Exception:
            return ()

    # -- aggregation -------------------------------------------------------

    def span_sample_counts(self):
        """``{stage_span_name: samples}`` with ``NO_SPAN`` unattributed.

        Attribution is by pipeline stage: the span one level under the
        trace root (``parse``, ``evaluate``, ...), or the root itself
        while no stage span is open.
        """
        counts = {}
        for span_path, _ in self.samples:
            key = stage_of(span_path)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def collapsed(self):
        """``{collapsed_stack: count}`` with the span as the root frame."""
        return collapse_samples(self.samples)

    def collapsed_text(self):
        """The full collapsed-stack document (``flamegraph.pl`` input)."""
        return collapsed_text(self.samples)

    def speedscope(self, name="repro"):
        """A speedscope JSON document (``type: sampled``) as a dict."""
        return speedscope_document(
            self.samples, self.interval, name=name
        )

    def to_dict(self):
        """Summary for audit/CI artifacts (no per-sample data)."""
        return {
            "hz": self.hz,
            "samples": len(self.samples),
            "dropped": self.dropped,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "span_samples": self.span_sample_counts(),
        }

    def __repr__(self):
        return (
            f"SamplingProfiler(hz={self.hz}, {len(self.samples)} samples, "
            f"{'running' if self.running else 'stopped'})"
        )


# -- sample aggregation (module level so merged runs can reuse it) ----------


def stage_of(span_path):
    """The pipeline-stage name a span path attributes to.

    The stage is the span directly under the per-query root (``ask``);
    a one-element path is the root itself, and an empty path means the
    sample landed outside any span (:data:`NO_SPAN`).
    """
    if not span_path:
        return NO_SPAN
    if len(span_path) == 1:
        return span_path[0]
    return span_path[1]


def merge_profiles(profilers):
    """All samples of several profilers, in recording order.

    The ``profile`` CLI subcommand re-asks a query N times to densify
    the sample set; each ``ask`` gets its own profiler, and the merged
    samples render as one flamegraph.
    """
    samples = []
    for profiler in profilers:
        if profiler is not None:
            samples.extend(profiler.samples)
    return samples


def _span_root_frames(span_path):
    if not span_path:
        return [f"span:{NO_SPAN}"]
    return [f"span:{name}" for name in span_path]


def collapse_samples(samples):
    """Aggregate samples into ``{semicolon-joined-stack: count}``.

    The open-span path becomes the root frames
    (``span:ask;span:evaluate;...``), so the flamegraph's first levels
    *are* the pipeline-stage breakdown.
    """
    counts = {}
    for span_path, frames in samples:
        stack = ";".join(
            _span_root_frames(span_path)
            + [_frame_label(f, fn) for f, fn, _ in frames]
        )
        counts[stack] = counts.get(stack, 0) + 1
    return counts


def collapsed_text(samples):
    """Collapsed stacks as text, one ``stack count`` line each."""
    counts = collapse_samples(samples)
    return "".join(
        f"{stack} {count}\n" for stack, count in sorted(counts.items())
    )


def speedscope_document(samples, interval_seconds, name="repro"):
    """Build a speedscope ``sampled`` profile document.

    Every sample weighs one sampling interval; the span-attribution
    root frame is included, so speedscope's left-heavy view groups by
    pipeline stage exactly like the collapsed output.
    """
    frame_index = {}
    frame_list = []

    def intern(key, entry):
        index = frame_index.get(key)
        if index is None:
            index = frame_index[key] = len(frame_list)
            frame_list.append(entry)
        return index

    sample_rows = []
    for span_path, frames in samples:
        row = [
            intern(("span", label), {"name": label})
            for label in _span_root_frames(span_path)
        ]
        for filename, function, lineno in frames:
            key = (filename, function, lineno)
            row.append(
                intern(
                    key,
                    {
                        "name": f"{os.path.basename(filename)}:{function}",
                        "file": filename,
                        "line": lineno,
                    },
                )
            )
        sample_rows.append(row)
    total = interval_seconds * len(sample_rows)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frame_list},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": sample_rows,
                "weights": [interval_seconds] * len(sample_rows),
            }
        ],
        "exporter": "repro.obs.profiler",
    }


# -- context activation (mirrors plan_stats) --------------------------------

_CURRENT_PROFILE_SPEC: ContextVar[ProfileSpec | None] = ContextVar(
    "repro_obs_profile_spec", default=None
)


def current_profile_spec():
    """The :class:`ProfileSpec` active in this context, or None."""
    return _CURRENT_PROFILE_SPEC.get()


class _ProfilingActivation:
    __slots__ = ("_spec", "_tokens")

    def __init__(self, spec):
        self._spec = spec
        self._tokens = []  # LIFO: safe under re-entrant use

    def __enter__(self):
        self._tokens.append(_CURRENT_PROFILE_SPEC.set(self._spec))
        return self._spec

    def __exit__(self, exc_type, exc_value, traceback):
        _CURRENT_PROFILE_SPEC.reset(self._tokens.pop())
        return False


def activate_profiling(spec=True):
    """Profile every ``ask`` inside the ``with`` block.

    ``spec`` is anything :meth:`ProfileSpec.coerce` accepts.
    """
    return _ProfilingActivation(ProfileSpec.coerce(spec))
