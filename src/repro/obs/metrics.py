"""Process-wide metrics: named counters, gauges, and histograms.

All instrumentation reports into the module-level :data:`METRICS`
registry.  Names are dotted paths grouped by subsystem — the full
naming scheme is documented in README.md; the prefixes in use are
``pipeline.*``, ``validator.*``, ``evaluator.*``, ``planner.*``,
``database.*``, ``keyword_search.*``, and ``xmlstore.*``.

``reset()`` zeroes every metric **in place** (it does not discard the
objects), so modules may resolve a metric once at import time and hold
the reference on their hot path::

    _TAG_LOOKUPS = METRICS.counter("database.index.tag_lookups")
    ...
    _TAG_LOOKUPS.inc()          # one attribute increment per call

Histograms keep running count/total/min/max plus a bounded sample of
observed values for percentile estimates, so long-running processes
never grow without bound.

All mutation and the registry's ``snapshot()`` are guarded by per-metric
locks: the CLI, the evaluation harness, and chaos tests run queries from
worker threads while the stats exporter reads the registry concurrently,
so lost updates and torn histogram summaries must be impossible, not
just unlikely.
"""

from __future__ import annotations

import json

from repro.obs.quantiles import nearest_rank
from repro.analysis.racecheck import named_lock


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self._lock = named_lock("obs.metrics.metric")

    def inc(self, amount=1):
        with self._lock:
            self.value += amount

    def reset(self):
        with self._lock:
            self.value = 0

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins; thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self._lock = named_lock("obs.metrics.metric")

    def set(self, value):
        with self._lock:
            self.value = value

    def reset(self):
        with self._lock:
            self.value = 0

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A distribution of observed values (thread-safe).

    Keeps exact count/total/min/max and the first ``SAMPLE_LIMIT``
    observations; percentiles (p50/p95/p99) are computed exactly from
    the retained samples, not estimated from buckets.
    """

    SAMPLE_LIMIT = 2048

    __slots__ = ("name", "count", "total", "min", "max", "_sample", "_lock")

    def __init__(self, name):
        self.name = name
        self._lock = named_lock("obs.metrics.metric")
        # Direct assignment, not reset(): the object is not shared yet,
        # and construction happens under the registry lock — taking the
        # metric lock here would nest locks for no benefit.
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._sample = []

    def reset(self):
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self._sample = []

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._sample) < Histogram.SAMPLE_LIMIT:
                self._sample.append(value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction):
        """Exact sample percentile (``fraction`` in [0, 1]); 0.0 when empty."""
        with self._lock:
            sample = list(self._sample)
        return nearest_rank(sample, fraction)

    def summary(self):
        """Consistent point-in-time summary (one lock acquisition)."""
        with self._lock:
            count = self.count
            total = self.total
            low = self.min
            high = self.max
            ordered = sorted(self._sample)
        return {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "min": low if low is not None else 0.0,
            "max": high if high is not None else 0.0,
            "p50": nearest_rank(ordered, 0.50),
            "p95": nearest_rank(ordered, 0.95),
            "p99": nearest_rank(ordered, 0.99),
        }

    def __repr__(self):
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Create-on-first-use registry of named metrics."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._lock = named_lock("obs.metrics.registry")

    # -- access (create on demand) -----------------------------------------

    def counter(self, name):
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name):
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(self, name):
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(name, Histogram(name))
        return metric

    # -- convenience writers ------------------------------------------------

    def inc(self, name, amount=1):
        self.counter(name).inc(amount)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    # -- export --------------------------------------------------------------

    def snapshot(self):
        """Plain-dict view of every metric, sorted by name.

        The metric dicts are copied under the registry lock (so a
        concurrent create-on-first-use cannot resize them mid-iteration)
        and each metric is then read through its own lock.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {
                name: gauges[name].value for name in sorted(gauges)
            },
            "histograms": {
                name: histograms[name].summary()
                for name in sorted(histograms)
            },
        }

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self):
        """Zero every metric in place (references stay valid)."""
        for group in (self._counters, self._gauges, self._histograms):
            for metric in group.values():
                metric.reset()

    def __repr__(self):
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )


#: The process-wide registry all built-in instrumentation reports into.
METRICS = MetricsRegistry()
