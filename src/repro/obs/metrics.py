"""Process-wide metrics: named counters, gauges, and histograms.

All instrumentation reports into the module-level :data:`METRICS`
registry.  Names are dotted paths grouped by subsystem — the full
naming scheme is documented in README.md; the prefixes in use are
``pipeline.*``, ``validator.*``, ``evaluator.*``, ``planner.*``,
``database.*``, ``keyword_search.*``, and ``xmlstore.*``.

``reset()`` zeroes every metric **in place** (it does not discard the
objects), so modules may resolve a metric once at import time and hold
the reference on their hot path::

    _TAG_LOOKUPS = METRICS.counter("database.index.tag_lookups")
    ...
    _TAG_LOOKUPS.inc()          # one attribute increment per call

Histograms keep running count/total/min/max plus a bounded sample of
observed values for percentile estimates, so long-running processes
never grow without bound.
"""

from __future__ import annotations

import json


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def reset(self):
        self.value = 0

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A distribution of observed values.

    Keeps exact count/total/min/max and the first ``SAMPLE_LIMIT``
    observations for percentile estimates.
    """

    SAMPLE_LIMIT = 2048

    __slots__ = ("name", "count", "total", "min", "max", "_sample")

    def __init__(self, name):
        self.name = name
        self.reset()

    def reset(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._sample = []

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._sample) < Histogram.SAMPLE_LIMIT:
            self._sample.append(value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction):
        """Sample percentile (``fraction`` in [0, 1]); 0.0 when empty."""
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def summary(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }

    def __repr__(self):
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Create-on-first-use registry of named metrics."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- access (create on demand) -----------------------------------------

    def counter(self, name):
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name):
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- convenience writers ------------------------------------------------

    def inc(self, name, amount=1):
        self.counter(name).inc(amount)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    # -- export --------------------------------------------------------------

    def snapshot(self):
        """Plain-dict view of every metric, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self):
        """Zero every metric in place (references stay valid)."""
        for group in (self._counters, self._gauges, self._histograms):
            for metric in group.values():
                metric.reset()

    def __repr__(self):
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )


#: The process-wide registry all built-in instrumentation reports into.
METRICS = MetricsRegistry()
