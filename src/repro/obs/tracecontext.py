"""W3C Trace Context helpers: ``traceparent`` headers and trace ids.

The serving layer propagates request identity end-to-end with a
(subset of the) W3C Trace Context ``traceparent`` header::

    traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>

:class:`~repro.serve.client.ServeClient` mints one trace id per
*logical* request and reuses it across every retry and hedge attempt,
so all server-side records of one client operation — access-log lines,
flight-recorder entries, metric exemplars — share a single id.  The
server adopts the client's trace id when the header parses, and mints
its own otherwise, so every request has exactly one id regardless of
who called.

Only version ``00`` is understood; ids are random (``os.urandom``), not
derived from anything, and the all-zero ids the spec forbids are
rejected on parse.  This module is dependency-free and stateless.
"""

from __future__ import annotations

import os
import re

#: The only traceparent version this parser understands.
TRACEPARENT_VERSION = "00"

#: Flag byte marking the trace as sampled (the only flag we ever set).
SAMPLED_FLAG = "01"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-"
    r"(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<parent_id>[0-9a-f]{16})-"
    r"(?P<flags>[0-9a-f]{2})$"
)


def new_trace_id():
    """A fresh random 32-hex-digit trace id."""
    return os.urandom(16).hex()


def new_span_id():
    """A fresh random 16-hex-digit span (parent) id."""
    return os.urandom(8).hex()


def format_traceparent(trace_id, span_id=None, sampled=True):
    """Render one ``traceparent`` header value.

    ``trace_id`` must be 32 lowercase hex digits (the caller mints it
    via :func:`new_trace_id`); a missing ``span_id`` gets a fresh one.
    """
    if span_id is None:
        span_id = new_span_id()
    flags = SAMPLED_FLAG if sampled else "00"
    return f"{TRACEPARENT_VERSION}-{trace_id}-{span_id}-{flags}"


def parse_traceparent(header):
    """``(trace_id, parent_id)`` from a header value, or ``None``.

    Strict on shape (version 00, exact field widths, lowercase hex) and
    rejects the all-zero ids the spec forbids.  A malformed header is
    not an error — the server simply mints its own trace id.
    """
    if not header or not isinstance(header, str):
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    if match.group("version") != TRACEPARENT_VERSION:
        return None
    trace_id = match.group("trace_id")
    parent_id = match.group("parent_id")
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return trace_id, parent_id
