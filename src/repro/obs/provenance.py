"""Query provenance: who produced what, all the way through the pipeline.

NaLIX's value proposition (paper Sec. 4) is that a user can *see why*
the system understood — or rejected — their English sentence.  This
module holds the data carriers for that story:

* :class:`TokenRecord` — one classified word/chunk: its text, the token
  type it received, and the classification rule (Tables 1–2) that
  assigned it;
* :class:`ClauseRecord` — one emitted XQuery clause (or clause
  fragment): its rendered text, the translation pattern that produced
  it (Fig. 4 direct mapping, Fig. 5 marker semantics, Fig. 6 nesting
  scope, ...), and the ids of the source tokens it cites;
* :class:`ValidationRecord` — one validator error/warning together with
  the grammar production (Table 6) or definition that fired;
* :class:`QueryProvenance` — the per-query container carried on
  ``QueryResult.provenance`` and rendered by :mod:`repro.obs.explain`.

Like the rest of ``repro.obs``, this module imports nothing from other
``repro`` packages: the builders duck-type over parse-tree nodes
(``text`` / ``lemma`` / ``node_id`` / ``token_type`` / attributes set by
the classifier), so the classifier, validator, and translator can feed
it without creating an import cycle.
"""

from __future__ import annotations


class TokenRecord:
    """One word (or merged chunk) and how it was classified."""

    __slots__ = ("node_id", "word", "lemma", "token_type", "rule",
                 "detail", "implicit")

    def __init__(self, node_id, word, lemma, token_type, rule,
                 detail=None, implicit=False):
        self.node_id = node_id
        self.word = word
        self.lemma = lemma
        self.token_type = token_type
        self.rule = rule
        self.detail = detail        # operator / aggregate / literal / ...
        self.implicit = implicit

    def to_dict(self):
        entry = {
            "node_id": self.node_id,
            "word": self.word,
            "token_type": self.token_type,
            "rule": self.rule,
        }
        if self.lemma != self.word:
            entry["lemma"] = self.lemma
        if self.detail is not None:
            entry["detail"] = self.detail
        if self.implicit:
            entry["implicit"] = True
        return entry

    def __repr__(self):
        return (
            f"TokenRecord({self.node_id}, {self.word!r}, "
            f"{self.token_type})"
        )


class ClauseRecord:
    """One emitted clause (or conjunct) and the tokens that produced it."""

    __slots__ = ("clause", "fragment", "pattern", "token_ids", "words")

    def __init__(self, clause, fragment, pattern, token_ids, words):
        self.clause = clause        # for | let | where | order-by | return
        self.fragment = fragment    # the rendered XQuery text
        self.pattern = pattern      # the paper rule that produced it
        self.token_ids = list(token_ids)
        self.words = list(words)

    def to_dict(self):
        return {
            "clause": self.clause,
            "fragment": self.fragment,
            "pattern": self.pattern,
            "token_ids": list(self.token_ids),
            "words": list(self.words),
        }

    def __repr__(self):
        return f"ClauseRecord({self.clause}, {self.fragment!r})"


class ValidationRecord:
    """One validator finding and the grammar production that fired."""

    __slots__ = ("kind", "code", "production", "node_id", "word")

    def __init__(self, kind, code, production, node_id=None, word=None):
        self.kind = kind            # error | warning
        self.code = code
        self.production = production
        self.node_id = node_id
        self.word = word

    def to_dict(self):
        entry = {
            "kind": self.kind,
            "code": self.code,
            "production": self.production,
        }
        if self.node_id is not None:
            entry["node_id"] = self.node_id
        if self.word is not None:
            entry["word"] = self.word
        return entry

    def __repr__(self):
        return f"ValidationRecord({self.kind}, {self.code})"


#: Classifier rules may leave these extra attributes on parse nodes;
#: they become ``TokenRecord.detail`` (e.g. the comparison operator an
#: OT mapped to, or the aggregate function behind an FT).
_DETAIL_ATTRIBUTES = ("operator", "aggregate", "value", "descending")


def token_records_from_tree(root):
    """Build :class:`TokenRecord` entries for every classified node.

    ``root`` is a classified (and normally validated) parse tree; nodes
    are visited in sentence order so the report reads like the query.
    Only duck-typed attributes are touched, keeping this module free of
    ``repro.core`` imports.
    """
    records = []
    nodes = sorted(root.preorder(), key=lambda node: node.index)
    for node in nodes:
        token_type = getattr(node, "token_type", None)
        if token_type is None:
            continue
        detail = None
        for attribute in _DETAIL_ATTRIBUTES:
            value = getattr(node, attribute, None)
            if value is not None and value is not False:
                detail = f"{attribute}={value!r}"
                break
        implicit = bool(getattr(node, "implicit", False))
        if implicit:
            implicit_value = getattr(node, "implicit_value", None)
            detail = f"implicit NT for value {implicit_value!r}"
        records.append(
            TokenRecord(
                getattr(node, "node_id", None),
                node.text,
                node.lemma,
                token_type,
                getattr(node, "classification_rule", "unclassified"),
                detail=detail,
                implicit=implicit,
            )
        )
    return records


def validation_records_from_feedback(feedback):
    """Build :class:`ValidationRecord` entries from a Feedback object."""
    records = []
    for message in getattr(feedback, "messages", []):
        node = getattr(message, "node", None)
        records.append(
            ValidationRecord(
                message.kind,
                message.code,
                getattr(message, "production", None) or "Sec. 4 check",
                node_id=getattr(node, "node_id", None) if node else None,
                word=node.text if node is not None else None,
            )
        )
    return records


class QueryProvenance:
    """Everything known about how one query was understood."""

    def __init__(self, sentence):
        self.sentence = sentence
        self.tokens = []            # [TokenRecord]
        self.clauses = []           # [ClauseRecord]
        self.validations = []       # [ValidationRecord]

    # -- lineage -----------------------------------------------------------

    def clauses_citing(self, node_id):
        """The clause records that cite the given source token."""
        return [
            clause for clause in self.clauses if node_id in clause.token_ids
        ]

    def lineage(self):
        """Word → token → clause rows, one per classified token.

        Each row is ``(TokenRecord, [ClauseRecord])``; marker tokens
        usually map to no clause (their semantics is attachment shape).
        """
        return [
            (token, self.clauses_citing(token.node_id))
            for token in self.tokens
        ]

    def uncited_clauses(self):
        """Clause records citing no token (should be empty)."""
        return [clause for clause in self.clauses if not clause.token_ids]

    # -- summaries ---------------------------------------------------------

    def summary(self):
        """Compact dict for audit records: counts, patterns, productions.

        Empty (``{}``) when nothing was harvested — e.g. a query that
        failed before classification — so callers can skip the key.
        """
        if not self.tokens and not self.clauses and not self.validations:
            return {}
        token_counts = {}
        for token in self.tokens:
            token_counts[token.token_type] = (
                token_counts.get(token.token_type, 0) + 1
            )
        patterns = []
        for clause in self.clauses:
            if clause.pattern not in patterns:
                patterns.append(clause.pattern)
        productions = []
        for record in self.validations:
            if record.production not in productions:
                productions.append(record.production)
        summary = {"tokens": token_counts, "clauses": len(self.clauses)}
        if patterns:
            summary["patterns"] = patterns
        if productions:
            summary["productions"] = productions
        return summary

    def to_dict(self):
        return {
            "sentence": self.sentence,
            "tokens": [token.to_dict() for token in self.tokens],
            "clauses": [clause.to_dict() for clause in self.clauses],
            "validations": [
                record.to_dict() for record in self.validations
            ],
        }

    def __repr__(self):
        return (
            f"QueryProvenance({len(self.tokens)} tokens, "
            f"{len(self.clauses)} clauses, "
            f"{len(self.validations)} validations)"
        )
