"""Observability: tracing, metrics, and query auditing.

Three small, dependency-free layers that the rest of the system reports
into (none of them import other ``repro`` packages, so every subsystem
may instrument itself freely):

* :mod:`repro.obs.spans` — per-query hierarchical wall-time tracing.
  ``NaLIX.ask`` builds one :class:`Trace` per query and attaches it to
  ``QueryResult.trace``; the span tree doubles as the timing source for
  the result's ``*_seconds`` properties.
* :mod:`repro.obs.metrics` — a process-wide registry of named counters,
  gauges, and histograms (``METRICS``), with ``snapshot()`` /
  ``reset()`` and JSON export.
* :mod:`repro.obs.audit` — an optional JSONL audit trail recording one
  line per query (sentence, status, error categories, emitted XQuery,
  per-stage timings).

See the "Observability" sections of README.md and DESIGN.md for the
metric naming scheme and the CLI surface (``--trace``, ``--metrics``,
``--audit-log``, and the ``stats`` subcommand).
"""

from repro.obs.audit import AuditLog, audit_entry, read_audit_log
from repro.obs.metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, Trace, activate_trace, current_trace, span

__all__ = [
    "METRICS",
    "AuditLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "activate_trace",
    "audit_entry",
    "current_trace",
    "read_audit_log",
    "span",
]
