"""Observability: tracing, metrics, auditing, provenance, and export.

Small, dependency-free layers that the rest of the system reports into
(none of them import other ``repro`` packages, so every subsystem may
instrument itself freely):

* :mod:`repro.obs.spans` — per-query hierarchical wall-time tracing.
  ``NaLIX.ask`` builds one :class:`Trace` per query and attaches it to
  ``QueryResult.trace``; the span tree doubles as the timing source for
  the result's ``*_seconds`` properties.
* :mod:`repro.obs.metrics` — a thread-safe process-wide registry of
  named counters, gauges, and histograms (``METRICS``), with
  ``snapshot()`` / ``reset()``, exact sample percentiles, and JSON
  export.
* :mod:`repro.obs.audit` — an optional JSONL audit trail recording one
  line per query (sentence, status, error categories, emitted XQuery,
  the canonical answer digest, per-stage timings, provenance summary),
  with size-based rotation and a hardened shared reader
  (:func:`~repro.obs.audit.iter_records`) that chains rotated files
  and tolerates truncation.
* :mod:`repro.obs.answers` — the canonical answer normalizer and
  stable answer fingerprint (``answer_digest``) stamped on every
  ``QueryResult`` and compared by the serving canary and ``repro
  replay``.
* :mod:`repro.obs.provenance` — word → token → clause provenance
  records carried on ``QueryResult.provenance``.
* :mod:`repro.obs.plan_stats` — per-operator plan statistics (rows
  in/out, mqf cardinalities, let-cache hits, wall time per node).
* :mod:`repro.obs.explain` — renders provenance + plan stats + trace as
  a lineage report (text and JSON).
* :mod:`repro.obs.export` — standard wire formats: Chrome trace-event
  JSON, the Prometheus text exposition format, and the sliding-window
  latency tracker ``LATENCIES``.
* :mod:`repro.obs.quantiles` — the shared nearest-rank percentile and
  median-absolute-deviation helpers every latency summary goes through.
* :mod:`repro.obs.profiler` — a dependency-free sampling profiler
  (``sys._current_frames()`` walked from a daemon thread) attributing
  collapsed stacks to the enclosing trace span; emits ``flamegraph.pl``
  collapsed text and speedscope JSON.
* :mod:`repro.obs.memory` — per-query memory accounting: peak RSS on
  every query, opt-in tracemalloc per-stage deltas and top-N
  allocation sites.
* :mod:`repro.obs.regression` — the perf-regression watchdog comparing
  a fresh benchmark run against the committed
  ``benchmarks/BENCH_RESULTS.json`` baseline with a robust tolerance
  rule (relative thresholds + MAD guard + min-sample floor).
* :mod:`repro.obs.slo` — declarative availability/latency SLOs over the
  live request stream with Google-SRE multi-window burn-rate alerting.
* :mod:`repro.obs.sampler` — tail-based trace sampling: always retain
  errors, watchdog victims, and the slow tail; head-sample the rest.
* :mod:`repro.obs.recorder` — the byte-bounded in-memory flight
  recorder of retained traces, dumpable as JSONL/Chrome bundles.
* :mod:`repro.obs.tracecontext` — W3C ``traceparent`` parsing and
  formatting (the trace-id thread through client, server, audit log,
  metrics exemplars, and recorder).

See the "Observability" and "Explain" sections of README.md and
DESIGN.md for the metric naming scheme and the CLI surface
(``--trace``, ``--metrics``, ``--audit-log``, ``--explain``, and the
``explain`` / ``stats`` subcommands).
"""

from repro.obs.answers import (
    ANSWER_DIGEST_VERSION,
    EMPTY_ANSWER_DIGEST,
    answer_digest,
    canonical_value,
    normalize_answer,
)
from repro.obs.audit import (
    AuditLog,
    ReadStats,
    audit_entry,
    iter_records,
    read_audit_log,
)
from repro.obs.explain import Explanation, explain
from repro.obs.export import (
    LATENCIES,
    LatencyWindow,
    chrome_trace,
    chrome_trace_events,
    chrome_trace_json,
    prometheus_text,
)
from repro.obs.memory import (
    MemorySpec,
    MemoryTracker,
    activate_memory_tracking,
    current_memory_spec,
    peak_rss_bytes,
)
from repro.obs.metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.plan_stats import (
    OperatorStats,
    PlanStatsCollection,
    activate_plan_stats,
    current_plan_stats,
    operator,
)
from repro.obs.profiler import (
    ProfileSpec,
    SamplingProfiler,
    activate_profiling,
    collapsed_text,
    current_profile_spec,
    merge_profiles,
    speedscope_document,
)
from repro.obs.provenance import (
    ClauseRecord,
    QueryProvenance,
    TokenRecord,
    ValidationRecord,
    token_records_from_tree,
    validation_records_from_feedback,
)
from repro.obs.quantiles import median, median_abs_deviation, nearest_rank
from repro.obs.recorder import FlightRecorder, RecordedTrace
from repro.obs.regression import (
    Finding,
    RegressionReport,
    Tolerance,
    apply_handicaps,
    compare_results,
    load_results,
    parse_handicap,
)
from repro.obs.sampler import SampleDecision, TailSampler
from repro.obs.slo import SLOEngine, SLOSpec, SLOTracker
from repro.obs.spans import Span, Trace, activate_trace, current_trace, span
from repro.obs.tracecontext import (
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

__all__ = [
    "ANSWER_DIGEST_VERSION",
    "EMPTY_ANSWER_DIGEST",
    "LATENCIES",
    "METRICS",
    "AuditLog",
    "ClauseRecord",
    "Counter",
    "Explanation",
    "Finding",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LatencyWindow",
    "MemorySpec",
    "MemoryTracker",
    "MetricsRegistry",
    "OperatorStats",
    "PlanStatsCollection",
    "ProfileSpec",
    "QueryProvenance",
    "ReadStats",
    "RecordedTrace",
    "RegressionReport",
    "SLOEngine",
    "SLOSpec",
    "SLOTracker",
    "SampleDecision",
    "SamplingProfiler",
    "Span",
    "TailSampler",
    "TokenRecord",
    "Tolerance",
    "Trace",
    "ValidationRecord",
    "activate_memory_tracking",
    "activate_plan_stats",
    "activate_profiling",
    "activate_trace",
    "answer_digest",
    "apply_handicaps",
    "audit_entry",
    "canonical_value",
    "chrome_trace",
    "chrome_trace_events",
    "chrome_trace_json",
    "collapsed_text",
    "compare_results",
    "current_memory_spec",
    "current_plan_stats",
    "current_profile_spec",
    "current_trace",
    "explain",
    "format_traceparent",
    "iter_records",
    "load_results",
    "median",
    "median_abs_deviation",
    "merge_profiles",
    "nearest_rank",
    "new_span_id",
    "new_trace_id",
    "normalize_answer",
    "operator",
    "parse_traceparent",
    "parse_handicap",
    "peak_rss_bytes",
    "prometheus_text",
    "read_audit_log",
    "span",
    "speedscope_document",
    "token_records_from_tree",
    "validation_records_from_feedback",
]
