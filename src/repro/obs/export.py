"""Standard-format exporters for traces and metrics.

Three dependency-free exporters turn the bespoke observability objects
into wire formats real tooling accepts:

* :func:`chrome_trace_events` / :func:`chrome_trace` — Chrome
  trace-event JSON.  Save it to a file and load it in
  ``chrome://tracing`` or https://ui.perfetto.dev to see a query's span
  tree on a timeline (one complete ``"ph": "X"`` event per span).
* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4) for a metrics-registry snapshot: counters become
  ``*_total`` counter samples, gauges become gauges, histograms become
  summaries with ``quantile`` labels plus ``_sum``/``_count``.
* :class:`LatencyWindow` — a sliding window of the last N observations
  per key with exact p50/p95/p99, feeding both the ``stats`` CLI and
  the Prometheus output (recent latency, not lifetime latency).

The module-level :data:`LATENCIES` window receives per-stage and
end-to-end latencies from every ``NaLIX.ask`` call, mirroring how
:data:`repro.obs.metrics.METRICS` receives the lifetime aggregates.
"""

from __future__ import annotations

import json
import re
from collections import deque

from repro.obs.quantiles import nearest_rank
from repro.analysis.racecheck import named_lock

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_DIGIT_RE = re.compile(r"^[0-9]")

#: Prefix for every exported metric name.
METRIC_PREFIX = "repro"


# -- Chrome trace-event JSON -----------------------------------------------


def chrome_trace_events(trace, pid=1, tid=1):
    """Flatten a :class:`~repro.obs.spans.Trace` into trace events.

    One complete event (``"ph": "X"``) per span; timestamps are the
    span's ``perf_counter`` readings in microseconds, so events from
    traces captured in the same process share a consistent timeline.
    Open spans (a trace captured mid-flight) are skipped.
    """
    events = []
    for span in trace.iter_spans():
        if span.ended_at is None:
            continue
        event = {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.started_at * 1e6,
            "dur": (span.ended_at - span.started_at) * 1e6,
            "pid": pid,
            "tid": tid,
        }
        args = dict(span.attributes)
        if span.status != "ok":
            args["status"] = span.status
        if args:
            event["args"] = {
                key: _jsonable(value) for key, value in args.items()
            }
        events.append(event)
    return events


def chrome_trace(traces, process_name="repro", names=None):
    """The full trace-event JSON document for one trace or a list.

    Each trace gets its own ``tid`` (so several queries exported
    together render as separate Perfetto tracks instead of overlapping
    on one) plus a ``thread_name`` metadata event.  ``names`` (optional,
    parallel to ``traces``) labels each track — the ``stats --format
    chrome`` exporter passes the query sentences, so the timeline reads
    as one lane per query.
    """
    if not isinstance(traces, (list, tuple)):
        traces = [traces]
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    for index, trace in enumerate(traces, start=1):
        label = None
        if names is not None and index - 1 < len(names):
            label = names[index - 1]
        if not label:
            label = f"query-{index}"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": index,
                "args": {"name": str(label)[:120]},
            }
        )
        events.extend(chrome_trace_events(trace, pid=1, tid=index))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(traces, process_name="repro", indent=None, names=None):
    return json.dumps(
        chrome_trace(traces, process_name=process_name, names=names),
        indent=indent,
    )


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# -- Prometheus text exposition format -------------------------------------


def prometheus_metric_name(name, suffix=""):
    """Sanitize a dotted metric name into a legal Prometheus name."""
    flat = _METRIC_NAME_RE.sub("_", name.replace(".", "_"))
    if _LEADING_DIGIT_RE.match(flat):
        flat = "_" + flat
    return f"{METRIC_PREFIX}_{flat}{suffix}"


def _format_value(value):
    if value is None:
        return "0"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def prometheus_text(snapshot, extra_lines=None):
    """Render a ``MetricsRegistry.snapshot()`` as exposition text.

    ``extra_lines`` (pre-rendered exposition lines, e.g. from
    :meth:`LatencyWindow.prometheus_lines`) are appended verbatim.  The
    output ends with a newline, as the format requires.
    """
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        metric = prometheus_metric_name(name, "_total")
        lines.append(f"# HELP {metric} Counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = prometheus_metric_name(name)
        lines.append(f"# HELP {metric} Gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = prometheus_metric_name(name)
        lines.append(f"# HELP {metric} Histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        for quantile in ("0.5", "0.95", "0.99"):
            key = "p" + quantile.replace("0.", "").ljust(2, "0")
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_format_value(summary.get(key))}"
            )
        lines.append(
            f"{metric}_sum {_format_value(summary.get('total', 0.0))}"
        )
        lines.append(f"{metric}_count {_format_value(summary.get('count', 0))}")
    if extra_lines:
        lines.extend(extra_lines)
    return "\n".join(lines) + "\n"


# -- Prometheus text exposition parsing -------------------------------------

_SAMPLE_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>\S+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"\\]*)"')
_EXEMPLAR_RE = re.compile(
    r"^\{(?P<labels>[^}]*)\}\s+(?P<value>\S+)(?:\s+\S+)?$"
)


def parse_prometheus_text(text):
    """Parse exposition text back into ``{name: {type, samples}}``.

    The inverse of :func:`prometheus_text`, used by ``repro stats
    --url`` and the load generator to read a live server's ``/metrics``
    endpoint.  Each entry is ``{"type": <TYPE or "untyped">, "samples":
    [(labels_dict, float_value), ...]}`` keyed by the *sample* metric
    name (so a summary's ``_sum``/``_count`` series appear under their
    own names).  Samples carrying an OpenMetrics exemplar (``value #
    {trace_id="..."} exemplar_value``) additionally land in the
    entry's ``"exemplars"`` list as ``(labels_dict, exemplar_labels,
    exemplar_value)`` triples.  Unparseable sample lines are skipped
    rather than raised on — a scrape should survive a
    partially-written exposition.
    """
    metrics = {}
    types = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) == 4:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        exemplar = None
        if " # " in line:
            line, _, exemplar_text = line.partition(" # ")
            line = line.rstrip()
            exemplar_match = _EXEMPLAR_RE.match(exemplar_text.strip())
            if exemplar_match is not None:
                try:
                    exemplar = (
                        dict(_LABEL_PAIR_RE.findall(
                            exemplar_match.group("labels")
                        )),
                        float(exemplar_match.group("value")),
                    )
                except ValueError:
                    exemplar = None
        match = _SAMPLE_LINE_RE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        name = match.group("name")
        labels = dict(_LABEL_PAIR_RE.findall(match.group("labels") or ""))
        entry = metrics.setdefault(
            name, {"type": None, "samples": [], "exemplars": []}
        )
        entry["samples"].append((labels, value))
        if exemplar is not None:
            entry["exemplars"].append((labels, exemplar[0], exemplar[1]))
    for name, entry in metrics.items():
        base = name
        for suffix in ("_sum", "_count", "_total", "_bucket"):
            if base.endswith(suffix) and base[: -len(suffix)] in types:
                base = base[: -len(suffix)]
                break
        entry["type"] = types.get(name, types.get(base, "untyped"))
    return metrics


def prometheus_sample_value(metrics, name, labels=None):
    """The first sample value of ``name`` matching ``labels`` (or None).

    ``labels`` (a dict) must be a subset of a sample's label set to
    match; with ``labels=None`` the first sample wins.
    """
    entry = metrics.get(name)
    if entry is None:
        return None
    for sample_labels, value in entry["samples"]:
        if labels is None or all(
            sample_labels.get(key) == str(wanted)
            for key, wanted in labels.items()
        ):
            return value
    return None


def prometheus_sample_exemplar(metrics, name, labels=None):
    """The first exemplar of ``name`` matching ``labels``, or None.

    Returns ``(exemplar_labels, exemplar_value)`` — for the serving
    exposition, ``exemplar_labels`` carries the ``trace_id`` that
    resolves to a record in the server's flight recorder.
    """
    entry = metrics.get(name)
    if entry is None:
        return None
    for sample_labels, exemplar_labels, value in entry.get("exemplars", ()):
        if labels is None or all(
            sample_labels.get(key) == str(wanted)
            for key, wanted in labels.items()
        ):
            return exemplar_labels, value
    return None


# -- sliding-window latency tracking ---------------------------------------


class LatencyWindow:
    """Exact percentiles over the last ``window`` observations per key.

    Thread-safe: ``NaLIX.ask`` may be called from concurrent threads.
    Keys are free-form (the pipeline uses the stage span names plus
    ``total`` for end-to-end latency).

    Observations may carry an **exemplar** — a trace id of a request
    retained by the flight recorder — and :meth:`prometheus_lines`
    attaches the exemplar nearest each quantile to that quantile's
    sample line in the OpenMetrics ``# {trace_id="..."} value`` syntax,
    so a scraped p99 links straight to a recorded trace.
    """

    def __init__(self, window=256):
        self.window = window
        self._samples = {}  # key -> deque of (seconds, exemplar | None)
        self._lock = named_lock("obs.window")

    def observe(self, key, seconds, exemplar=None):
        with self._lock:
            samples = self._samples.get(key)
            if samples is None:
                samples = self._samples[key] = deque(maxlen=self.window)
            samples.append((seconds, exemplar))

    def reset(self):
        with self._lock:
            self._samples.clear()

    def _values(self, key):
        with self._lock:
            return list(self._samples.get(key, ()))

    def quantiles(self, key):
        """``{count, mean, p50, p95, p99}`` for one key (zeros if empty)."""
        samples = [seconds for seconds, _ in self._values(key)]
        if not samples:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0}
        ordered = sorted(samples)
        count = len(ordered)
        return {
            "count": count,
            "mean": sum(ordered) / count,
            "p50": nearest_rank(ordered, 0.50),
            "p95": nearest_rank(ordered, 0.95),
            "p99": nearest_rank(ordered, 0.99),
        }

    def exemplar_near(self, key, seconds):
        """``(exemplar, sample_seconds)`` closest to ``seconds``, or None.

        Prefers the exemplared sample with the smallest latency at or
        above the requested value (the trace that *is* that quantile's
        tail), falling back to the largest exemplared sample.
        """
        candidates = [
            (value, exemplar)
            for value, exemplar in self._values(key)
            if exemplar is not None
        ]
        if not candidates:
            return None
        at_or_above = [pair for pair in candidates if pair[0] >= seconds]
        value, exemplar = (
            min(at_or_above) if at_or_above else max(candidates)
        )
        return exemplar, value

    def snapshot(self):
        with self._lock:
            keys = sorted(self._samples)
        return {key: self.quantiles(key) for key in keys}

    def prometheus_lines(self):
        """Exposition lines: one summary per key over the recent window."""
        lines = []
        for key, quantiles in self.snapshot().items():
            metric = prometheus_metric_name(f"window.{key}.seconds")
            lines.append(
                f"# HELP {metric} Sliding-window latency for {key} "
                f"(last {self.window} observations)"
            )
            lines.append(f"# TYPE {metric} summary")
            for label, field in (("0.5", "p50"), ("0.95", "p95"),
                                 ("0.99", "p99")):
                line = (
                    f'{metric}{{quantile="{label}"}} '
                    f"{_format_value(quantiles[field])}"
                )
                near = self.exemplar_near(key, quantiles[field])
                if near is not None:
                    exemplar, seconds = near
                    line += (
                        f' # {{trace_id="{exemplar}"}} '
                        f"{_format_value(seconds)}"
                    )
                lines.append(line)
            lines.append(
                f"{metric}_sum "
                f"{_format_value(quantiles['mean'] * quantiles['count'])}"
            )
            lines.append(f"{metric}_count {quantiles['count']}")
        return lines

    def __repr__(self):
        return f"LatencyWindow({len(self._samples)} keys, n={self.window})"


#: Process-wide sliding-window latency tracker fed by ``NaLIX.ask``.
LATENCIES = LatencyWindow()
