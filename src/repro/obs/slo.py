"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOSpec` declares one objective over the serving layer's
request stream:

* ``availability`` — at least ``target`` of requests must *succeed*
  (the server counts a request as good when it produced a usable
  answer: any non-5xx response);
* ``latency`` — at least ``target`` of *successful* requests must
  finish under ``threshold_seconds``.

Specs parse from compact strings so they can ride CLI flags::

    availability:0.99            # 99% of requests succeed
    latency:0.99@0.5             # 99% of successes under 500 ms
    availability:0.999@/query    # scoped to one endpoint

The :class:`SLOEngine` evaluates every spec over two rolling
time-windows — **fast** (default 5 minutes) and **slow** (default 1
hour) — in the Google-SRE multi-window multi-burn-rate style.  The burn
rate of a window is ``bad_fraction / (1 - target)``: 1.0 means the
error budget is being consumed exactly at the sustainable rate, 10
means ten times too fast.  The engine *alerts* (and fires the
``on_fast_burn`` hook, which the server wires to a flight-recorder
dump) only when **both** windows exceed the burn threshold — the slow
window proves the problem is real, the fast window proves it is still
happening — with edge-triggered hysteresis so one episode produces one
dump, not one per request.

Everything is clock-injectable and lock-protected; windows are
time-bucketed ring buffers (no unbounded growth, O(buckets) reads).
``prometheus_lines()`` emits the labeled ``repro_slo_burn_rate`` /
``repro_slo_error_budget_remaining`` gauges the ``/metrics`` endpoint
and ``repro stats --url`` read.
"""

from __future__ import annotations

import time

from repro.obs.metrics import METRICS
from repro.analysis.racecheck import named_lock

_ALERTS = METRICS.counter("obs.slo.fast_burn_alerts")

#: Default rolling windows (seconds): Google-SRE fast 5m / slow 1h.
DEFAULT_FAST_SECONDS = 300.0
DEFAULT_SLOW_SECONDS = 3600.0

#: Default burn-rate both windows must exceed to page.  14.4 is the
#: canonical "2% of a 30-day budget in one hour" page threshold.
DEFAULT_FAST_BURN_THRESHOLD = 14.4

#: Buckets per rolling window (granularity = window / buckets).
WINDOW_BUCKETS = 60


class SLOSpec:
    """One declarative objective: kind, target, optional scope."""

    KINDS = ("availability", "latency")

    __slots__ = ("kind", "target", "threshold_seconds", "endpoint", "name")

    def __init__(self, kind, target, threshold_seconds=None, endpoint=None,
                 name=None):
        if kind not in self.KINDS:
            raise ValueError(
                f"SLO kind must be one of {self.KINDS}, got {kind!r}"
            )
        if not 0.0 < target < 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1), got {target!r}"
            )
        if kind == "latency":
            if threshold_seconds is None or threshold_seconds <= 0:
                raise ValueError(
                    "a latency SLO needs a positive threshold_seconds"
                )
        elif threshold_seconds is not None:
            raise ValueError(
                "threshold_seconds only applies to latency SLOs"
            )
        self.kind = kind
        self.target = target
        self.threshold_seconds = threshold_seconds
        self.endpoint = endpoint
        self.name = name or self._default_name()

    def _default_name(self):
        scope = (self.endpoint or "all").strip("/").replace("/", "-") or "all"
        if self.kind == "latency":
            return f"latency-{scope}"
        return f"availability-{scope}"

    @classmethod
    def parse(cls, text):
        """Parse ``kind:target[@threshold][@endpoint]`` spec strings.

        The ``@`` parts are positional by type: a number is the latency
        threshold, a ``/``-prefixed token is the endpoint scope.
        Examples: ``availability:0.99``, ``latency:0.95@0.3``,
        ``latency:0.99@0.5@/query``.
        """
        head, separator, rest = text.strip().partition(":")
        if not separator:
            raise ValueError(
                f"bad SLO spec {text!r}: expected kind:target, "
                "e.g. availability:0.99 or latency:0.99@0.5"
            )
        kind = head.strip()
        parts = [part.strip() for part in rest.split("@") if part.strip()]
        if not parts:
            raise ValueError(f"bad SLO spec {text!r}: missing target")
        try:
            target = float(parts[0])
        except ValueError:
            raise ValueError(
                f"bad SLO spec {text!r}: target {parts[0]!r} is not a number"
            ) from None
        threshold = None
        endpoint = None
        for part in parts[1:]:
            if part.startswith("/"):
                endpoint = part
            else:
                try:
                    threshold = float(part)
                except ValueError:
                    raise ValueError(
                        f"bad SLO spec {text!r}: {part!r} is neither a "
                        "threshold nor an /endpoint"
                    ) from None
        return cls(kind, target, threshold_seconds=threshold,
                   endpoint=endpoint)

    def matches(self, endpoint):
        return self.endpoint is None or self.endpoint == endpoint

    def classify(self, ok, seconds):
        """``True``/``False`` when the event counts good/bad; ``None``
        when it does not count toward this SLO at all."""
        if self.kind == "availability":
            return bool(ok)
        if not ok:
            return None  # latency SLI is over successful requests only
        return seconds <= self.threshold_seconds

    def to_dict(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "threshold_seconds": self.threshold_seconds,
            "endpoint": self.endpoint,
        }

    def __repr__(self):
        scope = f" {self.endpoint}" if self.endpoint else ""
        threshold = (
            f" <{self.threshold_seconds:g}s" if self.threshold_seconds
            else ""
        )
        return f"SLOSpec({self.kind} >={self.target:g}{threshold}{scope})"


def default_serving_slos():
    """The out-of-the-box serving objectives: 99% availability and
    99% of successful ``/query`` requests under one second."""
    return (
        SLOSpec("availability", 0.99, endpoint="/query"),
        SLOSpec("latency", 0.99, threshold_seconds=1.0, endpoint="/query"),
    )


class _RollingWindow:
    """Good/bad counts over the trailing ``seconds``, time-bucketed.

    A fixed ring of ``buckets`` (start_time, good, bad) triples; writes
    land in the current bucket, reads sum every bucket still inside the
    window.  Memory is O(buckets) forever.  Callers hold the engine
    lock, so the ring itself needs none.
    """

    __slots__ = ("seconds", "granularity", "_buckets")

    def __init__(self, seconds, buckets=WINDOW_BUCKETS):
        self.seconds = seconds
        self.granularity = seconds / buckets
        self._buckets = {}  # bucket index -> [good, bad]

    def _index(self, now):
        return int(now // self.granularity)

    def record(self, good, now):
        index = self._index(now)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._prune(index)
            bucket = self._buckets[index] = [0, 0]
        bucket[0 if good else 1] += 1

    def _prune(self, current_index):
        horizon = current_index - int(self.seconds / self.granularity)
        for index in [i for i in self._buckets if i <= horizon]:
            del self._buckets[index]

    def totals(self, now):
        """``(good, bad)`` inside the window ending at ``now``."""
        horizon = self._index(now) - int(self.seconds / self.granularity)
        good = bad = 0
        for index, bucket in self._buckets.items():
            if index > horizon:
                good += bucket[0]
                bad += bucket[1]
        return good, bad


class SLOTracker:
    """One spec + its fast/slow rolling windows + alert state."""

    __slots__ = ("spec", "fast", "slow", "alerting")

    def __init__(self, spec, fast_seconds, slow_seconds):
        self.spec = spec
        self.fast = _RollingWindow(fast_seconds)
        self.slow = _RollingWindow(slow_seconds)
        self.alerting = False

    def record(self, good, now):
        self.fast.record(good, now)
        self.slow.record(good, now)

    def burn_rate(self, window, now):
        good, bad = window.totals(now)
        total = good + bad
        if not total:
            return 0.0
        bad_fraction = bad / total
        return bad_fraction / (1.0 - self.spec.target)

    def error_budget_remaining(self, now):
        """Fraction of the slow window's error budget still unspent."""
        good, bad = self.slow.totals(now)
        total = good + bad
        if not total:
            return 1.0
        budget = total * (1.0 - self.spec.target)
        if budget <= 0.0:
            return 0.0 if bad else 1.0
        return max(0.0, 1.0 - bad / budget)

    def snapshot(self, now, fast_burn_threshold):
        fast_good, fast_bad = self.fast.totals(now)
        slow_good, slow_bad = self.slow.totals(now)
        entry = self.spec.to_dict()
        entry.update({
            "windows": {
                "fast": {
                    "seconds": self.fast.seconds,
                    "good": fast_good,
                    "bad": fast_bad,
                    "burn_rate": self.burn_rate(self.fast, now),
                },
                "slow": {
                    "seconds": self.slow.seconds,
                    "good": slow_good,
                    "bad": slow_bad,
                    "burn_rate": self.burn_rate(self.slow, now),
                },
            },
            "error_budget_remaining": self.error_budget_remaining(now),
            "fast_burn_threshold": fast_burn_threshold,
            "alerting": self.alerting,
        })
        return entry


class SLOEngine:
    """Evaluate a set of SLO specs over the live request stream.

    ``record_request(endpoint, ok, seconds)`` is the single write path
    (the server calls it once per finished request); every read surface
    — ``snapshot()`` for ``/statusz``, ``prometheus_lines()`` for
    ``/metrics`` — derives from the same rolling windows.  The
    ``on_fast_burn(spec, snapshot)`` hook fires on the *transition*
    into the alerting state (both windows over the threshold), and the
    tracker re-arms only after the fast window drops back under — one
    incident, one callback.
    """

    def __init__(self, specs=None, fast_seconds=DEFAULT_FAST_SECONDS,
                 slow_seconds=DEFAULT_SLOW_SECONDS,
                 fast_burn_threshold=DEFAULT_FAST_BURN_THRESHOLD,
                 on_fast_burn=None, clock=time.monotonic):
        if specs is None:
            specs = default_serving_slos()
        self.fast_burn_threshold = fast_burn_threshold
        self.on_fast_burn = on_fast_burn
        self._clock = clock
        self._lock = named_lock("obs.slo")
        self._trackers = [
            SLOTracker(spec, fast_seconds, slow_seconds) for spec in specs
        ]

    def __len__(self):
        return len(self._trackers)

    @property
    def specs(self):
        return [tracker.spec for tracker in self._trackers]

    def record_request(self, endpoint, ok, seconds, now=None):
        """Feed one finished request to every matching spec.

        Returns the specs that newly entered the alerting state (the
        server uses the names to label auto-dumps).
        """
        if now is None:
            now = self._clock()
        fired = []
        with self._lock:
            for tracker in self._trackers:
                if not tracker.spec.matches(endpoint):
                    continue
                good = tracker.spec.classify(ok, seconds)
                if good is None:
                    continue
                tracker.record(good, now)
                fast_burn = tracker.burn_rate(tracker.fast, now)
                slow_burn = tracker.burn_rate(tracker.slow, now)
                over = (fast_burn >= self.fast_burn_threshold
                        and slow_burn >= self.fast_burn_threshold)
                if over and not tracker.alerting:
                    tracker.alerting = True
                    _ALERTS.inc()
                    fired.append(tracker)
                elif not over and tracker.alerting:
                    if fast_burn < self.fast_burn_threshold:
                        tracker.alerting = False  # re-arm after recovery
        for tracker in fired:
            if self.on_fast_burn is not None:
                try:
                    self.on_fast_burn(
                        tracker.spec,
                        tracker.snapshot(now, self.fast_burn_threshold),
                    )
                except Exception:
                    METRICS.inc("obs.slo.hook_errors")
        return [tracker.spec for tracker in fired]

    def snapshot(self, now=None):
        """Per-SLO state for ``/statusz`` and ``repro stats``."""
        if now is None:
            now = self._clock()
        with self._lock:
            return [
                tracker.snapshot(now, self.fast_burn_threshold)
                for tracker in self._trackers
            ]

    def prometheus_lines(self, now=None):
        """Labeled gauge lines for the ``/metrics`` exposition."""
        entries = self.snapshot(now)
        if not entries:
            return []
        lines = [
            "# HELP repro_slo_burn_rate Error-budget burn rate per SLO "
            "and window (1.0 = sustainable)",
            "# TYPE repro_slo_burn_rate gauge",
        ]
        for entry in entries:
            for window in ("fast", "slow"):
                lines.append(
                    f'repro_slo_burn_rate{{slo="{entry["name"]}",'
                    f'window="{window}"}} '
                    f'{entry["windows"][window]["burn_rate"]:.6g}'
                )
        lines.append(
            "# HELP repro_slo_error_budget_remaining Fraction of the "
            "slow-window error budget left"
        )
        lines.append("# TYPE repro_slo_error_budget_remaining gauge")
        for entry in entries:
            lines.append(
                f'repro_slo_error_budget_remaining{{slo="{entry["name"]}"}} '
                f'{entry["error_budget_remaining"]:.6g}'
            )
        lines.append(
            "# HELP repro_slo_fast_burn_alert 1 while the multi-window "
            "burn-rate alert is firing"
        )
        lines.append("# TYPE repro_slo_fast_burn_alert gauge")
        for entry in entries:
            lines.append(
                f'repro_slo_fast_burn_alert{{slo="{entry["name"]}"}} '
                f'{1 if entry["alerting"] else 0}'
            )
        return lines

    def __repr__(self):
        return (
            f"SLOEngine({len(self._trackers)} SLOs, "
            f"threshold={self.fast_burn_threshold:g})"
        )
