"""The explain engine: render a query's provenance as a lineage report.

Given a finished ``QueryResult`` (duck-typed — this module imports
nothing from ``repro.core``), :func:`explain` builds an
:class:`Explanation` that renders the full word → token → clause story:

1. how every word was classified (Tables 1–2 rules);
2. what the validator found, with the Table 6 production per finding;
3. which tokens produced which XQuery clause (Fig. 4 direct mapping,
   Fig. 5 marker semantics, Fig. 6 nesting scopes);
4. the emitted FLWOR;
5. static-analysis findings from the qlint gate, when any fired
   (``repro.analysis``; a clean analysis renders nothing);
6. the executed plan with per-operator row counts, cache hits and wall
   times (``EXPLAIN ANALYZE`` style);
7. per-stage wall times from the trace;
8. the memory account, when the query ran with tracking on: per-stage
   allocation deltas and the top-N allocation sites by retained size.

``render_text(timings=False)`` omits every wall-clock number, giving a
deterministic report — that is what the golden-file tests pin down.
``to_dict()`` is the JSON twin used by ``--json`` and the audit trail.
"""

from __future__ import annotations

import json

#: Pipeline stages rendered in the timing section, in execution order.
_STAGES = ("parse", "classify", "validate", "translate", "analyze",
           "xquery-parse", "evaluate", "evaluate-naive", "evaluate-keyword")


class Explanation:
    """A rendered view over one query's provenance, plan, and trace."""

    def __init__(self, result):
        self.result = result
        self.provenance = getattr(result, "provenance", None)
        self.plan_stats = getattr(result, "plan_stats", None)
        self.trace = getattr(result, "trace", None)
        self.memory = getattr(result, "memory", None)
        self.analysis = getattr(result, "analysis", None)

    # -- JSON ---------------------------------------------------------------

    def to_dict(self, timings=True):
        result = self.result
        entry = {
            "sentence": result.sentence,
            "status": getattr(result, "status", None),
            "xquery": getattr(result, "xquery_text", None),
        }
        if self.provenance is not None:
            entry["provenance"] = self.provenance.to_dict()
        if self.analysis is not None and self.analysis.findings:
            entry["analysis"] = self.analysis.to_dict()
        if self.plan_stats:
            entry["plan"] = self.plan_stats.to_dict()
        if timings and self.trace is not None:
            entry["stage_seconds"] = {
                stage: seconds
                for stage in _STAGES
                if (seconds := self.trace.stage_seconds(stage)) > 0.0
            }
            entry["total_seconds"] = self.trace.total_seconds()
        if self.memory is not None and self.memory.tracked:
            entry["memory"] = self.memory.to_dict()
        degradation = getattr(result, "degradation_path", None)
        if degradation:
            entry["degradation_path"] = list(degradation)
        return entry

    def to_json(self, timings=True, indent=2):
        return json.dumps(self.to_dict(timings=timings), indent=indent)

    # -- text ---------------------------------------------------------------

    def render_text(self, timings=True):
        sections = [self._header()]
        if self.provenance is not None and self.provenance.tokens:
            sections.append(self._token_section())
            if self.provenance.validations:
                sections.append(self._validation_section())
            if self.provenance.clauses:
                sections.append(self._lineage_section())
        xquery = self._xquery_section()
        if xquery:
            sections.append(xquery)
        # Only rendered when something fired: a clean analysis adds no
        # noise (and keeps the finding-free golden reports stable).
        if self.analysis is not None and self.analysis.findings:
            sections.append(self._analysis_section())
        if self.plan_stats:
            sections.append(self._plan_section(timings))
        if timings and self.trace is not None:
            sections.append(self._timing_section())
        if self.memory is not None and self.memory.tracked:
            sections.append(self._memory_section())
        return "\n\n".join(sections)

    def _header(self):
        result = self.result
        lines = [f"EXPLAIN {result.sentence!r}"]
        status = getattr(result, "status", None)
        if status is not None:
            lines.append(f"status: {status}")
        degradation = getattr(result, "degradation_path", None)
        if degradation:
            lines.append(f"degradation path: {' -> '.join(degradation)}")
        return "\n".join(lines)

    def _token_section(self):
        lines = ["Token classification (Tables 1-2):"]
        for token in self.provenance.tokens:
            node_id = "?" if token.node_id is None else token.node_id
            line = (
                f"  ({node_id:>2}) {token.word:<22} "
                f"{token.token_type:<8} {token.rule}"
            )
            if token.detail:
                line += f"  [{token.detail}]"
            lines.append(line)
        return "\n".join(lines)

    def _validation_section(self):
        lines = ["Validator findings (Sec. 4 / Table 6):"]
        for record in self.provenance.validations:
            where = ""
            if record.word is not None:
                where = f' at "{record.word}"'
                if record.node_id is not None:
                    where += f" ({record.node_id})"
            lines.append(
                f"  {record.kind:<8} {record.code}{where}"
            )
            lines.append(f"           production: {record.production}")
        return "\n".join(lines)

    def _lineage_section(self):
        lines = ["Clause lineage (Figs. 4-6):"]
        for clause in self.provenance.clauses:
            lines.append(f"  {clause.clause:<9} {clause.fragment}")
            cited = ", ".join(
                f"{word}({node_id})"
                for word, node_id in zip(clause.words, clause.token_ids)
            )
            source = f"from {cited}" if cited else "from no source token"
            lines.append(f"           <- {source}  [{clause.pattern}]")
        return "\n".join(lines)

    def _xquery_section(self):
        translation = getattr(self.result, "translation", None)
        text = None
        if translation is not None:
            text = getattr(translation, "pretty_text", None)
        if text is None:
            text = getattr(self.result, "xquery_text", None)
        if not text:
            return None
        indented = "\n".join("  " + line for line in text.splitlines())
        return f"XQuery:\n{indented}"

    def _analysis_section(self):
        lines = ["Static analysis (qlint findings):"]
        for finding in self.analysis.findings:
            lines.append(
                f"  {finding.severity:<8} {finding.rule_id} "
                f"{finding.render()}"
            )
        return "\n".join(lines)

    def _plan_section(self, timings):
        rendered = self.plan_stats.render(timings=timings)
        indented = "\n".join("  " + line for line in rendered.splitlines())
        return f"Plan (per-operator statistics):\n{indented}"

    def _memory_section(self):
        memory = self.memory
        lines = ["Memory (tracemalloc deltas + peak RSS):"]
        for stage in _STAGES:
            stats = memory.stages.get(stage)
            if stats is None:
                continue
            lines.append(
                f"  {stage:<16}{stats['alloc_bytes'] / 1024.0:>10.1f} KiB "
                f"(peak {stats['peak_alloc_bytes'] / 1024.0:.1f} KiB)"
            )
        if memory.alloc_bytes is not None:
            lines.append(
                f"  {'query total':<16}"
                f"{memory.alloc_bytes / 1024.0:>10.1f} KiB "
                f"(peak {memory.peak_alloc_bytes / 1024.0:.1f} KiB)"
            )
        lines.append(
            f"  {'peak rss':<16}"
            f"{memory.peak_rss_bytes / (1024.0 * 1024.0):>10.1f} MiB"
        )
        if memory.top_sites:
            lines.append("  top allocation sites:")
            for site in memory.top_sites:
                lines.append(
                    f"    {site['size_bytes'] / 1024.0:>9.1f} KiB  "
                    f"{site['count']:>6}x  {site['site']}"
                )
        return "\n".join(lines)

    def _timing_section(self):
        lines = ["Stage timings:"]
        for stage in _STAGES:
            seconds = self.trace.stage_seconds(stage)
            if seconds > 0.0:
                lines.append(f"  {stage:<16}{seconds * 1000:>9.2f} ms")
        lines.append(
            f"  {'total':<16}{self.trace.total_seconds() * 1000:>9.2f} ms"
        )
        return "\n".join(lines)

    def __repr__(self):
        return f"Explanation({self.result.sentence[:40]!r})"


def explain(result):
    """Build the :class:`Explanation` for a finished query result."""
    return Explanation(result)
