"""Tail-based trace sampling: keep what an incident review will need.

Head sampling ("keep 1%") throws away exactly the traces that matter —
the errors and the latency tail are rare by definition.  The
:class:`TailSampler` decides retention *after* the request finishes, so
it can look at the outcome:

* **always retain** anything abnormal: ``internal`` / ``exhausted``
  error classes, failed/degraded results, and requests the watchdog
  stamped stuck or force-expired;
* **always retain the slow tail**: any request slower than the rolling
  p95 of recent latencies (once enough samples exist to trust a p95);
* **head-sample the healthy rest** at ``head_rate`` — deterministic
  every-Nth-request sampling, not a coin flip, so the retained fraction
  is exactly bounded and chaos-benchmark assertions do not flap.

Decisions carry a reason (``error`` / ``degraded`` / ``watchdog`` /
``slow`` / ``head``) that becomes the flight-recorder record's
``reason`` field and the ``obs.sampler.retained.*`` counters.  The
rolling latency window is a deque plus a sorted mirror, so the p95
lookup is O(1) and maintenance is O(window) memmove on floats — cheap
enough to sit on the serving hot path.
"""

from __future__ import annotations

import bisect
import math
from collections import deque

from repro.obs.metrics import METRICS
from repro.analysis.racecheck import named_lock

#: Default fraction of healthy traffic head-sampled into the recorder.
DEFAULT_HEAD_RATE = 0.1

#: Rolling latencies kept for the p95 slow-tail threshold.
DEFAULT_WINDOW = 512

#: Observations required before the slow-tail rule trusts its p95.
MIN_TAIL_SAMPLES = 20

_DECISIONS = METRICS.counter("obs.sampler.decisions")
_DROPPED = METRICS.counter("obs.sampler.dropped")
_RETAINED = {
    reason: METRICS.counter(f"obs.sampler.retained.{reason}")
    for reason in ("error", "degraded", "watchdog", "slow", "head")
}


class SampleDecision:
    """One sampling verdict: retain or drop, and why."""

    __slots__ = ("retain", "reason")

    def __init__(self, retain, reason):
        self.retain = retain
        self.reason = reason

    def __bool__(self):
        return self.retain

    def __repr__(self):
        verb = "retain" if self.retain else "drop"
        return f"SampleDecision({verb}:{self.reason})"


class TailSampler:
    """Outcome-aware retention decisions for finished requests."""

    def __init__(self, head_rate=DEFAULT_HEAD_RATE, window=DEFAULT_WINDOW,
                 min_tail_samples=MIN_TAIL_SAMPLES):
        if not 0.0 <= head_rate <= 1.0:
            raise ValueError(
                f"head_rate must be in [0, 1], got {head_rate!r}"
            )
        self.head_rate = head_rate
        self.min_tail_samples = min_tail_samples
        # Every healthy request advances the counter; one in
        # ``_head_every`` is retained.  head_rate 0 disables entirely.
        self._head_every = int(round(1.0 / head_rate)) if head_rate else 0
        self._lock = named_lock("obs.sampler")
        self._recent = deque(maxlen=window)
        self._sorted = []  # sorted mirror of _recent for O(1) p95 reads
        self._healthy_count = 0
        # Category accounting for the chaos-benchmark retention gates.
        self._seen = {"error": 0, "degraded": 0, "slow": 0, "healthy": 0}
        self._kept = {"error": 0, "degraded": 0, "slow": 0, "healthy": 0}

    # -- the decision -------------------------------------------------------

    def decide(self, status=None, error_class=None, seconds=0.0,
               stuck=False, expired=False):
        """The retention verdict for one finished request."""
        _DECISIONS.inc()
        threshold = self._observe(seconds)
        if stuck or expired:
            return self._retain("watchdog", "error")
        if error_class in ("internal", "exhausted") or status == "failed":
            return self._retain("error", "error")
        if error_class == "degraded" or status == "degraded":
            return self._retain("degraded", "degraded")
        if threshold is not None and seconds > threshold:
            return self._retain("slow", "slow")
        with self._lock:
            self._seen["healthy"] += 1
            self._healthy_count += 1
            keep = (self._head_every
                    and self._healthy_count % self._head_every == 0)
            if keep:
                self._kept["healthy"] += 1
        if keep:
            _RETAINED["head"].inc()
            return SampleDecision(True, "head")
        _DROPPED.inc()
        return SampleDecision(False, "drop")

    def _retain(self, reason, category):
        with self._lock:
            self._seen[category] += 1
            self._kept[category] += 1
        _RETAINED[reason].inc()
        return SampleDecision(True, reason)

    def _observe(self, seconds):
        """Feed one latency; return the current p95 (or None)."""
        with self._lock:
            if len(self._recent) == self._recent.maxlen:
                stale = self._recent.popleft()
                index = bisect.bisect_left(self._sorted, stale)
                if index < len(self._sorted):
                    del self._sorted[index]
            self._recent.append(seconds)
            bisect.insort(self._sorted, seconds)
            return self._p95_locked()

    def _p95_locked(self):
        """Nearest-rank p95 over the sorted mirror (caller holds lock)."""
        count = len(self._sorted)
        if count < self.min_tail_samples:
            return None
        rank = max(0, math.ceil(0.95 * count) - 1)
        return self._sorted[rank]

    def tail_threshold(self):
        """The live slow-tail threshold (p95), or None while warming."""
        with self._lock:
            return self._p95_locked()

    # -- introspection ------------------------------------------------------

    def snapshot(self):
        """Retention accounting for ``/statusz`` and the chaos gates."""
        with self._lock:
            seen = dict(self._seen)
            kept = dict(self._kept)
        def fraction(category):
            return kept[category] / seen[category] if seen[category] else None
        return {
            "head_rate": self.head_rate,
            "tail_threshold_seconds": self.tail_threshold(),
            "seen": seen,
            "retained": kept,
            "retention": {
                category: fraction(category)
                for category in ("error", "degraded", "slow", "healthy")
            },
        }

    def __repr__(self):
        return (
            f"TailSampler(head_rate={self.head_rate:g}, "
            f"window={self._recent.maxlen})"
        )
