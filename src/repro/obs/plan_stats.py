"""Per-operator plan statistics (``EXPLAIN ANALYZE`` for FLWORs).

The evaluator and planner report one :class:`OperatorStats` node per
plan operator — candidate scans, mqf structural joins, let evaluation
(with cache hit counts), residual filtering, ordering, and the return
projection — into whatever :class:`PlanStatsCollection` is active in
the current context.  ``NaLIX.ask`` activates a collection per query
and attaches it to ``QueryResult.plan_stats``; code running outside an
active collection pays a single ContextVar read per operator
(:func:`operator` returns a shared no-op).

The design mirrors :mod:`repro.obs.spans` (a ContextVar plus an
open-operator stack) but keeps *rows*, not just wall time: every
operator records ``rows_in``/``rows_out`` and free-form attributes, and
timing may be accumulated across a scattered hot loop with explicit
``start()``/``stop()`` calls (used by the per-tuple let-cache path,
whose work is interleaved with other operators).
"""

from __future__ import annotations

import time
from contextvars import ContextVar


class OperatorStats:
    """One plan operator: rows in/out, accumulated wall time, attributes."""

    __slots__ = ("name", "detail", "rows_in", "rows_out", "seconds",
                 "attributes", "children", "_stack", "_started")

    def __init__(self, name, detail=""):
        self.name = name
        self.detail = detail
        self.rows_in = None
        self.rows_out = None
        self.seconds = 0.0
        self.attributes = {}
        self.children = []
        self._stack = None
        self._started = None

    # -- timing ------------------------------------------------------------

    def start(self):
        """Start (or resume) the clock; pairs with :meth:`stop`."""
        self._started = time.perf_counter()

    def stop(self):
        """Accumulate elapsed time since the last :meth:`start`."""
        if self._started is not None:
            self.seconds += time.perf_counter() - self._started
            self._started = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        stack = self._stack
        if stack is not None:
            if self in stack:
                while stack[-1] is not self:
                    stack.pop().stop()
                stack.pop()
            self._stack = None
        return False

    # -- data --------------------------------------------------------------

    def set(self, key, value):
        self.attributes[key] = value

    def to_dict(self):
        entry = {"operator": self.name, "seconds": self.seconds}
        if self.detail:
            entry["detail"] = self.detail
        if self.rows_in is not None:
            entry["rows_in"] = self.rows_in
        if self.rows_out is not None:
            entry["rows_out"] = self.rows_out
        if self.attributes:
            entry["attributes"] = dict(self.attributes)
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry

    def render(self, prefix="", last=True, top=True, timings=True):
        """One ``EXPLAIN ANALYZE``-style line per operator."""
        connector = "" if top else ("└─ " if last else "├─ ")
        parts = [self.name]
        if self.detail:
            parts.append(self.detail)
        if self.rows_in is not None and self.rows_out is not None:
            parts.append(f"rows={self.rows_in}→{self.rows_out}")
        elif self.rows_out is not None:
            parts.append(f"rows={self.rows_out}")
        for key, value in self.attributes.items():
            parts.append(f"{key}={value}")
        if timings:
            parts.append(f"({self.seconds * 1000:.2f} ms)")
        lines = [prefix + connector + "  ".join(parts)]
        child_prefix = prefix if top else prefix + ("   " if last else "│  ")
        for index, child in enumerate(self.children):
            lines.append(
                child.render(
                    prefix=child_prefix,
                    last=index == len(self.children) - 1,
                    top=False,
                    timings=timings,
                )
            )
        return "\n".join(lines)

    def iter_operators(self):
        yield self
        for child in self.children:
            yield from child.iter_operators()

    def find(self, name):
        for node in self.iter_operators():
            if node.name == name:
                return node
        return None

    def __repr__(self):
        return (
            f"OperatorStats({self.name!r}, rows={self.rows_in}->"
            f"{self.rows_out}, {self.seconds * 1000:.2f} ms)"
        )


class PlanStatsCollection:
    """The per-query forest of operator stats (one tree per FLWOR).

    ``max_operators`` bounds the tree: evaluators may recurse per tuple
    (the naive path evaluates nested FLWORs in a loop), so past the cap
    new operators become shared no-ops and ``truncated`` is set — the
    cap is visible in renders, never silent.
    """

    __slots__ = ("roots", "_stack", "max_operators", "_count", "truncated")

    def __init__(self, max_operators=512):
        self.roots = []
        self._stack = []
        self.max_operators = max_operators
        self._count = 0
        self.truncated = False

    def operator(self, name, detail=""):
        """Open an operator node nested under the innermost open one."""
        if self._count >= self.max_operators:
            self.truncated = True
            return _NOOP_OPERATOR
        self._count += 1
        node = OperatorStats(name, detail)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        node._stack = self._stack
        return node

    def finish_open_operators(self):
        """Stop any operators left open by an exception path."""
        while self._stack:
            self._stack.pop().stop()

    def iter_operators(self):
        for root in self.roots:
            yield from root.iter_operators()

    def find(self, name):
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self):
        data = {"operators": [root.to_dict() for root in self.roots]}
        if self.truncated:
            data["truncated"] = True
        return data

    def render(self, timings=True):
        lines = [root.render(timings=timings) for root in self.roots]
        if self.truncated:
            lines.append(
                f"... operator tree truncated at {self.max_operators} nodes"
            )
        return "\n".join(lines)

    def __bool__(self):
        return bool(self.roots)

    def __repr__(self):
        return (
            f"PlanStatsCollection({sum(1 for _ in self.iter_operators())} "
            "operators)"
        )


class _NoopOperator:
    """Shared stand-in when no collection is active (attribute-free)."""

    __slots__ = ()
    name = "noop"
    detail = ""
    seconds = 0.0
    children = ()
    attributes = {}
    rows_in = None
    rows_out = None

    def start(self):
        pass

    def stop(self):
        pass

    def set(self, key, value):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False

    def __setattr__(self, key, value):
        pass  # rows_in/rows_out assignments are discarded


_NOOP_OPERATOR = _NoopOperator()
_CURRENT_PLAN_STATS: ContextVar[PlanStatsCollection | None] = ContextVar(
    "repro_obs_plan_stats", default=None
)


def current_plan_stats():
    """The collection active in this context, or None."""
    return _CURRENT_PLAN_STATS.get()


class _PlanStatsActivation:
    __slots__ = ("_collection", "_tokens")

    def __init__(self, collection):
        self._collection = collection
        self._tokens = []  # LIFO: safe under re-entrant use

    def __enter__(self):
        self._tokens.append(_CURRENT_PLAN_STATS.set(self._collection))
        return self._collection

    def __exit__(self, exc_type, exc_value, traceback):
        _CURRENT_PLAN_STATS.reset(self._tokens.pop())
        return False


def activate_plan_stats(collection):
    """Make ``collection`` the context's collector for the ``with`` block."""
    return _PlanStatsActivation(collection)


def operator(name, detail=""):
    """Open an operator on the active collection; no-op without one."""
    collection = _CURRENT_PLAN_STATS.get()
    if collection is None:
        return _NOOP_OPERATOR
    return collection.operator(name, detail)
