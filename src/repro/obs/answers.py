"""Canonical answer normalization and stable answer digests.

NLIDB evaluation is answer-equivalence checking: two queries (or two
builds, or two degradation rungs) are "the same" when they produce the
same *answer*, not the same XQuery text.  This module defines what
"the same answer" means for the whole platform — one normalizer, one
digest — so the audit log, ``/query`` responses, the flight recorder,
the serving canary, and ``repro replay`` all agree byte-for-byte.

Normalization rules (see DESIGN.md §12):

* every answer item is canonicalized to text via the same rules as
  ``repro.xquery.values.string_value`` — XML nodes through their
  ``string_value()`` method, booleans as ``true``/``false``, integral
  floats without the trailing ``.0`` (so ``1991.0`` and ``"1991"``
  digest identically), everything else via ``str()``;
* the answer is treated as a **multiset**: items are sorted after
  canonicalization, so result order — which XQuery leaves undefined
  absent ``order by``, and which the degradation ladder does not
  preserve — never changes the digest.  Duplicates are kept: a bag of
  three identical titles is a different answer from one;
* the digest is a SHA-256 over a versioned canonical JSON rendering,
  truncated to 16 hex characters.  The version prefix
  (:data:`ANSWER_DIGEST_VERSION`) makes future rule changes explicit:
  bump it and every old fixture reads as "different normalization",
  not as silent drift.

Only digests are stored and compared — never answer payloads.  Audit
logs and flight-recorder dumps travel to CI artifacts and dashboards;
a 16-char fingerprint carries the correctness signal without copying
result rows (which may be large, or sensitive) into every log line.

Like every ``repro.obs`` module this file imports nothing from the
rest of the package: canonicalization duck-types over ``string_value``
instead of importing the XQuery value model.
"""

from __future__ import annotations

import hashlib
import json

#: Bump when normalization rules change; old digests then compare as
#: "different normalization version", never as silent answer drift.
ANSWER_DIGEST_VERSION = 1

#: Digest length in hex characters (64 bits of SHA-256).
DIGEST_HEX_CHARS = 16


def canonical_value(item):
    """One answer item as canonical text.

    Mirrors ``repro.xquery.values.string_value`` by duck typing:
    anything exposing a ``string_value()`` method (XML nodes) is asked
    for it; booleans render as XQuery ``true``/``false``; floats that
    are whole numbers drop the ``.0`` so ``1991.0`` equals ``"1991"``;
    everything else goes through ``str()``.
    """
    accessor = getattr(item, "string_value", None)
    if callable(accessor):
        item = accessor()
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float) and item.is_integer():
        return str(int(item))
    return str(item)


def normalize_answer(items):
    """The canonical form of an answer: a sorted multiset of strings.

    Sorting makes the digest order-insensitive (unordered XQuery
    results, shuffled degradation-rung output); keeping duplicates
    preserves bag semantics.
    """
    return sorted(canonical_value(item) for item in items)


def answer_digest(items):
    """A stable 16-hex-char fingerprint of an answer.

    Equal for any two answers whose normalized forms match —
    regardless of result order or float formatting — and stable
    across processes and platforms (canonical JSON, sorted keys,
    no whitespace).
    """
    payload = json.dumps(
        {"v": ANSWER_DIGEST_VERSION, "answer": normalize_answer(items)},
        sort_keys=True, separators=(",", ":"), ensure_ascii=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return digest[:DIGEST_HEX_CHARS]


#: The digest of the empty answer, precomputed for cheap comparisons.
EMPTY_ANSWER_DIGEST = answer_digest(())
