"""The flight recorder: a byte-bounded ring buffer of retained traces.

Traces the :class:`~repro.obs.sampler.TailSampler` retains land here as
:class:`RecordedTrace` entries — the full span tree plus the request
metadata an incident review needs (trace id, tenant, endpoint, status,
error class, latency, retention reason).  The buffer is bounded by
**serialized bytes**, not record count: each record's cost is the
length of its JSONL line, computed once at insert, and the oldest
records are evicted until the new one fits.  Memory therefore stays
under ``max_bytes`` no matter how large individual traces are (a
record bigger than the whole budget is refused outright).

Dump surfaces:

* :meth:`dump_jsonl` — one JSON object per line, newest last;
* :meth:`dump_chrome` — a Chrome trace-event document (load in
  ``chrome://tracing`` / Perfetto; one lane per retained request);
* :meth:`dump_to` — both of the above written next to each other
  (``<prefix>.jsonl`` + ``<prefix>.trace.json``);
* :meth:`trigger_dump` — the *automatic* path (breaker-open,
  watchdog-hard, SLO fast-burn, SIGUSR1): writes a bundle into
  ``dump_dir`` named after a sequence number and the triggering
  reason, rate-limited by ``min_dump_interval`` so a flapping breaker
  cannot fill the disk.

Everything is thread-safe and clock-injectable; the recorder never
raises into the serving path (dump failures count in
``obs.recorder.dump_errors`` instead).
"""

from __future__ import annotations

import json
import os
import time

from repro.obs.export import chrome_trace
from repro.obs.metrics import METRICS
from repro.analysis.racecheck import named_lock

#: Default ring-buffer budget: 8 MiB of serialized trace records.
DEFAULT_MAX_BYTES = 8 * 1024 * 1024

#: Default floor between automatic dumps (seconds).
DEFAULT_MIN_DUMP_INTERVAL = 30.0

_RETAINED = METRICS.counter("obs.recorder.retained")
_EVICTED = METRICS.counter("obs.recorder.evicted")
_REFUSED = METRICS.counter("obs.recorder.refused")
_DUMPS = METRICS.counter("obs.recorder.dumps")
_DUMPS_SUPPRESSED = METRICS.counter("obs.recorder.dumps_suppressed")
_BYTES = METRICS.gauge("obs.recorder.bytes")


class RecordedTrace:
    """One retained request: metadata + the serialized span tree."""

    __slots__ = ("trace_id", "request_id", "tenant", "endpoint", "sentence",
                 "status", "error_class", "answer_digest", "seconds",
                 "reason", "stuck", "expired", "timestamp", "trace",
                 "trace_dict", "approx_bytes")

    def __init__(self, trace_id, request_id=None, tenant=None, endpoint=None,
                 sentence=None, status=None, error_class=None,
                 answer_digest=None, seconds=0.0, reason=None, stuck=False,
                 expired=False, timestamp=None, trace=None):
        self.trace_id = trace_id
        self.request_id = request_id
        self.tenant = tenant
        self.endpoint = endpoint
        self.sentence = sentence
        self.status = status
        self.error_class = error_class
        self.answer_digest = answer_digest
        self.seconds = seconds
        self.reason = reason
        self.stuck = stuck
        self.expired = expired
        self.timestamp = timestamp if timestamp is not None else time.time()
        self.trace = trace  # the live Trace object (chrome export)
        self.trace_dict = trace.to_dict() if trace is not None else None
        self.approx_bytes = len(self.to_json())

    def to_dict(self):
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "endpoint": self.endpoint,
            "sentence": self.sentence,
            "status": self.status,
            "error_class": self.error_class,
            "answer_digest": self.answer_digest,
            "seconds": self.seconds,
            "reason": self.reason,
            "stuck": self.stuck,
            "expired": self.expired,
            "timestamp": self.timestamp,
            "trace": self.trace_dict,
        }

    def to_json(self):
        return json.dumps(self.to_dict(), sort_keys=True)

    def __repr__(self):
        return (
            f"RecordedTrace({self.trace_id[:8]}…, {self.reason}, "
            f"{self.seconds * 1000:.1f} ms)"
        )


class FlightRecorder:
    """Bounded in-memory store of retained traces, dumpable on demand."""

    def __init__(self, max_bytes=DEFAULT_MAX_BYTES, dump_dir=None,
                 min_dump_interval=DEFAULT_MIN_DUMP_INTERVAL,
                 clock=time.monotonic):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes!r}")
        self.max_bytes = max_bytes
        self.dump_dir = dump_dir
        self.min_dump_interval = min_dump_interval
        self._clock = clock
        self._lock = named_lock("obs.recorder")
        self._records = []  # oldest first
        self._by_id = {}
        self._bytes = 0
        self._retained_total = 0
        self._evicted_total = 0
        self._by_reason = {}
        self._dump_seq = 0
        self._last_dump_at = None
        # (path_prefix, reason) history; bounded — a long-lived server
        # that dumps forever must not grow this without limit.
        self._dumps = []
        self._max_dump_history = 64

    # -- the write path -----------------------------------------------------

    def record(self, trace_id, trace=None, reason=None, **fields):
        """Retain one trace; evicts the oldest records to fit.

        Returns the :class:`RecordedTrace`, or ``None`` when the record
        alone exceeds the whole byte budget (counted in
        ``obs.recorder.refused``).
        """
        entry = RecordedTrace(trace_id, trace=trace, reason=reason, **fields)
        if entry.approx_bytes > self.max_bytes:
            _REFUSED.inc()
            return None
        with self._lock:
            while self._records and (
                    self._bytes + entry.approx_bytes > self.max_bytes):
                stale = self._records.pop(0)
                self._bytes -= stale.approx_bytes
                self._by_id.pop(stale.trace_id, None)
                self._evicted_total += 1
                _EVICTED.inc()
            self._records.append(entry)
            self._by_id[entry.trace_id] = entry
            self._bytes += entry.approx_bytes
            self._retained_total += 1
            if reason:
                self._by_reason[reason] = self._by_reason.get(reason, 0) + 1
            _BYTES.set(self._bytes)
        _RETAINED.inc()
        return entry

    # -- the read path ------------------------------------------------------

    def get(self, trace_id):
        """The retained record for ``trace_id``, or None (evicted/never)."""
        with self._lock:
            return self._by_id.get(trace_id)

    def records(self):
        """All retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def __len__(self):
        with self._lock:
            return len(self._records)

    def snapshot(self):
        with self._lock:
            return {
                "count": len(self._records),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "retained_total": self._retained_total,
                "evicted_total": self._evicted_total,
                "by_reason": dict(sorted(self._by_reason.items())),
                "dumps": len(self._dumps),
                "last_dump": self._dumps[-1][0] if self._dumps else None,
            }

    # -- dumps --------------------------------------------------------------

    def dump_jsonl(self):
        """Every retained record as JSONL (oldest first)."""
        return "".join(entry.to_json() + "\n" for entry in self.records())

    def dump_chrome(self):
        """A Chrome trace-event document of every retained trace."""
        entries = [
            entry for entry in self.records() if entry.trace is not None
        ]
        names = [
            f"{entry.reason or 'trace'} {entry.trace_id[:8]} "
            f"{entry.sentence or entry.endpoint or ''}".strip()
            for entry in entries
        ]
        return chrome_trace(
            [entry.trace for entry in entries],
            process_name="repro-flightrecorder", names=names,
        )

    def dump_bundle(self):
        """The ``/debugz/flightrecorder`` JSON document."""
        return {
            "snapshot": self.snapshot(),
            "records": [entry.to_dict() for entry in self.records()],
        }

    def dump_to(self, prefix):
        """Write ``<prefix>.jsonl`` + ``<prefix>.trace.json``; return paths."""
        jsonl_path = f"{prefix}.jsonl"
        chrome_path = f"{prefix}.trace.json"
        with open(jsonl_path, "w", encoding="utf-8") as handle:
            handle.write(self.dump_jsonl())
        with open(chrome_path, "w", encoding="utf-8") as handle:
            json.dump(self.dump_chrome(), handle)
            handle.write("\n")
        _DUMPS.inc()
        return jsonl_path, chrome_path

    def trigger_dump(self, reason):
        """The automatic dump path; returns the path prefix or None.

        No-op without a ``dump_dir``.  Rate-limited: at most one dump
        per ``min_dump_interval`` seconds, so event storms (a flapping
        breaker, a watchdog sweep expiring ten requests) produce one
        bundle, not ten.  Never raises into the caller.
        """
        if self.dump_dir is None:
            return None
        now = self._clock()
        with self._lock:
            if (self._last_dump_at is not None
                    and now - self._last_dump_at < self.min_dump_interval):
                _DUMPS_SUPPRESSED.inc()
                return None
            self._last_dump_at = now
            self._dump_seq += 1
            sequence = self._dump_seq
        safe_reason = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in str(reason)
        )[:80] or "manual"
        prefix = os.path.join(
            self.dump_dir, f"flightrecorder-{sequence:04d}-{safe_reason}"
        )
        try:
            os.makedirs(self.dump_dir, exist_ok=True)
            self.dump_to(prefix)
        except OSError:
            METRICS.inc("obs.recorder.dump_errors")
            return None
        with self._lock:
            self._dumps.append((prefix, str(reason)))
            if len(self._dumps) > self._max_dump_history:
                del self._dumps[:-self._max_dump_history]
        return prefix

    def __repr__(self):
        with self._lock:
            return (
                f"FlightRecorder({len(self._records)} records, "
                f"{self._bytes}/{self.max_bytes} bytes)"
            )
