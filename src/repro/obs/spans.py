"""Lightweight hierarchical tracing.

A :class:`Trace` is a per-query tree of :class:`Span` objects.  Each
span records wall time (``time.perf_counter``), a status (``ok`` /
``error``), and free-form attributes::

    trace = Trace()
    with trace.span("translate") as s:
        s.set("variables", 3)
        ...

Spans opened while another span is active nest under it, so the pipeline
stages of ``NaLIX.ask`` form a tree rooted at the ``ask`` span.  The
overhead per span is two ``perf_counter`` calls and one small object —
cheap enough to leave on for every query; the trace *is* the timing
mechanism behind ``QueryResult.parse_seconds`` and friends.

Code that is far from the query entry point (the evaluator, the
planner) can attach spans to whatever trace is active in the current
context via the module-level :func:`span` helper, which degrades to a
no-op when no trace is active — instrumented internals pay almost
nothing when called outside ``ask``.
"""

from __future__ import annotations

import time
from contextvars import ContextVar


class Span:
    """One timed operation in a trace tree.

    A span is its own context manager (``with trace.span(...) as s:``);
    on exit it stops the clock, marks ``error`` when the block raised,
    and pops itself from the owning trace's open-span stack.
    """

    OK = "ok"
    ERROR = "error"

    __slots__ = ("name", "status", "attributes", "children",
                 "started_at", "ended_at", "_stack")

    def __init__(self, name, attributes=None):
        self.name = name
        self.status = Span.OK
        self.attributes = attributes if attributes is not None else {}
        self.children = []
        self._stack = None
        self.started_at = time.perf_counter()
        self.ended_at = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.finish(Span.ERROR if exc_type is not None else None)
        stack = self._stack
        if stack is not None:
            # An exception may have skipped the close of spans opened
            # inside this block: finish those descendants (innermost
            # first) so failed traces never contain open spans, then
            # pop this span itself.
            if self in stack:
                while stack[-1] is not self:
                    stack.pop().finish()
                stack.pop()
            self._stack = None
        return False

    @property
    def duration_seconds(self):
        """Wall time; reads the clock while the span is still open."""
        end = self.ended_at
        if end is None:
            end = time.perf_counter()
        return end - self.started_at

    def set(self, key, value):
        """Attach an attribute (shown by ``render`` and ``to_dict``)."""
        self.attributes[key] = value

    def finish(self, status=None):
        """Stop the clock (idempotent); optionally set the status."""
        if self.ended_at is None:
            self.ended_at = time.perf_counter()
        if status is not None:
            self.status = status

    # -- introspection -----------------------------------------------------

    def iter_spans(self):
        """This span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name):
        """First span named ``name`` in this subtree, or None."""
        for node in self.iter_spans():
            if node.name == name:
                return node
        return None

    def to_dict(self):
        entry = {
            "name": self.name,
            "status": self.status,
            "seconds": self.duration_seconds,
        }
        if self.attributes:
            entry["attributes"] = dict(self.attributes)
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry

    def render(self, prefix="", last=True, top=True):
        """ASCII tree: name, duration in ms, status, attributes."""
        connector = "" if top else ("└─ " if last else "├─ ")
        attrs = ""
        if self.attributes:
            attrs = "  " + " ".join(
                f"{key}={value}" for key, value in self.attributes.items()
            )
        line = (
            f"{prefix}{connector}{self.name}  "
            f"{self.duration_seconds * 1000:.2f} ms  [{self.status}]{attrs}"
        )
        lines = [line]
        child_prefix = prefix if top else prefix + ("   " if last else "│  ")
        for index, child in enumerate(self.children):
            lines.append(
                child.render(
                    prefix=child_prefix,
                    last=index == len(self.children) - 1,
                    top=False,
                )
            )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"Span({self.name!r}, {self.status}, "
            f"{self.duration_seconds * 1000:.2f} ms, "
            f"{len(self.children)} children)"
        )


class Trace:
    """A per-query tree of spans with an open-span stack."""

    __slots__ = ("roots", "_stack")

    def __init__(self):
        self.roots = []
        self._stack = []

    def span(self, name, **attributes):
        """Open a span (a context manager); nests under the innermost
        open span.

        The span's status becomes ``error`` when the block raises (the
        exception propagates); otherwise it stays ``ok`` unless the
        block set it explicitly.
        """
        current = Span(name, attributes)
        stack = self._stack
        if stack:
            stack[-1].children.append(current)
        else:
            self.roots.append(current)
        stack.append(current)
        current._stack = stack
        return current

    # -- aggregation -------------------------------------------------------

    def iter_spans(self):
        for root in self.roots:
            yield from root.iter_spans()

    def find(self, name):
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def finish_open_spans(self):
        """Close any spans still on the open stack (innermost first).

        Safety net for exception paths that bypass a span's ``with``
        block (a helper that opened a span and raised before closing
        it): guarantees every span in a finished trace has an end time,
        so ``--trace`` output and audited stage timings are complete
        even when evaluation raised.
        """
        while self._stack:
            self._stack.pop().finish()

    def stage_seconds(self, name):
        """Total duration of every span named ``name`` in the trace."""
        return sum(
            node.duration_seconds
            for node in self.iter_spans()
            if node.name == name
        )

    def total_seconds(self):
        return sum(root.duration_seconds for root in self.roots)

    def to_dict(self):
        return {"spans": [root.to_dict() for root in self.roots]}

    def render(self):
        return "\n".join(root.render() for root in self.roots)

    def __repr__(self):
        return f"Trace({sum(1 for _ in self.iter_spans())} spans)"


class _NoopSpan:
    """Stand-in yielded by :func:`span` when no trace is active."""

    __slots__ = ()
    name = "noop"
    status = Span.OK
    attributes = {}
    children = ()
    duration_seconds = 0.0

    def set(self, key, value):
        pass

    def finish(self, status=None):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False


_NOOP_SPAN = _NoopSpan()
_CURRENT_TRACE: ContextVar[Trace | None] = ContextVar(
    "repro_obs_trace", default=None
)


def current_trace():
    """The trace active in this context, or None."""
    return _CURRENT_TRACE.get()


class _TraceActivation:
    __slots__ = ("_trace", "_tokens")

    def __init__(self, trace):
        self._trace = trace
        self._tokens = []  # LIFO: safe under re-entrant use

    def __enter__(self):
        self._tokens.append(_CURRENT_TRACE.set(self._trace))
        return self._trace

    def __exit__(self, exc_type, exc_value, traceback):
        _CURRENT_TRACE.reset(self._tokens.pop())
        return False


def activate_trace(trace):
    """Make ``trace`` the context's active trace for the ``with`` block."""
    return _TraceActivation(trace)


def span(name, **attributes):
    """Open a span on the context's active trace; no-op without one."""
    trace = _CURRENT_TRACE.get()
    if trace is None:
        return _NOOP_SPAN
    return trace.span(name, **attributes)
