"""Perf-regression watchdog: compare a bench run against the baseline.

The committed ``benchmarks/BENCH_RESULTS.json`` is the contract for how
fast the nine study tasks are allowed to be; this module answers "did
we get slower, and where" by comparing a fresh run (or any ingested
results file of the same schema) against it, task by task and stage by
stage.

The tolerance rule is deliberately robust, because single wall-clock
benchmark runs are noisy:

* **relative threshold** — a comparison only *warns* past
  ``rel_warn`` (default +25 %) and only *fails* past ``rel_fail``
  (default +100 %, i.e. a 2× slowdown), so routine jitter passes;
* **MAD guard** — the slack is at least ``mad_factor`` × the median
  absolute deviation of the fresh run's samples: a task whose own
  repeats scatter widely gets a proportionally wider tolerance instead
  of flapping;
* **min-sample floor** — fewer than ``min_samples`` fresh repeats can
  never fail the gate (the row is reported as ``skip``), and neither
  can stages below ``abs_floor_seconds`` (microsecond stages where a
  cache miss doubles "latency").

:func:`apply_handicaps` synthetically slows named stages of a results
dict; it exists so the gate itself is testable — ``repro bench-check
--handicap evaluate=3`` must exit non-zero, proving the watchdog would
catch a real 3× evaluation regression.

This module only transforms plain dicts (the JSON schema), so it
imports nothing from the rest of the package; the collector that
produces fresh runs lives in :mod:`repro.evaluation.bench`.
"""

from __future__ import annotations

import json

from repro.obs.quantiles import median_abs_deviation

#: Verdicts, benign to fatal.
PASS, SKIP, WARN, FAIL = "pass", "skip", "warn", "fail"


class Tolerance:
    """The robust tolerance rule for one comparison run."""

    __slots__ = ("rel_warn", "rel_fail", "mad_factor", "min_samples",
                 "abs_floor_seconds")

    def __init__(self, rel_warn=0.25, rel_fail=1.00, mad_factor=4.0,
                 min_samples=3, abs_floor_seconds=0.001):
        if rel_fail < rel_warn:
            raise ValueError(
                f"rel_fail ({rel_fail}) must be >= rel_warn ({rel_warn})"
            )
        self.rel_warn = rel_warn
        self.rel_fail = rel_fail
        self.mad_factor = mad_factor
        self.min_samples = min_samples
        self.abs_floor_seconds = abs_floor_seconds

    def to_dict(self):
        return {
            "rel_warn": self.rel_warn,
            "rel_fail": self.rel_fail,
            "mad_factor": self.mad_factor,
            "min_samples": self.min_samples,
            "abs_floor_seconds": self.abs_floor_seconds,
        }

    def __repr__(self):
        return (
            f"Tolerance(warn=+{self.rel_warn:.0%}, fail=+{self.rel_fail:.0%},"
            f" mad_factor={self.mad_factor}, min_samples={self.min_samples})"
        )


class Finding:
    """One (task, metric) comparison row."""

    __slots__ = ("task", "metric", "baseline_seconds", "current_seconds",
                 "verdict", "note")

    def __init__(self, task, metric, baseline_seconds, current_seconds,
                 verdict, note=""):
        self.task = task
        self.metric = metric
        self.baseline_seconds = baseline_seconds
        self.current_seconds = current_seconds
        self.verdict = verdict
        self.note = note

    @property
    def ratio(self):
        if not self.baseline_seconds:
            return 0.0
        return self.current_seconds / self.baseline_seconds

    def to_dict(self):
        return {
            "task": self.task,
            "metric": self.metric,
            "baseline_seconds": self.baseline_seconds,
            "current_seconds": self.current_seconds,
            "ratio": self.ratio,
            "verdict": self.verdict,
            "note": self.note,
        }

    def describe(self):
        return (
            f"{self.task} {self.metric}: "
            f"{self.baseline_seconds * 1000:.2f} -> "
            f"{self.current_seconds * 1000:.2f} ms "
            f"({self.ratio:.2f}x) [{self.verdict}]"
            + (f" {self.note}" if self.note else "")
        )

    def __repr__(self):
        return f"Finding({self.describe()})"


class RegressionReport:
    """All findings of one baseline comparison, with verdict rollups."""

    def __init__(self, findings, tolerance):
        self.findings = findings
        self.tolerance = tolerance

    def by_verdict(self, verdict):
        return [f for f in self.findings if f.verdict == verdict]

    @property
    def failures(self):
        return self.by_verdict(FAIL)

    @property
    def warnings(self):
        return self.by_verdict(WARN)

    @property
    def ok(self):
        return not self.failures

    @property
    def exit_code(self):
        return 1 if self.failures else 0

    def to_dict(self):
        return {
            "ok": self.ok,
            "tolerance": self.tolerance.to_dict(),
            "counts": {
                verdict: len(self.by_verdict(verdict))
                for verdict in (PASS, SKIP, WARN, FAIL)
            },
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self, verbose=False):
        """Human-readable report; passes are summarized unless verbose."""
        lines = [
            f"bench-check: {len(self.findings)} comparisons "
            f"({self.tolerance!r})"
        ]
        shown = (
            self.findings if verbose
            else [f for f in self.findings if f.verdict in (WARN, FAIL)]
        )
        for finding in shown:
            lines.append("  " + finding.describe())
        counts = {
            verdict: len(self.by_verdict(verdict))
            for verdict in (PASS, SKIP, WARN, FAIL)
        }
        lines.append(
            "  " + "  ".join(f"{k}={v}" for k, v in counts.items())
        )
        lines.append(
            "RESULT: " + ("PASS" if self.ok else "FAIL (perf regression)")
        )
        return "\n".join(lines)

    def github_annotations(self):
        """``::warning``/``::error`` lines for GitHub Actions logs."""
        lines = []
        for finding in self.warnings:
            lines.append(f"::warning title=perf drift::{finding.describe()}")
        for finding in self.failures:
            lines.append(
                f"::error title=perf regression::{finding.describe()}"
            )
        return lines

    def __repr__(self):
        return (
            f"RegressionReport({len(self.findings)} findings, "
            f"{'ok' if self.ok else 'FAIL'})"
        )


def _classify(baseline_seconds, current_seconds, samples, tolerance):
    """Apply the tolerance rule to one pair of numbers."""
    if baseline_seconds <= 0.0:
        return SKIP, "no baseline value"
    if (baseline_seconds < tolerance.abs_floor_seconds
            and current_seconds < tolerance.abs_floor_seconds):
        return PASS, "below absolute floor"
    delta = current_seconds - baseline_seconds
    guard = tolerance.mad_factor * median_abs_deviation(samples)
    slack_warn = max(tolerance.rel_warn * baseline_seconds, guard,
                     tolerance.abs_floor_seconds)
    slack_fail = max(tolerance.rel_fail * baseline_seconds, guard,
                     tolerance.abs_floor_seconds)
    if delta > slack_fail:
        return FAIL, ""
    if delta > slack_warn:
        return WARN, ""
    return PASS, ""


def compare_results(baseline, current, tolerance=None):
    """Compare two ``BENCH_RESULTS.json``-schema dicts.

    Per task present in both: end-to-end ``mean_seconds`` and
    ``p95_seconds``, plus every stage in the baseline's
    ``stage_mean_seconds``.  Tasks missing from the current run are
    reported as ``skip`` (they cannot pass silently).  When the
    baseline carries a ``serving`` section (the sustained-throughput
    benchmark), its p50/p99 and QPS ratchet too — see
    :func:`_compare_serving`.
    """
    tolerance = tolerance or Tolerance()
    findings = []
    baseline_tasks = baseline.get("tasks", {})
    current_tasks = current.get("tasks", {})
    for task_id in sorted(baseline_tasks):
        base = baseline_tasks[task_id]
        cur = current_tasks.get(task_id)
        if cur is None:
            findings.append(
                Finding(task_id, "mean_seconds",
                        base.get("mean_seconds", 0.0), 0.0, SKIP,
                        "task missing from current run")
            )
            continue
        runs = cur.get("runs", len(cur.get("samples_seconds", ())))
        samples = cur.get("samples_seconds", [])
        if runs < tolerance.min_samples:
            findings.append(
                Finding(task_id, "mean_seconds",
                        base.get("mean_seconds", 0.0),
                        cur.get("mean_seconds", 0.0), SKIP,
                        f"only {runs} samples "
                        f"(min {tolerance.min_samples})")
            )
            continue
        for metric in ("mean_seconds", "p95_seconds"):
            if metric not in base or metric not in cur:
                continue
            verdict, note = _classify(base[metric], cur[metric], samples,
                                      tolerance)
            findings.append(
                Finding(task_id, metric, base[metric], cur[metric],
                        verdict, note)
            )
        base_stages = base.get("stage_mean_seconds", {})
        cur_stages = cur.get("stage_mean_seconds", {})
        stage_samples = cur.get("stage_samples_seconds", {})
        for stage in sorted(base_stages):
            if stage not in cur_stages:
                findings.append(
                    Finding(task_id, f"stage:{stage}", base_stages[stage],
                            0.0, SKIP, "stage missing from current run")
                )
                continue
            verdict, note = _classify(
                base_stages[stage], cur_stages[stage],
                stage_samples.get(stage, samples), tolerance,
            )
            findings.append(
                Finding(task_id, f"stage:{stage}", base_stages[stage],
                        cur_stages[stage], verdict, note)
            )
    findings.extend(_compare_serving(baseline, current, tolerance))
    findings.extend(_compare_serving_chaos(baseline, current, tolerance))
    findings.extend(
        _compare_serving_observability(baseline, current, tolerance)
    )
    findings.extend(_compare_serving_canary(baseline, current, tolerance))
    return RegressionReport(findings, tolerance)


def _compare_serving(baseline, current, tolerance):
    """Comparison rows for the ``serving`` benchmark section.

    Server-side p50/p99 compare directly; throughput compares as its
    inverse (seconds per request), so one slowdown rule covers both
    latency and QPS — a 2× QPS drop is exactly a 2× seconds-per-request
    regression.  A baseline with a serving section but a current run
    without one is a ``skip`` row, never a silent pass.
    """
    base = baseline.get("serving")
    if base is None:
        return []
    cur = current.get("serving")
    if cur is None:
        return [
            Finding("serving", "p99_seconds",
                    base.get("p99_seconds", 0.0), 0.0, SKIP,
                    "no serving section in current run")
        ]
    findings = []
    samples = cur.get("samples_seconds", [])
    if len(samples) < tolerance.min_samples:
        return [
            Finding("serving", "p99_seconds",
                    base.get("p99_seconds", 0.0),
                    cur.get("p99_seconds", 0.0), SKIP,
                    f"only {len(samples)} samples "
                    f"(min {tolerance.min_samples})")
        ]
    for metric in ("p50_seconds", "p99_seconds"):
        if metric not in base or metric not in cur:
            continue
        verdict, note = _classify(base[metric], cur[metric], samples,
                                  tolerance)
        findings.append(
            Finding("serving", metric, base[metric], cur[metric],
                    verdict, note)
        )
    base_qps = base.get("qps")
    cur_qps = cur.get("qps")
    if base_qps and cur_qps:
        verdict, note = _classify(1.0 / base_qps, 1.0 / cur_qps, samples,
                                  tolerance)
        findings.append(
            Finding("serving", "seconds_per_request",
                    1.0 / base_qps, 1.0 / cur_qps, verdict,
                    note or f"qps {base_qps:.1f} -> {cur_qps:.1f}")
        )
    errors = cur.get("internal_errors", 0)
    if errors:
        findings.append(
            Finding("serving", "internal_errors", 0.0, float(errors), FAIL,
                    f"{errors} internal error(s) during the serving run")
        )
    return findings


#: The chaos benchmark's hard availability floor (final-outcome
#: availability under injected faults, with client retries on).
MIN_CHAOS_AVAILABILITY = 0.99


def _compare_serving_chaos(baseline, current, tolerance):
    """Comparison rows for the ``serving_chaos`` benchmark section.

    The chaos run is gated on *absolutes*, not just drift: final-outcome
    availability below :data:`MIN_CHAOS_AVAILABILITY` fails, and any
    unclassified 5xx (a failure the server emitted without the error
    taxonomy) fails — under injected faults every response must still be
    classified.  Latency (p50/p99) and throughput ratchet relatively,
    exactly like the fault-free serving section.  A run where the
    watchdog never saw a stuck request only *warns*: the chaos plan may
    have rotted, but a healthy-looking run should not block a merge.
    """
    base = baseline.get("serving_chaos")
    if base is None:
        return []
    cur = current.get("serving_chaos")
    if cur is None:
        return [
            Finding("serving_chaos", "availability",
                    base.get("availability", 0.0), 0.0, SKIP,
                    "no serving_chaos section in current run")
        ]
    findings = []
    availability = cur.get("availability", 0.0)
    verdict = PASS if availability >= MIN_CHAOS_AVAILABILITY else FAIL
    findings.append(
        Finding("serving_chaos", "availability",
                base.get("availability", 0.0), availability, verdict,
                f"floor {MIN_CHAOS_AVAILABILITY:.0%}"
                if verdict == FAIL else "")
    )
    unclassified = cur.get("unclassified_5xx", 0)
    if unclassified:
        findings.append(
            Finding("serving_chaos", "unclassified_5xx", 0.0,
                    float(unclassified), FAIL,
                    f"{unclassified} unclassified 5xx response(s) — every "
                    "failure under chaos must carry the error taxonomy")
        )
    watchdog = cur.get("watchdog", {})
    if not watchdog.get("stuck") and not watchdog.get("expired"):
        findings.append(
            Finding("serving_chaos", "watchdog_stuck", 1.0, 0.0, WARN,
                    "the watchdog never saw a stuck request — is the "
                    "chaos plan still injecting latency?")
        )
    findings.extend(_chaos_retention_findings(cur))
    samples = cur.get("samples_seconds", [])
    if len(samples) < tolerance.min_samples:
        findings.append(
            Finding("serving_chaos", "p99_seconds",
                    base.get("p99_seconds", 0.0),
                    cur.get("p99_seconds", 0.0), SKIP,
                    f"only {len(samples)} samples "
                    f"(min {tolerance.min_samples})")
        )
        return findings
    for metric in ("p50_seconds", "p99_seconds"):
        if metric not in base or metric not in cur:
            continue
        verdict, note = _classify(base[metric], cur[metric], samples,
                                  tolerance)
        findings.append(
            Finding("serving_chaos", metric, base[metric], cur[metric],
                    verdict, note)
        )
    base_qps = base.get("qps")
    cur_qps = cur.get("qps")
    if base_qps and cur_qps:
        verdict, note = _classify(1.0 / base_qps, 1.0 / cur_qps, samples,
                                  tolerance)
        findings.append(
            Finding("serving_chaos", "seconds_per_request",
                    1.0 / base_qps, 1.0 / cur_qps, verdict,
                    note or f"qps {base_qps:.1f} -> {cur_qps:.1f}")
        )
    return findings


#: Slow-tail retention floor for the chaos gate.
MIN_SLOW_RETENTION = 0.95

#: Slack on top of the configured head rate before the healthy-traffic
#: retention gate fails (the every-Nth counter rounds, warm-up requests
#: land in the healthy bucket before the p95 threshold exists).
HEAD_SAMPLE_SLACK = 0.05

#: Observability overhead (p99, full layer on vs off) that warns.  The
#: evidence loop is supposed to live in the serving noise floor; a
#: single noisy run should not block a merge, so this never fails on
#: its own — the absolute p50/p99 ratchet against the baseline does.
MAX_OBS_OVERHEAD_WARN = 0.25

#: Canary overhead (p99, golden sweeps on vs off) that warns.  Same
#: philosophy as the observability gate: synthetic correctness traffic
#: must stay in the serving noise floor, but one noisy A/B run never
#: blocks a merge on its own.
MAX_CANARY_OVERHEAD_WARN = 0.25


def _chaos_retention_findings(cur):
    """Absolute gates on what the sampler/recorder kept under chaos.

    Incident evidence is the whole point of the flight recorder, so
    these are pass/fail invariants, not drift ratchets: every
    error-class trace retained, (nearly) every slow-tail trace
    retained, healthy traffic head-sampled at no more than the
    configured rate plus slack, and the ring buffer within its byte
    budget.  Sections recorded before the observability layer existed
    simply produce no rows.
    """
    findings = []
    sampler = cur.get("sampler")
    if sampler:
        seen = sampler.get("seen", {})
        retention = sampler.get("retention", {})

        def gate(category, floor, note):
            if not seen.get(category):
                return
            value = retention.get(category) or 0.0
            verdict = PASS if value >= floor else FAIL
            findings.append(
                Finding("serving_chaos", f"retention:{category}",
                        floor, value, verdict,
                        note if verdict == FAIL else
                        f"{seen[category]} seen")
            )

        gate("error", 1.0,
             "error-class traces must always reach the flight recorder")
        gate("slow", MIN_SLOW_RETENTION,
             "the slow tail is the incident evidence — it cannot be "
             "dropped")
        if seen.get("healthy"):
            ceiling = (sampler.get("head_rate", 0.0) + HEAD_SAMPLE_SLACK)
            value = retention.get("healthy") or 0.0
            verdict = PASS if value <= ceiling else FAIL
            findings.append(
                Finding("serving_chaos", "retention:healthy",
                        ceiling, value, verdict,
                        "healthy traffic is head-sampled above the "
                        "configured rate" if verdict == FAIL else
                        f"{seen['healthy']} seen (ceiling)")
            )
    recorder = cur.get("recorder")
    if recorder and recorder.get("max_bytes"):
        used = recorder.get("bytes", 0)
        budget = recorder["max_bytes"]
        verdict = PASS if used <= budget else FAIL
        findings.append(
            Finding("serving_chaos", "recorder_bytes",
                    float(budget), float(used), verdict,
                    "the flight-recorder ring buffer exceeded its byte "
                    "budget" if verdict == FAIL else
                    f"{recorder.get('count', 0)} traces held")
        )
    return findings


def _compare_serving_observability(baseline, current, tolerance):
    """Comparison rows for the ``serving_observability`` section.

    The full-layer latency profile (SLO engine + sampler + recorder
    all on) ratchets against the committed baseline exactly like the
    serving section, and the measured overhead fraction *warns* past
    :data:`MAX_OBS_OVERHEAD_WARN` — a loud nudge that the evidence
    loop is drifting out of the noise floor, without letting one noisy
    A/B run block a merge.
    """
    base = baseline.get("serving_observability")
    if base is None:
        return []
    cur = current.get("serving_observability")
    if cur is None:
        return [
            Finding("serving_observability", "p99_overhead_fraction",
                    base.get("p99_overhead_fraction", 0.0), 0.0, SKIP,
                    "no serving_observability section in current run")
        ]
    findings = []
    samples = cur.get("samples_seconds", [])
    base_full = base.get("observability", {})
    cur_full = cur.get("observability", {})
    if len(samples) < tolerance.min_samples:
        return [
            Finding("serving_observability", "p99_seconds",
                    base_full.get("p99_seconds", 0.0),
                    cur_full.get("p99_seconds", 0.0), SKIP,
                    f"only {len(samples)} samples "
                    f"(min {tolerance.min_samples})")
        ]
    for metric in ("p50_seconds", "p99_seconds"):
        if metric not in base_full or metric not in cur_full:
            continue
        verdict, note = _classify(base_full[metric], cur_full[metric],
                                  samples, tolerance)
        findings.append(
            Finding("serving_observability", metric, base_full[metric],
                    cur_full[metric], verdict, note)
        )
    overhead = cur.get("p99_overhead_fraction")
    if overhead is not None:
        verdict = PASS if overhead <= MAX_OBS_OVERHEAD_WARN else WARN
        findings.append(
            Finding("serving_observability", "p99_overhead_fraction",
                    MAX_OBS_OVERHEAD_WARN, overhead, verdict,
                    "observability overhead above the noise-floor "
                    "target" if verdict == WARN else "(ceiling)")
        )
    return findings


def _compare_serving_canary(baseline, current, tolerance):
    """Comparison rows for the ``serving_canary`` section.

    The canary-on latency profile ratchets against the committed
    baseline like every serving section, and the measured overhead
    fraction (golden sweeps racing production load vs the same server
    without them) *warns* past :data:`MAX_CANARY_OVERHEAD_WARN` —
    warn-only, because a correctness probe that occasionally costs a
    noisy run its p99 should nag, not block.
    """
    base = baseline.get("serving_canary")
    if base is None:
        return []
    cur = current.get("serving_canary")
    if cur is None:
        return [
            Finding("serving_canary", "p99_overhead_fraction",
                    base.get("p99_overhead_fraction", 0.0), 0.0, SKIP,
                    "no serving_canary section in current run")
        ]
    findings = []
    samples = cur.get("samples_seconds", [])
    base_full = base.get("canary", {})
    cur_full = cur.get("canary", {})
    if len(samples) < tolerance.min_samples:
        return [
            Finding("serving_canary", "p99_seconds",
                    base_full.get("p99_seconds", 0.0),
                    cur_full.get("p99_seconds", 0.0), SKIP,
                    f"only {len(samples)} samples "
                    f"(min {tolerance.min_samples})")
        ]
    for metric in ("p50_seconds", "p99_seconds"):
        if metric not in base_full or metric not in cur_full:
            continue
        verdict, note = _classify(base_full[metric], cur_full[metric],
                                  samples, tolerance)
        findings.append(
            Finding("serving_canary", metric, base_full[metric],
                    cur_full[metric], verdict, note)
        )
    overhead = cur.get("p99_overhead_fraction")
    if overhead is not None:
        verdict = PASS if overhead <= MAX_CANARY_OVERHEAD_WARN else WARN
        findings.append(
            Finding("serving_canary", "p99_overhead_fraction",
                    MAX_CANARY_OVERHEAD_WARN, overhead, verdict,
                    "canary overhead above the noise-floor target"
                    if verdict == WARN else "(ceiling)")
        )
    return findings


# -- synthetic slowdowns (gate validation) ----------------------------------


def parse_handicap(spec):
    """Parse ``STAGE=FACTOR`` (e.g. ``evaluate=3``) into a pair."""
    stage, separator, factor_text = spec.partition("=")
    if not separator or not stage:
        raise ValueError(
            f"bad handicap {spec!r}: expected STAGE=FACTOR, "
            f"e.g. evaluate=3"
        )
    try:
        factor = float(factor_text)
    except ValueError:
        raise ValueError(f"bad handicap factor in {spec!r}") from None
    if factor <= 0:
        raise ValueError(f"handicap factor must be positive: {spec!r}")
    return stage.strip(), factor


def apply_handicaps(results, handicaps):
    """Return a copy of ``results`` with stages synthetically slowed.

    ``handicaps`` maps stage name -> multiplicative factor.  The extra
    stage time is propagated into the task's end-to-end mean/p95 and
    per-run samples, exactly as a real stage slowdown would surface.
    """
    slowed = json.loads(json.dumps(results))  # deep copy, JSON types only
    for task in slowed.get("tasks", {}).values():
        extra = 0.0
        stages = task.get("stage_mean_seconds", {})
        stage_samples = task.get("stage_samples_seconds", {})
        for stage, factor in handicaps.items():
            if stage not in stages:
                continue
            extra += (factor - 1.0) * stages[stage]
            stages[stage] *= factor
            if stage in stage_samples:
                stage_samples[stage] = [
                    value * factor for value in stage_samples[stage]
                ]
        if not extra:
            continue
        for metric in ("mean_seconds", "p95_seconds"):
            if metric in task:
                task[metric] += extra
        if "samples_seconds" in task:
            task["samples_seconds"] = [
                value + extra for value in task["samples_seconds"]
            ]
    return slowed


def load_results(path):
    """Load a ``BENCH_RESULTS.json``-schema file."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
