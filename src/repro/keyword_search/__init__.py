"""Keyword search over XML (the paper's baseline interface).

Implements nearest-concept keyword queries in the style of the Meet
operator (Schmidt, Kersten & Windhouwer, ICDE 2001), which the paper's
user study used as the comparison system: each keyword matches element
names and text values; the *meet* of a keyword combination is the
deepest lowest-common-ancestor node, i.e. the most specific element
relating all the keywords.
"""

from repro.keyword_search.engine import KeywordSearchEngine
from repro.keyword_search.meet import meet_nodes, nearest_concepts

__all__ = ["KeywordSearchEngine", "meet_nodes", "nearest_concepts"]
