"""The meet operator: nearest-concept computation over node sets.

``meet(A, B)`` pairs each node of A with its structurally nearest node
of B (deepest LCA); the meets are the LCA nodes themselves. The n-ary
form folds left: ``meet(meet(A, B), C)``. Results are ranked by depth —
deeper meets relate the keywords more specifically.
"""

from __future__ import annotations

from repro.xmlstore.model import lowest_common_ancestor
from repro.xquery.mqf import CandidateSet


def meet_nodes(set_a, set_b):
    """All meet nodes of two node sets, deduplicated.

    For every node of each set, the deepest LCA reachable with the other
    set is a meet (computed via the preorder-neighbour argument used by
    the MQF join).
    """
    candidates_a = CandidateSet(set_a)
    candidates_b = CandidateSet(set_b)
    meets = {}
    for node, other_set in ((a, candidates_b) for a in candidates_a):
        best = None
        for other in other_set.neighbours(node):
            lca = lowest_common_ancestor(node, other)
            if best is None or lca.depth > best.depth:
                best = lca
        if best is not None:
            meets[best.node_id] = best
    for node in candidates_b:
        best = None
        for other in candidates_a.neighbours(node):
            lca = lowest_common_ancestor(node, other)
            if best is None or lca.depth > best.depth:
                best = lca
        if best is not None:
            meets[best.node_id] = best
    return [meets[key] for key in sorted(meets)]


def nearest_concepts(node_sets, limit=None):
    """Fold the meet operator across several keyword node sets.

    Returns meet nodes ranked by depth (deepest first, document order as
    a tiebreak). Empty input sets shortcut to no results — a keyword
    with no match means the combination cannot be related.
    """
    node_sets = [list(node_set) for node_set in node_sets]
    if not node_sets or any(not node_set for node_set in node_sets):
        return []
    current = node_sets[0]
    for node_set in node_sets[1:]:
        current = meet_nodes(current, node_set)
        if not current:
            return []
    ranked = sorted(current, key=lambda node: (-node.depth, node.node_id))
    if limit is not None:
        ranked = ranked[:limit]
    return ranked
