"""Keyword-query front end over the meet operator.

Splits a keyword query into terms (quoted phrases stay whole), matches
each term against element/attribute names and text values, folds the
meet operator over the match sets, and returns the nearest-concept
elements. This is the system the paper's participants used in the
keyword-search block of the study.
"""

from __future__ import annotations

import re

from repro.keyword_search.meet import nearest_concepts
from repro.nlp.morphology import pluralize, singularize
from repro.obs.metrics import METRICS
from repro.resilience.budget import charge, check_deadline

_SEARCHES = METRICS.counter("keyword_search.queries")
_TERMS = METRICS.histogram("keyword_search.terms")
_RESULTS = METRICS.histogram("keyword_search.results")

_STOPWORDS = {
    "the", "a", "an", "of", "in", "on", "by", "with", "for", "and", "or",
    "to", "all", "every", "each", "that", "which", "is", "are", "was",
    "were", "find", "list", "return", "show", "me",
}

_TERM_RE = re.compile(r'"([^"]+)"|(\S+)')


class KeywordSearchEngine:
    """Nearest-concept keyword search against one database."""

    def __init__(self, database, result_limit=50):
        self.database = database
        self.result_limit = result_limit
        METRICS.set_gauge("keyword_search.index_nodes", database.node_count())

    def split_terms(self, query):
        """Terms of a keyword query; quoted phrases are single terms."""
        terms = []
        for quoted, bare in _TERM_RE.findall(query):
            term = quoted or bare
            cleaned = term.strip().strip(",.;:!?")
            if not cleaned:
                continue
            if not quoted and cleaned.lower() in _STOPWORDS:
                continue
            terms.append(cleaned)
        return terms

    def match_nodes(self, term):
        """Nodes a term matches: by tag name, then by text value."""
        lowered = term.lower()
        matches = {}
        for form in {lowered, singularize(lowered), pluralize(lowered)}:
            for node in self.database.nodes_with_tag(form):
                matches[node.node_id] = node
            for node in self.database.nodes_with_tag("@" + form):
                matches[node.node_id] = node
        for node in self.database.value_index.nodes_with_phrase(term):
            matches[node.node_id] = node
        return [matches[key] for key in sorted(matches)]

    def search(self, query):
        """Run a keyword query; returns nearest-concept element nodes."""
        _SEARCHES.inc()
        terms = self.split_terms(query)
        _TERMS.observe(len(terms))
        if not terms:
            _RESULTS.observe(0)
            return []
        node_sets = []
        for term in terms:
            check_deadline()
            matches = self.match_nodes(term)
            charge("materialized_nodes", len(matches))
            node_sets.append(matches)
        if len(node_sets) == 1:
            results = node_sets[0][: self.result_limit]
        else:
            concepts = nearest_concepts(node_sets)
            # A meet at the document root relates nothing: it means the
            # keywords only co-occur at the whole-document level.
            concepts = [node for node in concepts if node.parent is not None]
            results = concepts[: self.result_limit]
        _RESULTS.observe(len(results))
        return results
