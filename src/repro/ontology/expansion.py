"""Mapping name tokens onto database element/attribute names.

Matching cascade (Sec. 4, "Term Expansion"): exact tag match ->
morphological match (singular/plural) -> synonym match through the
thesaurus -> substring match for compound tags (``booktitle`` for
"title"). Several matches yield a disjunction, exactly as the paper
prescribes ("the disjunctive form of the names is regarded as the
corresponding name").
"""

from __future__ import annotations

from repro.nlp.morphology import pluralize, singularize
from repro.ontology.thesaurus import default_thesaurus


class TermExpander:
    """Expands a name-token word to the matching database names."""

    def __init__(self, database, thesaurus=None):
        self.database = database
        self.thesaurus = thesaurus or default_thesaurus()

    def _tags(self):
        return self.database.tags()

    def expand(self, word):
        """Return the matching tags for ``word``, best tier first.

        The result is a list of tag names (possibly with ``@`` prefixes
        for attributes); empty when nothing in the database matches.
        """
        word = word.lower().strip()
        if not word:
            return []
        tags = self._tags()
        bare = {tag.lstrip("@"): tag for tag in tags}

        # Morphological forms are tried in order and the first matching
        # form wins: "movies" must name the ``movie`` elements, not a
        # ``movies`` wrapper element that also happens to exist.
        exact = self._first_form_match(word, bare)
        if exact:
            return [exact]

        synonym_matches = set()
        for synonym in self.thesaurus.synonyms(singularize(word)):
            match = self._first_form_match(synonym, bare)
            if match:
                synonym_matches.add(match)
        if synonym_matches:
            return sorted(synonym_matches)

        stem = singularize(word)
        compound = sorted(
            tag
            for plain, tag in bare.items()
            if len(stem) >= 4 and (stem in plain or plain in stem) and plain != stem
        )
        return compound

    @staticmethod
    def _first_form_match(word, bare):
        for form in (singularize(word), word, pluralize(word)):
            if form in bare:
                return bare[form]
        return None

    def has_match(self, word):
        return bool(self.expand(word))

    def value_tags(self, value):
        """Tags of elements whose value equals ``value`` — how implicit
        name tokens (Def. 11) find their element names."""
        nodes = self.database.nodes_with_value(str(value))
        return sorted({node.tag for node in nodes})
