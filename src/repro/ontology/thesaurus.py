"""A small synonym thesaurus (WordNet substitute).

Synonym sets are symmetric: registering one set makes every member a
synonym of every other. The default instance covers the vocabulary of
the paper's evaluation domains (DBLP bibliography, movies) and common
database-speak; applications can register domain ontologies on top.
"""

from __future__ import annotations

_DEFAULT_SYNSETS = [
    # bibliographic
    {"book", "publication", "monograph", "volume"},
    {"article", "paper", "publication"},
    {"author", "writer", "creator"},
    {"editor", "reviser"},
    {"title", "name", "heading"},
    {"publisher", "press", "publishing house"},
    {"year", "date"},
    {"price", "cost", "amount"},
    {"journal", "periodical", "magazine"},
    {"page", "pages"},
    {"isbn", "identifier"},
    # movies
    {"movie", "film", "picture", "motion picture"},
    {"director", "filmmaker"},
    {"actor", "performer", "star", "cast member"},
    {"genre", "category", "kind", "type"},
    {"rating", "score", "grade"},
    # generic
    {"person", "people", "individual"},
    {"company", "corporation", "firm"},
    {"city", "town"},
    {"country", "nation"},
    {"number", "count", "quantity"},
]


class Thesaurus:
    """Symmetric synonym storage with union-on-overlap semantics."""

    def __init__(self, synsets=None):
        self._synonyms = {}
        for synset in synsets if synsets is not None else _DEFAULT_SYNSETS:
            self.add_synset(synset)

    def add_synset(self, words):
        """Register a set of mutual synonyms (merges into existing sets)."""
        words = {word.lower() for word in words}
        group = set(words)
        for word in words:
            group |= self._synonyms.get(word, set())
        for word in group:
            self._synonyms[word] = set(group)

    def synonyms(self, word):
        """All synonyms of ``word``, including itself."""
        word = word.lower()
        return set(self._synonyms.get(word, set())) | {word}

    def are_synonyms(self, first, second):
        return second.lower() in self.synonyms(first)

    def words(self):
        return sorted(self._synonyms)


def default_thesaurus():
    """The built-in thesaurus used by NaLIX unless one is injected."""
    return Thesaurus()
