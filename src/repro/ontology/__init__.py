"""Term expansion (the paper's WordNet + domain-ontology stand-in).

NaLIX's Sec. 4 "Term Expansion" step maps each name token onto the
element/attribute names actually present in the database, via a generic
thesaurus plus any available domain ontology. This package ships a
curated thesaurus for the bibliographic and movie domains the paper
evaluates on, a morphological matcher, and the expansion API the
validator calls.
"""

from repro.ontology.expansion import TermExpander
from repro.ontology.thesaurus import Thesaurus, default_thesaurus

__all__ = ["TermExpander", "Thesaurus", "default_thesaurus"]
