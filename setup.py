"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that legacy
editable installs (``pip install -e .``) work on environments without
the ``wheel`` package (PEP 660 editable wheels need it, ``setup.py
develop`` does not).
"""

from setuptools import setup

setup()
