#!/usr/bin/env python
"""Quickstart: ask English questions against the paper's movie database.

Run with::

    python examples/quickstart.py
"""

from repro import Database, NaLIX
from repro.data import movies_document


def main():
    database = Database()
    database.load_document(movies_document())
    print(database)

    nalix = NaLIX(database)

    questions = [
        "Return the title of every movie directed by Ron Howard.",
        "Return every director, where the number of movies directed by the "
        "director is the same as the number of movies directed by Ron "
        "Howard.",
        "Return the number of movies directed by each director.",
        "Return the title of every movie, sorted by title.",
    ]

    for question in questions:
        print("\n" + "=" * 72)
        print("Q:", question)
        result = nalix.ask(question)
        if result.ok:
            print("XQuery:", result.xquery_text)
            print("Answer:", result.values())
        else:
            print(result.render_feedback())


if __name__ == "__main__":
    main()
